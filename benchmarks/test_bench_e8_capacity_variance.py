"""E8 / §4.3: capacity variance and block resuscitation.

Drives the SPARE partition far past its endurance (a write-intensive
multi-year stress) and regenerates §4.3's end-game behaviour:

* worn groups are caught by the health check and leave native-PLC
  service *gradually* -- capacity shrinks, it doesn't cliff;
* with the resuscitation ladder (PLC -> pseudo-TLC -> pseudo-SLC), part
  of each worn group's capacity survives at reduced density, so total
  capacity stays strictly higher than with retirement alone;
* the host file system keeps operating against the shrinking capacity.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.sim.lifetime import Partition, PartitionSpec

from .common import report

YEARS = 4
WRITE_GB_PER_DAY = 12.0  # write-intensive stress (§4.5's scenario)
CAPACITY_GB = 32.0


def _run(resuscitation_bits: tuple[int, ...]):
    spec = PartitionSpec(
        name="spare",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.NONE],
        capacity_gb=CAPACITY_GB,
        wear_leveling=False,
        max_rber=4e-4,
        resuscitation_bits=resuscitation_bits,
        scrub_enabled=False,
    )
    partition = Partition(spec)
    capacity_series = []
    for day in range(YEARS * 365):
        now = day / 365.0
        partition.host_write(WRITE_GB_PER_DAY * 0.3, now, churn=False)
        partition.host_write(WRITE_GB_PER_DAY * 0.7, now, churn=True)
        partition.host_delete(WRITE_GB_PER_DAY * 0.28)
        if day % 7 == 0:
            partition.maintain(now)
        if day % 30 == 0:
            capacity_series.append((now, partition.capacity_gb()))
    return partition, capacity_series


def compute():
    with_ladder, series_ladder = _run((3, 1))
    without, series_retire = _run(())
    return with_ladder, series_ladder, without, series_retire


def test_bench_e8_capacity_variance(benchmark):
    with_ladder, series_ladder, without, series_retire = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    rows = []
    for (t, cap_l), (_, cap_r) in zip(series_ladder[::8], series_retire[::8]):
        rows.append([f"{t:.1f}", f"{cap_l:.1f}", f"{cap_r:.1f}"])
    body = format_table(
        ["years", "capacity w/ resuscitation (GB)", "capacity retire-only (GB)"],
        rows,
        title=f"SPARE capacity under {WRITE_GB_PER_DAY:.0f} GB/day stress",
    )
    caps_ladder = [c for _, c in series_ladder]
    # largest single-step capacity drop as a fraction of initial capacity
    worst_step = max(
        (a - b) / CAPACITY_GB for a, b in zip(caps_ladder, caps_ladder[1:])
    ) if len(caps_ladder) > 1 else 0.0
    checks = [
        ClaimCheck("s43.wear-happens", "stress actually wears groups out "
                   "(health actions occurred)", 1.0,
                   float(with_ladder.resuscitated_count + with_ladder.retired_count),
                   Comparison.AT_LEAST),
        ClaimCheck("s43.resuscitation-used", "resuscitation ladder engaged",
                   1.0, float(with_ladder.resuscitated_count), Comparison.AT_LEAST),
        ClaimCheck("s43.ladder-keeps-capacity", "resuscitation retains more "
                   "capacity than retire-only", 0.0,
                   with_ladder.capacity_gb() - without.capacity_gb(),
                   Comparison.AT_LEAST),
        ClaimCheck("s43.graceful-shrink", "capacity shrinks stepwise, never "
                   "cliffs: worst monthly step <= 25% of device", 0.25,
                   worst_step, Comparison.AT_MOST),
        ClaimCheck("s43.retire-only-collapses", "without resuscitation the "
                   "stressed partition collapses within the first year (GB left)",
                   1.0, [c for t, c in series_retire if t <= 1.0][-1],
                   Comparison.AT_MOST),
        ClaimCheck("s43.still-usable", "device retains >= 25% capacity after "
                   "4y of stress", CAPACITY_GB * 0.25, with_ladder.capacity_gb(),
                   Comparison.AT_LEAST),
    ]
    report("E8 (§4.3): capacity variance and block resuscitation", body, checks)
