"""A2 ablation: SYS/SPARE split ratio sweep.

§4.2 "conservatively assum[es] each partition takes up about half of the
device storage".  This sweep varies the SPARE fraction from 10% to 90%
and regenerates the trade-off surface behind that choice:

* density gain (and carbon reduction) grows linearly with the SPARE
  fraction: +50% over TLC at 50/50, approaching +66% as SPARE -> all;
* SYS wear pressure grows as SYS shrinks (same critical write volume
  into fewer blocks) -- the constraint that keeps the split near half.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.runner import Sweep, run_sweep
from repro.runner.points import split_point

from .common import report, run_once, runner_jobs

YEARS = 3
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)


def compute():
    sweep = Sweep(
        name="a2-split-sweep",
        fn=split_point,
        grid=tuple(
            {"spare_fraction": f, "capacity_gb": 64.0, "mix": "typical",
             "days": YEARS * 365, "workload_seed": 505}
            for f in FRACTIONS
        ),
        base_seed=505,
    )
    points = run_sweep(sweep, jobs=runner_jobs()).values()
    return [
        (p["fraction"], p["gain"], p["carbon_reduction"], p["result"]) for p in points
    ]


def test_bench_a2_split_sweep(benchmark):
    sweep = run_once(benchmark, compute)
    rows = []
    for fraction, gain, carbon, result in sweep:
        f = result.final
        rows.append(
            [f"{fraction:.2f}", f"{gain * 100:.1f}%", f"{carbon * 100:.1f}%",
             f"{f.sys_wear_fraction * 100:.1f}%", f"{f.spare_quality:.3f}"]
        )
    body = format_table(
        ["SPARE fraction", "density gain vs TLC", "carbon reduction",
         "SYS wear (3y)", "media quality"],
        rows,
        title="Partition split sweep",
    )
    gains = [gain for _, gain, _, _ in sweep]
    sys_wears = [r.final.sys_wear_fraction for *_, r in sweep]
    half = next(item for item in sweep if item[0] == 0.5)
    checks = [
        ClaimCheck("a2.gain-monotone", "density gain rises with SPARE share "
                   "(fraction of increasing steps)", 1.0,
                   sum(1 for a, b in zip(gains, gains[1:]) if b > a)
                   / (len(gains) - 1), rel_tol=0.001),
        ClaimCheck("a2.half-is-50pct", "50/50 split delivers the paper's +50%",
                   0.50, half[1], rel_tol=0.001),
        ClaimCheck("a2.wear-pressure", "shrinking SYS raises SYS wear "
                   "(90% SPARE vs 10% SPARE wear ratio)", 2.0,
                   sys_wears[-1] / sys_wears[0], Comparison.AT_LEAST),
        ClaimCheck("a2.half-survives", "the paper's 50/50 point survives 3y",
                   1.0, float(half[3].survived()), rel_tol=0.001),
        ClaimCheck("a2.extreme-spare-risky", "at 90% SPARE, SYS wear exceeds "
                   "the 50/50 point's", half[3].final.sys_wear_fraction,
                   sys_wears[-1], Comparison.AT_LEAST),
    ]
    report("A2 (ablation): SYS/SPARE split ratio sweep", body, checks)
