"""E15 / §1+§3: embodied carbon dominates the storage footprint.

Regenerates the premise SOS is built on: "production-related emissions
effectively account for most of the carbon footprint of modern devices"
-- so reducing silicon (density) matters more than reducing power.
Three storage classes, lifetime use-phase energy vs embodied carbon,
plus the SSD-share-of-device claim (§1: SSDs are 33-80% of a computer's
footprint -- here checked as: the storage embodied footprint is the
same order as the rest of a phone's embodied budget).
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.operational import use_phase

from .common import report

#: iPhone-14-class total embodied footprint (kg CO2e) for the share check.
PHONE_TOTAL_EMBODIED_KG = 61.0

CASES = [
    ("mobile_ufs", 128.0, 2.5),
    ("consumer_ssd", 1000.0, 6.0),
    ("enterprise_ssd", 2000.0, 6.0),
]


def compute():
    return {name: use_phase(name, gb, years) for name, gb, years in CASES}


def test_bench_e15_embodied_vs_operational(benchmark):
    results = benchmark(compute)
    rows = []
    for name, phase in results.items():
        rows.append([
            name, f"{phase.capacity_gb:.0f}", f"{phase.service_years:.1f}",
            f"{phase.energy_kwh:.1f}", f"{phase.operational_kg:.2f}",
            f"{phase.embodied_kg:.1f}", f"{phase.embodied_share * 100:.0f}%",
        ])
    body = format_table(
        ["class", "GB", "years", "lifetime kWh", "operational kg",
         "embodied kg", "embodied share"],
        rows,
        title="Use-phase vs production carbon by storage class",
    )
    mobile = results["mobile_ufs"]
    enterprise = results["enterprise_ssd"]
    phone_flash_share = mobile.embodied_kg / PHONE_TOTAL_EMBODIED_KG
    checks = [
        ClaimCheck("s1.embodied-dominates-mobile", "personal flash: embodied "
                   ">= 10x operational", 10.0, mobile.embodied_to_operational,
                   Comparison.AT_LEAST),
        ClaimCheck("s1.embodied-majority-everywhere", "embodied is the "
                   "majority of the footprint even for enterprise SSDs",
                   0.5, enterprise.embodied_share, Comparison.AT_LEAST),
        ClaimCheck("s1.iphone-share", "flash share of an iPhone-14-class "
                   "embodied budget (paper: 12-31%)", 0.12, phone_flash_share,
                   Comparison.BETWEEN, paper_upper=0.40),
        ClaimCheck("s3.op-energy-small", "a phone's storage burns only a few "
                   "kWh over its whole life", 5.0, mobile.energy_kwh,
                   Comparison.AT_MOST),
    ]
    report("E15 (§1/§3): embodied vs operational carbon", body, checks)
