"""A7 ablation: GC victim-selection policy under skewed churn.

SOS's SPARE partition uses cost-benefit GC (write-once media + a little
hot churn is the classic skewed workload where greedy GC keeps picking
recently filled hot blocks and migrating their still-live cold
neighbours).  Measured on the bit-exact FTL: write amplification =
(host writes + GC migrations) / host writes, under a hot/cold skew.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GcPolicy
from repro.ftl.streams import StreamConfig

from .common import report, run_once

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=32,
                planes_per_die=2, dies=1)
N_WRITES = 4000
HOT_LPNS = 24         # small hot set, rewritten constantly
COLD_LPNS = 600       # large cold set, written once (media)
HOT_FRACTION = 0.85   # of writes


def _run(policy: GcPolicy) -> dict:
    chip = FlashChip(GEOM, CellTechnology.PLC, seed=3)
    streams = [
        StreamConfig("spare", native_mode(CellTechnology.PLC),
                     POLICIES[ProtectionLevel.NONE], gc_policy=policy),
    ]
    ftl = Ftl(chip, streams, {"spare": list(range(GEOM.total_blocks))})
    rng = np.random.default_rng(7)
    # preload cold data (the media working set, ~60% of capacity)
    for lpn in range(COLD_LPNS):
        ftl.write(lpn, rng.bytes(64), "spare")
        chip.advance_time(chip.now_years + 1e-5)
    # steady-state churn
    for i in range(N_WRITES):
        if rng.random() < HOT_FRACTION:
            lpn = COLD_LPNS + int(rng.integers(0, HOT_LPNS))
        else:
            lpn = int(rng.integers(0, COLD_LPNS))
        ftl.write(lpn, rng.bytes(64), "spare")
        chip.advance_time(chip.now_years + 1e-5)
    waf = (ftl.stats.host_writes + ftl.stats.gc_migrations) / ftl.stats.host_writes
    return {
        "waf": waf,
        "gc_migrations": ftl.stats.gc_migrations,
        "gc_erases": ftl.stats.gc_erases,
        "mean_pec": chip.mean_pec(),
    }


def compute():
    return {policy: _run(policy) for policy in GcPolicy}


def test_bench_a7_gc_policy(benchmark):
    results = run_once(benchmark, compute)
    rows = [
        [policy.value, f"{r['waf']:.3f}", r["gc_migrations"], r["gc_erases"],
         f"{r['mean_pec']:.1f}"]
        for policy, r in results.items()
    ]
    body = format_table(
        ["GC policy", "write amplification", "migrations", "erases", "mean PEC"],
        rows,
        title=f"Hot/cold skew ({HOT_FRACTION:.0%} of writes to "
              f"{HOT_LPNS}/{HOT_LPNS + COLD_LPNS} LPNs)",
    )
    greedy = results[GcPolicy.GREEDY]
    cost_benefit = results[GcPolicy.COST_BENEFIT]
    checks = [
        ClaimCheck("a7.cb-not-worse", "cost-benefit WAF <= greedy WAF under "
                   "skewed churn (ratio)", 1.02,
                   cost_benefit["waf"] / greedy["waf"], Comparison.AT_MOST),
        ClaimCheck("a7.waf-sane-greedy", "greedy WAF in a sane SSD range",
                   1.0, greedy["waf"], Comparison.BETWEEN, paper_upper=4.0),
        ClaimCheck("a7.waf-sane-cb", "cost-benefit WAF in a sane SSD range",
                   1.0, cost_benefit["waf"], Comparison.BETWEEN, paper_upper=4.0),
        ClaimCheck("a7.wear-tracks-waf", "lower WAF means lower wear "
                   "(PEC ratio tracks WAF ratio within 20%)",
                   cost_benefit["waf"] / greedy["waf"],
                   cost_benefit["mean_pec"] / greedy["mean_pec"], rel_tol=0.2),
    ]
    report("A7 (ablation): GC policy on the SPARE churn profile", body, checks)
