"""E12 / §4.5 ("Performance"): PLC access speeds suffice for SOS.

Regenerates the performance argument:

* PLC reads/programs are slower than TLC/QLC -- quantified;
* SPARE traffic is large sequential media reads, where queue-depth
  pipelining keeps PLC bandwidth comfortably above media bitrates
  (a 4K stream needs ~3-8 MB/s);
* error tolerance removes the read-retry path: at end-of-life RBER,
  an error-tolerant read is substantially faster than a strict read
  that walks the retry ladder;
* SYS sits on pseudo-QLC, which performs like QLC -- "the performance
  and endurance of recent QLC generations matches that of early
  generation TLC memories".
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.error_model import ErrorModel
from repro.flash.timing import TimingModel

from .common import report

PAGE_BYTES = 4096
#: a comfortable 4K-video streaming bitrate (MB/s)
VIDEO_BITRATE_MBPS = 8.0


def compute():
    modes = {
        "TLC": native_mode(CellTechnology.TLC),
        "QLC": native_mode(CellTechnology.QLC),
        "pQLC(PLC) [SYS]": pseudo_mode(CellTechnology.PLC, 4),
        "PLC [SPARE]": native_mode(CellTechnology.PLC),
    }
    rows = {}
    for name, mode in modes.items():
        timing = TimingModel(mode)
        times = timing.times()
        rows[name] = {
            "read_us": times.read_us,
            "program_us": times.program_us,
            "seq_mbps": times.sequential_read_mbps(PAGE_BYTES, queue_depth=4),
        }
    # end-of-life SPARE read latency: strict (retry ladder) vs tolerant
    plc = native_mode(CellTechnology.PLC)
    worn_rber = ErrorModel(plc).rber(pec=450, years_since_write=0.75)
    p_fail = POLICIES[ProtectionLevel.STRONG].page_failure_prob(
        worn_rber, PAGE_BYTES * 8
    )
    timing = TimingModel(plc)
    strict_us = timing.expected_read_us(p_fail)
    tolerant_us = timing.expected_read_us(p_fail, error_tolerant=True)
    return rows, worn_rber, p_fail, strict_us, tolerant_us


def test_bench_e12_performance(benchmark):
    rows, worn_rber, p_fail, strict_us, tolerant_us = benchmark(compute)
    table = [
        [name, f"{r['read_us']:.0f}", f"{r['program_us']:.0f}",
         f"{r['seq_mbps']:.0f}"]
        for name, r in rows.items()
    ]
    body = format_table(
        ["mode", "read (us)", "program (us)", "seq read (MB/s, QD4)"],
        table,
        title="Latency/bandwidth by operating mode",
    ) + (
        f"\n\nend-of-life SPARE page (RBER {worn_rber:.2e}, hard-decode "
        f"failure {p_fail:.2f}): strict read {strict_us:.0f} us, "
        f"error-tolerant read {tolerant_us:.0f} us"
    )
    checks = [
        ClaimCheck("s45.plc-slower", "PLC reads are slower than TLC (ratio)",
                   1.5, rows["PLC [SPARE]"]["read_us"] / rows["TLC"]["read_us"],
                   Comparison.AT_LEAST),
        ClaimCheck("s45.seq-suffices", "PLC sequential bandwidth clears a 4K "
                   "stream by a wide margin (x bitrate)", 5.0,
                   rows["PLC [SPARE]"]["seq_mbps"] / VIDEO_BITRATE_MBPS,
                   Comparison.AT_LEAST),
        ClaimCheck("s45.tolerance-speeds-reads", "error tolerance reduces "
                   "end-of-life read latency (strict/tolerant)", 1.5,
                   strict_us / tolerant_us, Comparison.AT_LEAST),
        ClaimCheck("s45.sys-is-qlc-class", "SYS (pseudo-QLC) reads match "
                   "native QLC", 1.0,
                   rows["pQLC(PLC) [SYS]"]["read_us"] / rows["QLC"]["read_us"],
                   rel_tol=0.001),
        ClaimCheck("s45.qlc-near-tlc", "QLC within ~3x of TLC (the §4.5 "
                   "generation-matching argument)", 3.0,
                   rows["QLC"]["read_us"] / rows["TLC"]["read_us"],
                   Comparison.AT_MOST),
    ]
    report("E12 (§4.5): PLC access speeds suffice for SOS", body, checks)
