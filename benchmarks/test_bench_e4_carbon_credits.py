"""E4 / §3: carbon-credit cost as a fraction of flash price.

Regenerates the closing example of §3: EU ETS at $111/tonne on
0.16 kg CO2e/GB amounts to ~40% of a $45/TB QLC SSD's price -- and shows
how the surcharge scales with density and carbon price.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck
from repro.analysis.reporting import format_table
from repro.carbon.credits import EU_ETS_PEAK_2022, CarbonPrice, credit_cost_per_tb, price_increase_fraction
from repro.carbon.embodied import intensity_kg_per_gb
from repro.flash.cell import CellTechnology

from .common import report

QLC_PRICE_PER_TB = 45.0


def compute():
    sweep = []
    for usd_per_tonne in (25, 50, 111, 200):
        price = CarbonPrice(usd_per_tonne=float(usd_per_tonne))
        for tech in (CellTechnology.TLC, CellTechnology.QLC, CellTechnology.PLC):
            intensity = intensity_kg_per_gb(tech)
            sweep.append(
                (
                    usd_per_tonne,
                    tech.name,
                    credit_cost_per_tb(price, intensity),
                    credit_cost_per_tb(price, intensity) / QLC_PRICE_PER_TB,
                )
            )
    headline = price_increase_fraction(EU_ETS_PEAK_2022, QLC_PRICE_PER_TB)
    return sweep, headline


def test_bench_e4_carbon_credits(benchmark):
    sweep, headline = benchmark(compute)
    rows = [
        [f"${p}/t", tech, f"${cost:.2f}", f"{frac * 100:.1f}%"]
        for p, tech, cost, frac in sweep
    ]
    body = format_table(
        ["carbon price", "technology", "credit $/TB", "vs $45/TB QLC price"],
        rows,
        title="Carbon-credit surcharge sweep",
    )
    plc_at_peak = next(
        frac for p, tech, _, frac in sweep if p == 111 and tech == "PLC"
    )
    checks = [
        ClaimCheck("s3.credit-40pct", "EU peak credit as fraction of $45/TB QLC",
                   0.40, headline, rel_tol=0.05),
        ClaimCheck("s3.credit-per-tb", "credit $/TB at baseline intensity",
                   17.76, credit_cost_per_tb(EU_ETS_PEAK_2022), rel_tol=0.01),
        ClaimCheck("s41.denser-pays-less", "PLC credit relative to TLC credit",
                   0.6, plc_at_peak / headline, rel_tol=0.01),
    ]
    report("E4 (§3): carbon credits vs flash price", body, checks)
