"""E1 / Figure 1: flash market share by device type (2020).

Regenerates the paper's pie-chart data and the derived observation that
personal devices absorb ~half of annual flash bit production.
"""

from __future__ import annotations

from repro.analysis.charts import bar_chart
from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.market import MARKET_SHARE_2020, personal_share

from .common import report


def compute():
    shares = dict(MARKET_SHARE_2020)
    return {
        "shares": shares,
        "personal_strict": personal_share(include_memory_cards=False),
        "personal_broad": personal_share(include_memory_cards=True),
    }


def test_bench_fig1_market_share(benchmark):
    result = benchmark(compute)
    rows = [[name, f"{frac * 100:.0f}%"] for name, frac in result["shares"].items()]
    rows.append(["personal (phone+tablet)", f"{result['personal_strict'] * 100:.0f}%"])
    body = format_table(["device type", "share of flash bits"], rows,
                        title="Figure 1: flash market share by device type (2020)")
    body += "\n\n" + bar_chart(
        list(result["shares"]),
        [v * 100 for v in result["shares"].values()],
        title="(the paper's pie, as bars)",
        unit="%",
    )
    checks = [
        ClaimCheck("fig1.smartphone", "smartphone share", 0.38,
                   result["shares"]["smartphone"], rel_tol=0.01),
        ClaimCheck("fig1.ssd", "SSD share", 0.32, result["shares"]["ssd"], rel_tol=0.01),
        ClaimCheck("fig1.tablet", "tablet share", 0.08, result["shares"]["tablet"],
                   rel_tol=0.01),
        ClaimCheck("fig1.sum", "shares sum to 1", 1.0,
                   sum(result["shares"].values()), rel_tol=0.001),
        ClaimCheck("s232.personal-half", "personal devices ~half of bits",
                   0.40, result["personal_strict"], Comparison.BETWEEN,
                   paper_upper=0.60),
    ]
    report("E1 (Figure 1): flash market share by device type", body, checks)
