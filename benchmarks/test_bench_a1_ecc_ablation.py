"""A1 ablation: ECC strength on the SPARE partition.

§4.2 prescribes "weak protection (e.g., no ECC)" for SPARE.  This
ablation sweeps NONE / WEAK / STRONG on the epoch model's SPARE
partition over 3 years and quantifies the trade:

* stronger ECC buys quality headroom but pays parity overhead, which
  directly erodes the density (and therefore carbon) win;
* with the scrubber active, NONE already holds the quality bar at
  typical wear -- the measured justification for the paper's choice.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.sim.baselines import build_sos
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

from .common import report, run_once

YEARS = 3


def compute():
    summaries = MobileWorkload(
        WorkloadConfig(mix="typical", days=YEARS * 365, seed=404)
    ).daily_summaries()
    out = {}
    for level in ProtectionLevel:
        build = build_sos(64.0, spare_protection=level)
        result = run_lifetime(build, summaries)
        overhead = POLICIES[level].capacity_overhead
        out[level] = (result, overhead)
    return out


def test_bench_a1_ecc_ablation(benchmark):
    results = run_once(benchmark, compute)
    rows = []
    for level, (result, overhead) in results.items():
        f = result.final
        rows.append(
            [level.value, f"{overhead * 100:.1f}%", f"{f.spare_quality:.4f}",
             f"{f.spare_wear_fraction * 100:.1f}%"]
        )
    body = format_table(
        ["SPARE protection", "capacity overhead", "media quality (3y)",
         "SPARE wear"],
        rows,
        title="ECC strength on SPARE (scrubber active)",
    )
    none_q = results[ProtectionLevel.NONE][0].final.spare_quality
    weak_q = results[ProtectionLevel.WEAK][0].final.spare_quality
    strong_q = results[ProtectionLevel.STRONG][0].final.spare_quality
    strong_overhead = results[ProtectionLevel.STRONG][1]
    checks = [
        ClaimCheck("a1.none-suffices", "no-ECC SPARE holds the quality bar "
                   "at typical wear (the §4.2 bet)", 0.9, none_q,
                   Comparison.AT_LEAST),
        ClaimCheck("a1.ordering", "quality ordering none <= weak <= strong",
                   1.0, float(none_q <= weak_q + 1e-9 and weak_q <= strong_q + 1e-9),
                   rel_tol=0.001),
        ClaimCheck("a1.strong-overhead", "strong ECC costs >= 7% capacity "
                   "overhead on SPARE", 0.07, strong_overhead, Comparison.AT_LEAST),
        ClaimCheck("a1.marginal-gain", "strong ECC's quality gain over none "
                   "at typical wear is marginal (<= 0.1)", 0.1,
                   strong_q - none_q, Comparison.AT_MOST),
    ]
    report("A1 (ablation): ECC strength on SPARE", body, checks)
