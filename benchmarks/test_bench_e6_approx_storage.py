"""E6 / §4.2-§4.3: approximate storage of media on low-endurance PLC.

Bit-exact experiment: media objects stored under three layouts on a real
(simulated) PLC device, aged over a 3-year device life with realistic
SPARE wear (~80 PEC -- the level the E3 workload produces), with the SOS
scrubber running quarterly.  Regenerates the §4.2/§4.3 bets:

* the endurance ratios motivating the design (PLC ~ TLC/6, ~ QLC/2);
* error-tolerant frames dominate media bytes, so unprotected SPARE
  storage plus preemptive scrubbing keeps quality acceptable for the
  full device life;
* without the scrubber, retention errors accumulate and quality is
  visibly worse by end of life -- the mechanism §4.3 exists for.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.core.config import default_config
from repro.core.degradation import DegradationMonitor
from repro.core.partitions import build_partitions
from repro.core.repair import CloudBackup
from repro.core.scrubber import Scrubber
from repro.flash.cell import CellTechnology
from repro.flash.geometry import Geometry
from repro.flash.reliability import ENDURANCE_TABLE
from repro.host.block_layer import BlockLayer
from repro.media.approx_store import ApproximateStore, MediaLayout
from repro.media.codec import make_media_object

from .common import report, run_once

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=64,
                planes_per_die=2, dies=1)

YEARS = 3
QUARTERS_PER_YEAR = 4
#: SPARE wear accrued per quarter (~80 PEC over 3 years, per E3's workload)
PEC_PER_QUARTER = 7


def _run(layout: MediaLayout, scrub: bool, cloud: bool):
    """One experiment arm: quality trajectory of a media object."""
    device = build_partitions(default_config(seed=33, geometry=GEOM))
    layer = BlockLayer(device.ftl)
    store = ApproximateStore(layer)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    backup = CloudBackup(available=cloud)
    scrubber = Scrubber(layer, monitor, backup, quality_floor=0.9)
    media = make_media_object(24_000, seed=40)
    stored = store.store(media, layout)
    # cloud-backed files have clean page copies uploaded at write time
    page_bytes = layer.page_bytes
    for i, lpn in enumerate(stored.lpns):
        backup.store_page(lpn, media.data[i * page_bytes:(i + 1) * page_bytes])
    spare_lpns = [
        lpn for lpn in stored.lpns if device.ftl.stream_of(lpn) == "spare"
    ]
    yearly = [store.audit_quality(stored).quality]
    for quarter in range(1, YEARS * QUARTERS_PER_YEAR + 1):
        now = quarter / QUARTERS_PER_YEAR
        for i in device.ftl.stream("spare").blocks:
            device.chip.blocks[i].pec += PEC_PER_QUARTER
        device.chip.advance_time(now)
        if scrub:
            scrubber.scrub(spare_lpns)
        if quarter % QUARTERS_PER_YEAR == 0:
            yearly.append(store.audit_quality(stored).quality)
    return yearly


ARMS = {
    "hybrid+scrub+cloud": (MediaLayout.HYBRID, True, True),
    "hybrid+scrub": (MediaLayout.HYBRID, True, False),
    "hybrid, no scrub": (MediaLayout.HYBRID, False, False),
    "full_spare+scrub": (MediaLayout.FULL_SPARE, True, False),
    "full_sys": (MediaLayout.FULL_SYS, False, False),
}


def compute():
    trajectories = {name: _run(*arm) for name, arm in ARMS.items()}
    tolerant = make_media_object(24_000, seed=40).tolerant_fraction()
    return trajectories, tolerant


def test_bench_e6_approx_storage(benchmark):
    trajectories, tolerant_fraction = run_once(benchmark, compute)
    rows = []
    for year in range(YEARS + 1):
        rows.append(
            [year, PEC_PER_QUARTER * QUARTERS_PER_YEAR * year]
            + [f"{trajectories[name][year]:.4f}" for name in ARMS]
        )
    body = format_table(
        ["year", "SPARE PEC"] + list(ARMS),
        rows,
        title="Media quality trajectory (PLC SPARE, pseudo-QLC SYS)",
    )
    tlc_ratio = (
        ENDURANCE_TABLE[CellTechnology.TLC].rated_pec
        / ENDURANCE_TABLE[CellTechnology.PLC].rated_pec
    )
    qlc_ratio = (
        ENDURANCE_TABLE[CellTechnology.QLC].rated_pec
        / ENDURANCE_TABLE[CellTechnology.PLC].rated_pec
    )
    hybrid = trajectories["hybrid+scrub"]
    hybrid_cloud = trajectories["hybrid+scrub+cloud"]
    checks = [
        ClaimCheck("s42.endurance-plc-tlc", "PLC endurance factor below TLC",
                   6.0, tlc_ratio, Comparison.BETWEEN, paper_upper=10.0),
        ClaimCheck("s42.endurance-plc-qlc", "PLC endurance factor below QLC",
                   2.0, qlc_ratio, rel_tol=0.01),
        ClaimCheck("s42.tolerant-majority", "error-tolerant frames dominate bytes",
                   0.6, tolerant_fraction, Comparison.AT_LEAST),
        ClaimCheck("s42.hybrid-acceptable", "hybrid + scrub quality after 3y",
                   0.85, hybrid[-1], Comparison.AT_LEAST),
        ClaimCheck("s43.cloud-repair-best", "cloud-backed repair keeps quality "
                   "near-pristine through 3y", 0.95, hybrid_cloud[-1],
                   Comparison.AT_LEAST),
        ClaimCheck("s42.hybrid-beats-full-spare", "protecting I-frames is the "
                   "difference between graceful and severe degradation "
                   "(hybrid - full_spare at 3y)", 0.2,
                   hybrid[-1] - trajectories["full_spare+scrub"][-1],
                   Comparison.AT_LEAST),
        ClaimCheck("s42.sys-lossless", "fully-protected layout stays pristine",
                   0.99, trajectories["full_sys"][-1], Comparison.AT_LEAST),
        ClaimCheck("s42.graceful", "decay is gradual: worst year-over-year "
                   "drop below 0.1 for hybrid+scrub", 0.1,
                   max(a - b for a, b in zip(hybrid, hybrid[1:])),
                   Comparison.AT_MOST),
    ]
    report("E6 (\u00a74.2-\u00a74.3): approximate storage quality on low-endurance PLC",
           body, checks)
