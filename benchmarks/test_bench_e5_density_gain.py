"""E5 / §4.1-§4.2: density and capacity gains of the SOS split.

Regenerates the headline arithmetic: QLC +33% and PLC +66% over TLC; the
50/50 PLC + pseudo-QLC split delivers +50% capacity over TLC for the same
cells (the paper's 50%) and +12.5% over QLC (the paper rounds to 10%);
equivalently, 2/3 of the embodied carbon for the same capacity.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
from repro.core.config import default_config
from repro.core.partitions import build_partitions, capacity_gain_over, density_gain
from repro.flash.cell import CellTechnology
from repro.flash.geometry import Geometry

from .common import report

#: pages_per_block divisible by 5 so pseudo-mode page counts are exact
_GEOM = Geometry(page_size_bytes=512, pages_per_block=20, blocks_per_plane=32,
                 planes_per_die=2, dies=1)


def compute():
    config = default_config(geometry=_GEOM)
    device = build_partitions(config)
    sos_intensity = mixed_intensity_kg_per_gb(
        {config.sys_mode: 0.5, config.spare_mode: 0.5}
    )
    # the same cells operated at TLC density (exact: 20 * 3/5 = 12 pages)
    tlc_pages = int(_GEOM.pages_per_block * 3 / 5)
    tlc_equiv_bytes = tlc_pages * _GEOM.page_size_bytes * _GEOM.total_blocks
    return {
        "qlc_over_tlc": CellTechnology.QLC.density_gain_over(CellTechnology.TLC),
        "plc_over_tlc": CellTechnology.PLC.density_gain_over(CellTechnology.TLC),
        "sos_over_tlc": density_gain(config),
        "sos_over_qlc": capacity_gain_over(config, CellTechnology.QLC),
        "carbon_reduction": 1 - sos_intensity / intensity_kg_per_gb(CellTechnology.TLC),
        "physical_capacity_bytes": device.chip.usable_capacity_bytes(),
        "tlc_equiv_bytes": tlc_equiv_bytes,
    }


def test_bench_e5_density_gain(benchmark):
    result = benchmark(compute)
    physical_gain = result["physical_capacity_bytes"] / result["tlc_equiv_bytes"] - 1
    rows = [
        ["QLC vs TLC", f"{result['qlc_over_tlc'] * 100:.1f}%"],
        ["PLC vs TLC", f"{result['plc_over_tlc'] * 100:.1f}%"],
        ["SOS split vs TLC (analytic)", f"{result['sos_over_tlc'] * 100:.1f}%"],
        ["SOS split vs TLC (built device)", f"{physical_gain * 100:.1f}%"],
        ["SOS split vs QLC", f"{result['sos_over_qlc'] * 100:.1f}%"],
        ["embodied carbon reduction vs TLC", f"{result['carbon_reduction'] * 100:.1f}%"],
    ]
    body = format_table(["comparison", "gain"], rows, title="Density / capacity gains")
    checks = [
        ClaimCheck("s41.qlc-33", "QLC density gain over TLC", 1 / 3,
                   result["qlc_over_tlc"], rel_tol=0.001),
        ClaimCheck("s41.plc-66", "PLC density gain over TLC", 2 / 3,
                   result["plc_over_tlc"], rel_tol=0.001),
        ClaimCheck("s42.sos-50", "SOS split capacity gain over TLC", 0.50,
                   result["sos_over_tlc"], rel_tol=0.001),
        ClaimCheck("s42.sos-vs-qlc", "SOS gain over QLC (paper rounds 12.5%->10%)",
                   0.10, result["sos_over_qlc"], Comparison.BETWEEN, paper_upper=0.15),
        ClaimCheck("s41.carbon-prop", "carbon reduction = 1 - 1/1.5 (proportional "
                   "to density)", 1 - 1 / 1.5, result["carbon_reduction"], rel_tol=0.03),
        ClaimCheck("e5.physical-agrees", "bit-exact device capacity matches the "
                   "analytic +50% (page quantization aside)", 0.50, physical_gain,
                   rel_tol=0.05),
    ]
    report("E5 (§4.1-§4.2): density and capacity gains of the SOS split", body, checks)
