"""E14 / §2.3.2-§2.3.3: fleet replacement churn drives flash production.

Regenerates the paper's fleet-level conclusion: because personal devices
are discarded every ~2.5-4 years with their soldered flash (§2.3.3:
reuse ~never happens), over half of annual flash bits feed devices whose
capacity will be re-manufactured **over three times** in a decade --
and quantifies the embodied carbon of that churn.

The analytic fleet model is paired with a sharded population run
through the fleet-of-fleets layer: the sample of phones is simulated to
its disposal age and reduced to a wear digest, measuring how much
endurance the discarded flash still holds -- closing the loop between
churn (this experiment) and the wear gap (E16).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.fleet import FleetConfig, simulate_fleet
from repro.fleet import FleetPlan, run_fleet

from .common import report, runner_jobs

#: sample of phones simulated (one shard) to disposal age
DISPOSAL_USERS = 60
DISPOSAL_YEARS = 2.5


def compute():
    fleet = simulate_fleet(FleetConfig())
    plan = FleetPlan(
        n_devices=DISPOSAL_USERS, days=int(DISPOSAL_YEARS * 365),
        capacity_gb=64.0, seed=1414, shard_size=DISPOSAL_USERS,
        chunk=DISPOSAL_USERS,
    )
    disposal = run_fleet(plan, jobs=runner_jobs(),
                         name="e14-disposal-wear-batch")
    return fleet, np.asarray(disposal.wear_values())


def test_bench_e14_fleet_replacement(benchmark):
    outcome, disposal_wear = benchmark(compute)
    rows = [
        [c.name, f"{c.share * 100:.0f}%", f"{c.installed_eb_start:.0f}",
         f"{c.manufactured_eb:.0f}", f"{c.replacement_multiplier:.1f}x",
         f"{c.embodied_mt:.0f}"]
        for c in outcome.classes
    ]
    body = format_table(
        ["class", "bit share", "installed (EB)", "manufactured/decade (EB)",
         "replacement multiplier", "embodied (Mt CO2e)"],
        rows,
        title="Fleet simulation, 10 years, 10%/yr demand growth",
    )
    median_stranded = 1.0 - float(np.median(disposal_wear))
    body += (f"\n\nwear at disposal ({DISPOSAL_USERS} phones, "
             f"{DISPOSAL_YEARS}y, batched run): median endurance still "
             f"unused when discarded = {median_stranded * 100:.1f}%")
    personal_mult = outcome.personal_replacement_multiplier()
    ssd_mult = next(c.replacement_multiplier for c in outcome.classes if c.name == "ssd")
    checks = [
        ClaimCheck("s232.replaced-3x", "personal-device capacity "
                   "re-manufactured over 3x per decade", 3.0, personal_mult,
                   Comparison.AT_LEAST),
        ClaimCheck("s232.personal-majority", "over half of manufactured bits "
                   "go to personal devices", 0.5, outcome.personal_bit_share(),
                   Comparison.AT_LEAST),
        ClaimCheck("s232.phones-churn-most", "phones churn faster than SSDs "
                   "(multiplier ratio)", 1.5,
                   next(c.replacement_multiplier for c in outcome.classes
                        if c.name == "smartphone") / ssd_mult,
                   Comparison.AT_LEAST),
        ClaimCheck("s233.no-reuse", "no flash is reused across replacements "
                   "(reuse-adjusted manufacturing equals gross)", 0.0,
                   sum(1 for c in outcome.classes if c.replacement_multiplier <= 1.0)
                   / len(outcome.classes), Comparison.AT_MOST),
        ClaimCheck("s232.endurance-stranded", "the median discarded phone "
                   "still holds most of its flash endurance unused", 0.90,
                   median_stranded, Comparison.AT_LEAST),
    ]
    report("E14 (§2.3.2-§2.3.3): fleet replacement churn", body, checks)
