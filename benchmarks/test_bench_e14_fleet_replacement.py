"""E14 / §2.3.2-§2.3.3: fleet replacement churn drives flash production.

Regenerates the paper's fleet-level conclusion: because personal devices
are discarded every ~2.5-4 years with their soldered flash (§2.3.3:
reuse ~never happens), over half of annual flash bits feed devices whose
capacity will be re-manufactured **over three times** in a decade --
and quantifies the embodied carbon of that churn.

The analytic fleet model is paired with a batched population run: one
vectorized pass of the fleet engine simulates a sample of phones to
their disposal age and measures how much endurance the discarded flash
still holds, closing the loop between churn (this experiment) and the
wear gap (E16).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.fleet import FleetConfig, simulate_fleet
from repro.runner import Sweep, run_sweep
from repro.runner.points import (
    DEFAULT_MIX_WEIGHTS,
    population_batch_grid,
    population_batch_point,
)

from .common import report, runner_jobs

#: sample of phones simulated (one vectorized batch) to disposal age
DISPOSAL_USERS = 60
DISPOSAL_YEARS = 2.5


def compute():
    fleet = simulate_fleet(FleetConfig())
    grid = population_batch_grid(
        DISPOSAL_USERS, int(DISPOSAL_YEARS * 365), 64.0, seed=1414,
        mix_weights=DEFAULT_MIX_WEIGHTS, chunk=DISPOSAL_USERS,
    )
    sweep = Sweep(name="e14-disposal-wear-batch", fn=population_batch_point,
                  grid=grid, base_seed=1414)
    wear = np.concatenate(
        [np.asarray(chunk) for chunk in run_sweep(sweep, jobs=runner_jobs()).values()]
    )
    return fleet, wear


def test_bench_e14_fleet_replacement(benchmark):
    outcome, disposal_wear = benchmark(compute)
    rows = [
        [c.name, f"{c.share * 100:.0f}%", f"{c.installed_eb_start:.0f}",
         f"{c.manufactured_eb:.0f}", f"{c.replacement_multiplier:.1f}x",
         f"{c.embodied_mt:.0f}"]
        for c in outcome.classes
    ]
    body = format_table(
        ["class", "bit share", "installed (EB)", "manufactured/decade (EB)",
         "replacement multiplier", "embodied (Mt CO2e)"],
        rows,
        title="Fleet simulation, 10 years, 10%/yr demand growth",
    )
    median_stranded = 1.0 - float(np.median(disposal_wear))
    body += (f"\n\nwear at disposal ({DISPOSAL_USERS} phones, "
             f"{DISPOSAL_YEARS}y, batched run): median endurance still "
             f"unused when discarded = {median_stranded * 100:.1f}%")
    personal_mult = outcome.personal_replacement_multiplier()
    ssd_mult = next(c.replacement_multiplier for c in outcome.classes if c.name == "ssd")
    checks = [
        ClaimCheck("s232.replaced-3x", "personal-device capacity "
                   "re-manufactured over 3x per decade", 3.0, personal_mult,
                   Comparison.AT_LEAST),
        ClaimCheck("s232.personal-majority", "over half of manufactured bits "
                   "go to personal devices", 0.5, outcome.personal_bit_share(),
                   Comparison.AT_LEAST),
        ClaimCheck("s232.phones-churn-most", "phones churn faster than SSDs "
                   "(multiplier ratio)", 1.5,
                   next(c.replacement_multiplier for c in outcome.classes
                        if c.name == "smartphone") / ssd_mult,
                   Comparison.AT_LEAST),
        ClaimCheck("s233.no-reuse", "no flash is reused across replacements "
                   "(reuse-adjusted manufacturing equals gross)", 0.0,
                   sum(1 for c in outcome.classes if c.replacement_multiplier <= 1.0)
                   / len(outcome.classes), Comparison.AT_MOST),
        ClaimCheck("s232.endurance-stranded", "the median discarded phone "
                   "still holds most of its flash endurance unused", 0.90,
                   median_stranded, Comparison.AT_LEAST),
    ]
    report("E14 (§2.3.2-§2.3.3): fleet replacement churn", body, checks)
