"""Shared helpers for the experiment benchmark harness.

Each benchmark regenerates one figure/claim-set from the paper, prints
the rows/series the paper reports plus a PAPER-vs-MEASURED claims table,
and asserts the claims hold.  ``pytest benchmarks/ --benchmark-only``
runs everything; individual experiments run as plain pytest tests too.
"""

from __future__ import annotations

import os

from repro.analysis.claims import ClaimCheck, claims_table

__all__ = ["report", "report_path", "run_once", "runner_jobs"]


def runner_jobs(default: int = 1) -> int:
    """Worker count for sweep-shaped benchmarks.

    Serial by default so claim tables stay reproducible on any box; set
    ``REPRO_JOBS`` to fan sweeps out (results are bit-identical either
    way -- the runner derives per-point seeds from point indices).
    """
    return int(os.environ.get("REPRO_JOBS", default))


def report_path(name: str) -> str:
    """Repo-root path for a benchmark artifact (e.g. BENCH_runner.json)."""
    return os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), name)


def report(title: str, body: str, checks: list[ClaimCheck]) -> None:
    """Print a uniform experiment report and assert every claim."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
    print()
    print(claims_table(checks))
    failed = [c for c in checks if not c.holds]
    assert not failed, f"claims diverged: {[c.claim_id for c in failed]}"


def run_once(benchmark, func):
    """Benchmark an expensive function with a single measured round."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
