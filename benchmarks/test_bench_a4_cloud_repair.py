"""A4 ablation: cloud-backed repair on/off.

§4.3: "SOS can opportunistically take advantage of such backups by
amending overly degraded local data copies ... However, SOS does not
inherently rely on the existence of such redundant copies."

Bit-exact experiment: the same media object endures the same wear and
scrubbing with and without a reachable cloud copy.  With the cloud, each
rescue restores a pristine copy; without it, rescues can only relocate
(accrued errors travel along) -- quality stays acceptable, just lower.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.core.config import default_config
from repro.core.degradation import DegradationMonitor
from repro.core.partitions import build_partitions
from repro.core.repair import CloudBackup
from repro.core.scrubber import Scrubber
from repro.flash.geometry import Geometry
from repro.host.block_layer import BlockLayer
from repro.media.approx_store import ApproximateStore, MediaLayout
from repro.media.codec import make_media_object

from .common import report, run_once

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=64,
                planes_per_die=2, dies=1)
QUARTERS = 12
#: two wear regimes: "moderate" tracks a typical 3y device life, "harsh"
#: drives SPARE to ~60% of rated endurance where repair provenance matters
WEAR_LEVELS = {"moderate": 8, "harsh": 25}


def _run(cloud_available: bool, pec_per_quarter: int):
    device = build_partitions(default_config(seed=66, geometry=GEOM))
    layer = BlockLayer(device.ftl)
    store = ApproximateStore(layer)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    backup = CloudBackup(available=cloud_available)
    scrubber = Scrubber(layer, monitor, backup, quality_floor=0.9)
    media = make_media_object(24_000, seed=70)
    stored = store.store(media, MediaLayout.HYBRID)
    page_bytes = layer.page_bytes
    for i, lpn in enumerate(stored.lpns):
        backup.store_page(lpn, media.data[i * page_bytes:(i + 1) * page_bytes])
    repairs = 0
    relocations = 0
    for quarter in range(1, QUARTERS + 1):
        for i in device.ftl.stream("spare").blocks:
            device.chip.blocks[i].pec += pec_per_quarter
        device.chip.advance_time(quarter / 4)
        scrub = scrubber.scrub(stored.lpns)
        repairs += scrub.pages_repaired_from_cloud
        relocations += scrub.pages_relocated
    quality = store.audit_quality(stored).quality
    return quality, repairs, relocations, backup.stats


def compute():
    return {
        f"{wear}, cloud {'on' if cloud else 'off'}": _run(cloud, pec)
        for wear, pec in WEAR_LEVELS.items()
        for cloud in (True, False)
    }


def test_bench_a4_cloud_repair(benchmark):
    results = run_once(benchmark, compute)
    rows = []
    for name, (quality, repairs, relocations, stats) in results.items():
        rows.append([name, f"{quality:.4f}", repairs, relocations,
                     stats.pages_fetched])
    body = format_table(
        ["arm", "final quality", "cloud repairs", "relocations",
         "backup fetches"],
        rows,
        title=f"Cloud repair ablation ({QUARTERS} quarters, hybrid layout)",
    )
    harsh_on = results["harsh, cloud on"][0]
    harsh_off = results["harsh, cloud off"][0]
    moderate_off = results["moderate, cloud off"][0]
    checks = [
        ClaimCheck("a4.cloud-helps", "cloud repair improves end-of-life "
                   "quality under harsh wear (on - off)", 0.0,
                   harsh_on - harsh_off, Comparison.AT_LEAST),
        ClaimCheck("a4.cloud-restores", "with the cloud, even harsh wear ends "
                   "near-pristine (repairs rewrite clean copies)", 0.95,
                   harsh_on, Comparison.AT_LEAST),
        ClaimCheck("a4.repairs-happen", "rescues use the cloud when available",
                   1.0, float(results["harsh, cloud on"][1]), Comparison.AT_LEAST),
        ClaimCheck("a4.fallback-works", "without the cloud, rescues fall back "
                   "to relocation", 1.0, float(results["harsh, cloud off"][2]),
                   Comparison.AT_LEAST),
        ClaimCheck("a4.no-hard-dependency", "SOS does not *rely* on the cloud: "
                   "at a typical device life's wear, offline quality stays "
                   "above the acceptability bar", 0.8, moderate_off,
                   Comparison.AT_LEAST),
    ]
    report("A4 (ablation): cloud-backed repair on/off", body, checks)
