"""E2 / §1+§3: flash production carbon footprint, 2021 -> 2030.

Regenerates the paper's trajectory: 765 EB and ~122 Mt CO2e (~28M
people-equivalents) in 2021, growing past 150M people-equivalents and
~1.7% of world emissions by 2030 despite density improvements.
"""

from __future__ import annotations

from repro.analysis.charts import series_chart
from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.carbon.projection import project

from .common import report


def compute():
    return project()


def test_bench_e2_carbon_projection(benchmark):
    points = benchmark(compute)
    rows = [
        [p.year, f"{p.capacity_eb:.0f}", f"{p.intensity_kg_per_gb:.3f}",
         f"{p.emissions_mt:.0f}", f"{p.people_equivalent_millions:.0f}",
         f"{p.share_of_world_2030 * 100:.2f}%"]
        for p in points
    ]
    body = format_table(
        ["year", "capacity (EB)", "kg CO2e/GB", "emissions (Mt)",
         "people-equiv (M)", "share of world"],
        rows,
        title="Flash production carbon projection",
    )
    body += "\n\n" + series_chart(
        "emissions (Mt)", [p.year for p in points], [p.emissions_mt for p in points]
    )
    body += "\n" + series_chart(
        "kg CO2e/GB  ", [p.year for p in points],
        [p.intensity_kg_per_gb for p in points],
    )
    p2021, p2030 = points[0], points[-1]
    checks = [
        ClaimCheck("s1.capacity-2021", "2021 flash production (EB)", 765.0,
                   p2021.capacity_eb, rel_tol=0.01),
        ClaimCheck("s1.emissions-2021", "2021 emissions (Mt CO2e)", 122.0,
                   p2021.emissions_mt, rel_tol=0.05),
        ClaimCheck("s1.people-2021", "2021 people-equivalents (M)", 28.0,
                   p2021.people_equivalent_millions, rel_tol=0.05),
        ClaimCheck("s1.people-2030", "2030 people-equivalents (M)", 150.0,
                   p2030.people_equivalent_millions, Comparison.AT_LEAST),
        ClaimCheck("abstract.share-2030", "2030 share of world emissions", 0.017,
                   p2030.share_of_world_2030, rel_tol=0.12),
        ClaimCheck("s3.growth-monotone", "emissions grow every year despite "
                   "density gains (fraction of years growing)", 1.0,
                   sum(1 for a, b in zip(points, points[1:])
                       if b.emissions_mt > a.emissions_mt) / (len(points) - 1),
                   rel_tol=0.001),
    ]
    report("E2 (§1/§3): flash production carbon footprint 2021-2030", body, checks)
