"""A5 ablation: periodic re-evaluation under preference drift (§4.4).

"We plan to periodically re-evaluate user preferences as these tend to
change over time."  This ablation quantifies why: user file values drift
(mean-reverting random walk over 2 years); a classify-once-at-creation
policy accumulates misplacements, while quarterly re-evaluation tracks
the drift.

Measured as: fraction of *currently* critical files sitting on SPARE
(data at risk) and fraction of currently low-value files still hogging
SYS (density given away), for both policies.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.classify.classifier import train_classifier
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.classify.drift import DriftConfig, drift_corpus
from repro.host.hints import Placement

from .common import report, run_once

QUARTERS = 8  # 2 years
NOW0 = 2.0


def compute():
    corpus_config = CorpusConfig(n_files=4000)
    corpus = generate_corpus(corpus_config, seed=808)
    classifier0, _ = train_classifier(corpus, NOW0, seed=808)

    # initial placement (all policies start identical)
    stale_placement: dict[int, Placement] = {}
    for item in corpus:
        hint = classifier0.classify(item.record, NOW0)
        stale_placement[item.record.file_id] = hint.placement
    reclassify_placement = dict(stale_placement)
    retrain_placement = dict(stale_placement)

    current = corpus
    for quarter in range(1, QUARTERS + 1):
        current = drift_corpus(
            current, 0.25, DriftConfig(), corpus_config, seed=900 + quarter
        )
        now = NOW0 + quarter * 0.25
        # arm 2: re-classify with the original (t0) model
        for item in current:
            hint = classifier0.classify(item.record, now)
            reclassify_placement[item.record.file_id] = hint.placement
        # arm 3: re-train on the current pool, then re-classify -- the
        # paper's full "periodically re-evaluate" loop (its training data
        # is a continuously re-scanned user-file pool, section 4.4)
        classifier_t, _ = train_classifier(current, now, seed=808)
        for item in current:
            hint = classifier_t.classify(item.record, now)
            retrain_placement[item.record.file_id] = hint.placement

    def risk_and_waste(placement: dict[int, Placement]):
        user_files = [f for f in current if not f.record.is_system]
        critical = [f for f in user_files if f.critical]
        low_value = [f for f in user_files if not f.critical]
        at_risk = sum(
            1 for f in critical
            if placement[f.record.file_id] is Placement.SPARE
        ) / max(1, len(critical))
        wasted = sum(
            1 for f in low_value
            if placement[f.record.file_id] is Placement.SYS
        ) / max(1, len(low_value))
        return at_risk, wasted

    return (
        risk_and_waste(stale_placement),
        risk_and_waste(reclassify_placement),
        risk_and_waste(retrain_placement),
    )


def test_bench_a5_reevaluation(benchmark):
    stale, reclassify, retrain = run_once(benchmark, compute)
    rows = [
        ["classify once at creation", f"{stale[0] * 100:.1f}%",
         f"{stale[1] * 100:.1f}%"],
        ["re-classify, frozen t0 model", f"{reclassify[0] * 100:.1f}%",
         f"{reclassify[1] * 100:.1f}%"],
        ["re-classify + periodic retraining", f"{retrain[0] * 100:.1f}%",
         f"{retrain[1] * 100:.1f}%"],
    ]
    body = format_table(
        ["policy", "critical files on SPARE (risk)",
         "low-value files on SYS (density lost)"],
        rows,
        title=f"After {QUARTERS / 4:.0f} years of preference drift",
    )
    checks = [
        ClaimCheck("a5.drift-creates-risk", "without re-evaluation, drift "
                   "puts a nontrivial share of now-critical files on SPARE",
                   0.05, stale[0], Comparison.AT_LEAST),
        ClaimCheck("a5.retrain-cuts-risk", "the full re-evaluation loop "
                   "(retrain + re-classify) reduces risk vs classify-once "
                   "(stale/retrain ratio)", 1.3,
                   stale[0] / max(retrain[0], 1e-9), Comparison.AT_LEAST),
        ClaimCheck("a5.retrain-risk-bounded", "with retraining the risk stays "
                   "near the classifier's static error rate", 0.25,
                   retrain[0], Comparison.AT_MOST),
        ClaimCheck("a5.frozen-model-shifts", "re-classifying with a frozen "
                   "model is WORSE than not re-classifying (covariate shift: "
                   "every file ages out of the training distribution) -- the "
                   "re-evaluation the paper plans requires refreshing the "
                   "training pool too", stale[0], reclassify[0],
                   Comparison.AT_LEAST),
        ClaimCheck("a5.retrain-keeps-density", "retraining also keeps the "
                   "density win (low-value files on SYS)", 0.25, retrain[1],
                   Comparison.AT_MOST),
    ]
    report("A5 (ablation): periodic re-evaluation under preference drift",
           body, checks)
