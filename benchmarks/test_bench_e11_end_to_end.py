"""E11 / Figure 2 + §4 end-to-end: SOS vs baselines over a device life.

The headline experiment: four device builds (TLC, QLC, PLC-naive, SOS)
at equal user capacity run the same 3-year personal workload at two
intensities.  Regenerates the paper's who-wins picture:

* **carbon**: SOS embodies ~1/3 less carbon than the TLC status quo and
  ~10% less than QLC for the same capacity (§4.1-§4.2);
* **reliability**: SOS survives the device life -- SYS wear stays within
  pseudo-QLC endurance, SPARE media quality stays acceptable, and the
  expected uncorrectable events on critical data remain far below the
  naive all-PLC design under heavy use;
* **the trade**: PLC-naive embodies the least carbon but exposes
  critical data to the most risk -- the gap SOS's co-design closes.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.sim.baselines import (
    build_plc_naive,
    build_qlc_baseline,
    build_sos,
    build_tlc_baseline,
)
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

from .common import report, run_once

YEARS = 3
CAPACITY_GB = 64.0
BUILDERS = {
    "tlc_baseline": build_tlc_baseline,
    "qlc_baseline": build_qlc_baseline,
    "plc_naive": build_plc_naive,
    "sos": build_sos,
}


def compute():
    results = {}
    for mix in ("typical", "heavy"):
        summaries = MobileWorkload(
            WorkloadConfig(mix=mix, days=YEARS * 365, seed=303)
        ).daily_summaries()
        for name, builder in BUILDERS.items():
            results[(mix, name)] = run_lifetime(builder(CAPACITY_GB), summaries)
    return results


def test_bench_e11_end_to_end(benchmark):
    results = run_once(benchmark, compute)
    rows = []
    for (mix, name), r in results.items():
        f = r.final
        rows.append(
            [mix, name, f"{r.embodied_kg:.2f}", f"{f.sys_wear_fraction * 100:.1f}%",
             f"{f.spare_wear_fraction * 100:.1f}%", f"{f.spare_quality:.3f}",
             f"{f.sys_uncorrectable:.2e}", f.retired_groups, r.survived()]
        )
    body = format_table(
        ["mix", "device", "embodied kg", "SYS wear", "SPARE wear",
         "media quality", "E[uncorrectable]", "retired", "survived"],
        rows,
        title=f"{CAPACITY_GB:.0f} GB devices after {YEARS} years",
    )
    tlc_t = results[("typical", "tlc_baseline")]
    qlc_t = results[("typical", "qlc_baseline")]
    sos_t = results[("typical", "sos")]
    plc_h = results[("heavy", "plc_naive")]
    sos_h = results[("heavy", "sos")]
    checks = [
        ClaimCheck("s42.carbon-vs-tlc", "SOS embodied carbon reduction vs TLC "
                   "(1.5x density -> 1/3 less silicon)", 1 - 1 / 1.5,
                   1 - sos_t.embodied_kg / tlc_t.embodied_kg, rel_tol=0.03),
        ClaimCheck("s42.carbon-vs-qlc", "SOS embodied carbon reduction vs QLC "
                   "(paper: ~10% capacity gain -> ~10% less silicon)", 0.10,
                   1 - sos_t.embodied_kg / qlc_t.embodied_kg, rel_tol=0.35),
        ClaimCheck("e11.sos-survives-typical", "SOS survives 3y of typical use "
                   "(1 = yes)", 1.0, float(sos_t.survived()), rel_tol=0.001),
        ClaimCheck("e11.sos-heavy-graceful", "under heavy use SOS degrades "
                   "gracefully via §4.3 resuscitation: >= 75% capacity retained",
                   0.75, sos_h.final.capacity_gb / CAPACITY_GB,
                   Comparison.AT_LEAST),
        ClaimCheck("e11.sos-heavy-quality", "media quality after heavy-use "
                   "resuscitation", 0.9, sos_h.final.spare_quality,
                   Comparison.AT_LEAST),
        ClaimCheck("e11.sos-quality", "SOS media quality after 3y typical use",
                   0.9, sos_t.final.spare_quality, Comparison.AT_LEAST),
        ClaimCheck("e11.sys-wear-margin", "SOS SYS wear stays within pseudo-QLC "
                   "endurance after 3y heavy use", 1.0,
                   sos_h.final.sys_wear_fraction, Comparison.AT_MOST),
        ClaimCheck("e11.plc-naive-riskier", "under heavy use, naive all-PLC "
                   "exposes critical data to more uncorrectable events than "
                   "SOS's protected SYS (ratio)", 10.0,
                   (plc_h.final.sys_uncorrectable + 1e-30)
                   / (sos_h.final.sys_uncorrectable + 1e-30),
                   Comparison.AT_LEAST),
        ClaimCheck("e11.tlc-wear-tiny", "TLC baseline barely wears in 3y "
                   "(the §2.3 gap SOS exploits)", 0.10,
                   tlc_t.final.sys_wear_fraction, Comparison.AT_MOST),
    ]
    report("E11 (Figure 2 / §4): SOS vs baselines over a 3-year device life",
           body, checks)
