"""E10 / §4.5: the auto-delete trim fallback on the bit-exact device.

Fills an SOS device near capacity, then forces the §4.5 scenario -- PLC
wear retires blocks and the device shrinks under the live data.  The
daemon's trim policy must auto-delete the most expendable files until
~3% of (current) capacity is free, then return to degradation-only
mode, preserving the high-value files.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.core.trim_policy import TrimMode
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind

from .common import report, run_once

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=48,
                planes_per_die=2, dies=1)


def compute():
    # NOTE: the paper's "e.g. 3%" headroom assumes a real-size device; on
    # this small bit-exact geometry the FTL's per-stream GC reserve alone
    # is ~3% of capacity, so we exercise the identical mechanism at a 10%
    # target (the policy is scale-free: the target is a config knob).
    device = SOSDevice(default_config(seed=55, geometry=GEOM, trim_free_target=0.10))
    rng = np.random.default_rng(3)
    keepers = []
    for i in range(4):
        record = device.create_file(
            f"/photos/keeper{i}", FileKind.PHOTO, 4000,
            attributes=FileAttributes(
                user_favorite=True, has_known_faces=True, access_count=150,
            ),
            content=lambda o: rng.bytes(400),
        )
        keepers.append(record.path)
    junk = []
    # fill SPARE with junk downloads (demoted by the daemon as we go --
    # new data always lands on SYS first, per the write path of section 4.4)
    i = 0
    now = 0.0
    spare_cap = device.ftl.stream_capacity_pages("spare")
    while device.ftl.stream_live_pages("spare") < 0.85 * spare_cap:
        record = device.create_file(
            f"/downloads/junk{i}", FileKind.DOWNLOAD, 4000,
            attributes=FileAttributes(
                created_years=now, last_access_years=now,
                duplicate_count=4, access_count=1,
            ),
            content=lambda o: rng.bytes(400),
        )
        junk.append(record.path)
        i += 1
        if i % 4 == 0:
            now += 0.002
            device.advance_time(now)
            device.run_daemon()
    # fill SYS with system files (rule layer pins them to SYS)
    sys_cap = device.ftl.stream_capacity_pages("sys")
    j = 0
    while device.ftl.stream_live_pages("sys") < 0.88 * sys_cap:
        device.create_file(
            f"/system/pkg{j}", FileKind.APP_EXECUTABLE, 4000,
            content=lambda o: rng.bytes(400),
        )
        j += 1
    capacity_before = device.filesystem.capacity_pages()
    free_before = device.filesystem.free_pages()
    # force section 4.5: wear retires free SPARE blocks -> capacity shrinks
    stream = device.ftl.stream("spare")
    for block_index in list(stream.free):
        if device.trim.under_pressure():
            break
        if len(stream.free) <= stream.config.gc_free_block_threshold + 1:
            break  # keep enough room for the FTL to keep operating
        stream.free.remove(block_index)
        device.chip.retire_block(block_index)
    assert device.trim.under_pressure(), "staged shrink must create pressure"
    device.advance_time(now + 0.1)
    report_run = device.run_daemon()
    capacity_after = device.filesystem.capacity_pages()
    free_after = device.filesystem.free_pages()
    live_paths = {r.path for r in device.filesystem.live_files()}
    return {
        "capacity_before": capacity_before,
        "capacity_after": capacity_after,
        "free_before": free_before,
        "free_after": free_after,
        "trim_event": report_run.trim,
        "mode": device.trim.mode,
        "keepers_alive": sum(1 for p in keepers if p in live_paths),
        "keepers_total": len(keepers),
        "junk_total": len(junk),
        "free_target": device.trim.headroom_pages_needed(),
    }


def test_bench_e10_trim_policy(benchmark):
    r = run_once(benchmark, compute)
    rows = [
        ["capacity (pages)", r["capacity_before"], r["capacity_after"]],
        ["free (pages)", r["free_before"], r["free_after"]],
    ]
    body = format_table(["metric", "before shrink", "after trim"], rows,
                        title="Device state around the §4.5 trim episode")
    event = r["trim_event"]
    assert event is not None, "capacity shrink must trigger a trim event"
    checks = [
        ClaimCheck("s45.capacity-shrank", "worn blocks reduced capacity "
                   "(after/before below 1)", 1.0,
                   r["capacity_after"] / r["capacity_before"], Comparison.AT_MOST),
        ClaimCheck("s45.trim-freed-target", "trim freed at least the ~3% "
                   "headroom target (free/target)", 1.0,
                   r["free_after"] / max(1, r["free_target"]), Comparison.AT_LEAST),
        ClaimCheck("s45.back-to-degradation", "mode returns to degradation-only "
                   "(1 = yes)", 1.0,
                   1.0 if r["mode"] is TrimMode.DEGRADATION_ONLY else 0.0,
                   rel_tol=0.001),
        ClaimCheck("s45.deletes-bounded", "trim deleted only what it needed "
                   "(files deleted below half the junk)", r["junk_total"] / 2,
                   float(event.files_deleted), Comparison.AT_MOST),
        ClaimCheck("s45.keepers-survive", "high-value files survive the trim",
                   float(r["keepers_total"]), float(r["keepers_alive"]),
                   rel_tol=0.001),
    ]
    report("E10 (§4.5): auto-delete trim under capacity pressure", body, checks)
