"""A3 ablation: classifier conservativeness threshold.

§4.2/§4.3: the classifier "err[s] on the side of caution" -- demotion to
SPARE happens only below a P(critical) threshold.  This sweep varies the
threshold and regenerates the safety/density frontier:

* low thresholds demote little: safe but the density win shrinks toward
  zero (the device degenerates to all-pseudo-QLC);
* high thresholds demote almost everything: maximum density but truly
  critical files start landing on degradable storage;
* the default (0.35) sits where most low-value media is demoted while
  critical demotions stay rare.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.runner import Sweep, run_sweep
from repro.runner.points import threshold_point

from .common import report, run_once, runner_jobs

NOW = 2.0
THRESHOLDS = (0.05, 0.2, 0.35, 0.5, 0.7, 0.9)


def compute():
    sweep = Sweep(
        name="a3-threshold-sweep",
        fn=threshold_point,
        grid=tuple(
            {"threshold": t, "n_files": 6000, "now_years": NOW, "corpus_seed": 606}
            for t in THRESHOLDS
        ),
        base_seed=606,
    )
    metrics = run_sweep(sweep, jobs=runner_jobs()).values()
    return list(zip(THRESHOLDS, metrics))


def test_bench_a3_threshold_sweep(benchmark):
    sweep = run_once(benchmark, compute)
    rows = [
        [f"{t:.2f}", f"{m.spare_fraction:.3f}", f"{m.critical_demotion_rate:.3f}"]
        for t, m in sweep
    ]
    body = format_table(
        ["demote threshold", "files on SPARE", "critical files demoted"],
        rows,
        title="Classifier conservativeness sweep",
    )
    spare = [m.spare_fraction for _, m in sweep]
    risk = [m.critical_demotion_rate for _, m in sweep]
    default = next(m for t, m in sweep if t == 0.35)
    checks = [
        ClaimCheck("a3.spare-monotone", "SPARE share rises with the threshold "
                   "(fraction of non-decreasing steps)", 1.0,
                   sum(1 for a, b in zip(spare, spare[1:]) if b >= a - 1e-9)
                   / (len(spare) - 1), rel_tol=0.001),
        ClaimCheck("a3.risk-monotone", "critical demotions rise with the "
                   "threshold (fraction of non-decreasing steps)", 1.0,
                   sum(1 for a, b in zip(risk, risk[1:]) if b >= a - 1e-9)
                   / (len(risk) - 1), rel_tol=0.001),
        ClaimCheck("a3.default-demotes-majority", "default threshold demotes "
                   "a large share of files", 0.4, default.spare_fraction,
                   Comparison.AT_LEAST),
        ClaimCheck("a3.default-conservative", "default threshold keeps critical "
                   "demotions rare", 0.2, default.critical_demotion_rate,
                   Comparison.AT_MOST),
        ClaimCheck("a3.extremes-span", "the sweep actually spans the frontier "
                   "(max - min SPARE share)", 0.3, spare[-1] - spare[0],
                   Comparison.AT_LEAST),
    ]
    report("A3 (ablation): classifier conservativeness threshold", body, checks)
