"""A9 ablation: deterministic fault injection at increasing scale.

"The Dirty Secret of SSDs" motivation behind §4.3: real devices lose
blocks early (infant mortality), reads flake, programs get torn by power
loss, and the cloud repair source goes away for days at a time.  SOS's
pitch is graceful degradation -- faults cost capacity and quality
*proportionally*, never a bricked device or a crashed simulation.

Sweep-shaped: one :func:`~repro.runner.points.fault_ablation_point` per
fault scale (0x = fault-free control, then 1x/2x/4x the base rates),
fanned out through the fault-tolerant runner.  Claims:

* the zero-scale arm is bit-identical to a plain fault-free run (the
  fault machinery is observationally free when disabled);
* fault counters scale monotonically with the injected rate;
* even the harshest arm completes and keeps a usable device (graceful
  degradation, not collapse).
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.runner import Sweep, run_sweep
from repro.runner.points import fault_ablation_point

from .common import report, run_once, runner_jobs

CAPACITY_GB = 32.0
DAYS = 2 * 365
SEED = 41
SCALES = (0.0, 1.0, 2.0, 4.0)


def compute():
    grid = tuple(
        {
            "fault_scale": scale,
            "capacity_gb": CAPACITY_GB,
            "mix": "typical",
            "days": DAYS,
            "workload_seed": SEED,
        }
        for scale in SCALES
    )
    sweep = Sweep(
        name="a9-fault-ablation",
        fn=fault_ablation_point,
        grid=grid,
        base_seed=SEED,
    )
    outcome = run_sweep(sweep, jobs=runner_jobs(), retries=1, keep_going=False)
    return [p.value for p in outcome.points]


def test_bench_a9_fault_ablation(benchmark):
    arms = run_once(benchmark, compute)
    by_scale = {arm["fault_scale"]: arm for arm in arms}
    rows = []
    for scale in SCALES:
        arm = by_scale[scale]
        faults = arm["faults"]
        rows.append([
            f"{scale:g}x",
            faults.get("infant_deaths", 0),
            faults.get("transient_reads", 0),
            faults.get("torn_programs", 0),
            faults.get("cloud_outage_days", 0),
            f"{arm['capacity_fraction'] * 100:.1f}%",
            f"{arm['spare_quality']:.3f}",
            "yes" if arm["survived"] else "no",
        ])
    body = format_table(
        ["fault scale", "infant deaths", "transient reads", "torn programs",
         "outage days", "capacity left", "media quality", "usable"],
        rows,
        title=f"Fault-injection ablation ({CAPACITY_GB:.0f} GB SOS, "
              f"{DAYS // 365}y typical mix)",
    )

    control = by_scale[0.0]
    harshest = by_scale[max(SCALES)]
    event_totals = [
        sum(
            by_scale[s]["faults"].get(k, 0)
            for k in ("infant_deaths", "transient_reads", "torn_programs",
                      "cloud_outage_days")
        )
        for s in SCALES
    ]
    checks = [
        ClaimCheck("a9.zero-is-free", "the 0x arm records zero fault events "
                   "(fault machinery is observationally free when disabled)",
                   0.0, float(event_totals[0]), Comparison.AT_MOST),
        ClaimCheck("a9.counters-scale", "total fault events increase "
                   "monotonically with the injected rate", 1.0,
                   float(all(a < b for a, b in zip(event_totals, event_totals[1:]))),
                   Comparison.AT_LEAST),
        ClaimCheck("a9.graceful-degradation", "the harshest arm still ends "
                   "with a usable device (capacity above half)", 0.5,
                   harshest["capacity_fraction"], Comparison.AT_LEAST),
        ClaimCheck("a9.faults-cost-capacity", "injected faults cost capacity "
                   "relative to the control (degradation is real, not a "
                   "no-op)", control["capacity_fraction"],
                   harshest["capacity_fraction"], Comparison.AT_MOST),
        ClaimCheck("a9.all-arms-complete", "every arm completes under "
                   "injected faults (no crash, no lost points)",
                   float(len(SCALES)), float(len(arms)), Comparison.AT_LEAST),
    ]
    report("A9 (ablation): deterministic fault injection", body, checks)
