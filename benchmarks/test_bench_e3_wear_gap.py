"""E3 / §2.3: the wear gap between device lifetime and flash endurance.

Regenerates the observations that justify trading endurance for density:

* a typical user consumes only a few percent of a TLC device's rated
  endurance during the 2-year warranty (the paper cites ~5% as the
  upper end of typical);
* flash endurance outlasts the encasing device's service life by an
  order of magnitude;
* even an adversarial write-hammering workload needs sustained effort to
  wear a device out (Zhang et al.'s Final Fantasy example).
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.sim.baselines import build_tlc_baseline
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

from .common import report, run_once

WARRANTY_YEARS = 2
DEVICE_GB = 64.0


def compute():
    out = {}
    for mix in ("light", "typical", "heavy", "adversarial"):
        summaries = MobileWorkload(
            WorkloadConfig(mix=mix, days=WARRANTY_YEARS * 365, seed=101)
        ).daily_summaries()
        result = run_lifetime(build_tlc_baseline(DEVICE_GB), summaries)
        out[mix] = result.final.sys_wear_fraction
    return out


def test_bench_e3_wear_gap(benchmark):
    wear = run_once(benchmark, compute)
    rows = []
    for mix, fraction in wear.items():
        lifetime_ratio = (
            WARRANTY_YEARS / (fraction * WARRANTY_YEARS / 1.0) / WARRANTY_YEARS
            if fraction > 0
            else float("inf")
        )
        # years to wear out at this rate, over the warranty period
        years_to_wearout = WARRANTY_YEARS / fraction if fraction > 0 else float("inf")
        rows.append(
            [mix, f"{fraction * 100:.1f}%", f"{years_to_wearout:.0f}",
             f"{years_to_wearout / 2.5:.0f}x"]
        )
    body = format_table(
        ["user mix", "endurance used in warranty", "years to wear-out",
         "vs 2.5y phone life"],
        rows,
        title=f"TLC {DEVICE_GB:.0f} GB device, {WARRANTY_YEARS}-year warranty",
    )
    typical = wear["typical"]
    heavy = wear["heavy"]
    years_to_wearout_typical = WARRANTY_YEARS / typical
    checks = [
        ClaimCheck("s232.wear-5pct", "typical-to-heavy use consumes ~5% "
                   "or less of endurance in warranty", 0.005, max(typical, heavy),
                   Comparison.BETWEEN, paper_upper=0.06),
        ClaimCheck("s232.gap-10x", "flash outlasts 2.5y phone life by >=10x",
                   10.0, years_to_wearout_typical / 2.5, Comparison.AT_LEAST),
        ClaimCheck("s232.ordering", "heavier use wears more (heavy/typical)",
                   1.0, heavy / typical, Comparison.AT_LEAST),
        ClaimCheck("s232.adversarial", "adversarial use wears >=10x typical",
                   10.0, wear["adversarial"] / typical, Comparison.AT_LEAST),
    ]
    report("E3 (§2.3): wear gap between device lifetime and flash endurance",
           body, checks)
