"""E13 / §5: data reduction is less effective than density on personal data.

Regenerates the related-work comparison: build a byte-realistic personal
corpus (media-majority, per-kind compressibility), measure what inline
compression and chunk dedup actually save, and contrast with SOS's
density gain.  The expected shape: media barely compresses, the overall
savings land well below the 33% silicon cut SOS gets from density alone.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.host.files import FileKind, MEDIA_KINDS
from repro.host.reduction import analyze, compress_savings
from repro.workloads.content import generate_content

from .common import report, run_once

#: byte-volume mix of a personal device (media > half, §4.2)
BYTE_MIX: dict[FileKind, float] = {
    FileKind.PHOTO: 0.25,
    FileKind.VIDEO: 0.30,
    FileKind.AUDIO: 0.08,
    FileKind.MESSAGE_MEDIA: 0.07,
    FileKind.APP_EXECUTABLE: 0.12,
    FileKind.APP_METADATA: 0.10,
    FileKind.DOCUMENT: 0.04,
    FileKind.DOWNLOAD: 0.04,
}
CORPUS_BYTES = 4_000_000
SOS_CARBON_CUT = 1 - 1 / 1.5  # density +50% -> 1/3 less silicon


def compute():
    rng = np.random.default_rng(909)
    per_kind = {}
    buffers = []
    for kind, frac in BYTE_MIX.items():
        size = int(CORPUS_BYTES * frac)
        data = generate_content(kind, size, rng)
        per_kind[kind] = compress_savings(data)
        buffers.append(data)
    # some downloads are literal duplicates (dedup fodder)
    buffers.append(buffers[-1])
    overall = analyze(buffers)
    return per_kind, overall


def test_bench_e13_data_reduction(benchmark):
    per_kind, overall = run_once(benchmark, compute)
    rows = [
        [kind.value, f"{BYTE_MIX[kind] * 100:.0f}%", f"{savings * 100:.1f}%"]
        for kind, savings in per_kind.items()
    ]
    rows.append(["OVERALL compression", "100%", f"{overall.compression_savings * 100:.1f}%"])
    rows.append(["OVERALL dedup", "100%", f"{overall.dedup_savings * 100:.1f}%"])
    rows.append(["SOS density gain (for scale)", "-", f"{SOS_CARBON_CUT * 100:.1f}%"])
    body = format_table(
        ["content", "share of bytes", "capacity savings"],
        rows,
        title="Data-reduction baselines on a personal-device byte mix",
    )
    media_savings = [per_kind[k] for k in per_kind if k in MEDIA_KINDS]
    structured = per_kind[FileKind.APP_METADATA]
    checks = [
        ClaimCheck("s5.media-incompressible", "media content compresses "
                   "poorly (worst media kind)", 0.10, max(media_savings),
                   Comparison.AT_MOST),
        ClaimCheck("s5.structured-compresses", "structured app data *does* "
                   "compress (the enterprise case)", 0.5, structured,
                   Comparison.AT_LEAST),
        ClaimCheck("s5.overall-small", "overall compression savings on a "
                   "personal mix stay below 20%", 0.20,
                   overall.compression_savings, Comparison.AT_MOST),
        ClaimCheck("s5.sos-wins", "SOS's density cut exceeds compression "
                   "savings (ratio)", 1.5,
                   SOS_CARBON_CUT / max(overall.compression_savings, 1e-9),
                   Comparison.AT_LEAST),
        ClaimCheck("s5.dedup-modest", "dedup savings stay modest (mostly "
                   "duplicate downloads)", 0.25, overall.dedup_savings,
                   Comparison.AT_MOST),
    ]
    report("E13 (§5): data reduction vs density on personal storage", body, checks)
