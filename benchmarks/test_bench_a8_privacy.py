"""A8 ablation: less-pervasive tracking vs classification quality.

§4.5 ("Security"): "to optimally manage users data SOS must continuously
track and monitor user behavior and file content (e.g., family photos).
Many users may deem such tracking as too invasive.  We plan to
investigate the effect of less-pervasive tracking ... on the accuracy of
our proposed data management mechanism."

This ablation runs that investigation: the classifier is retrained with
progressively less invasive feature sets --

* ``full``: everything (content inspection + behaviour tracking);
* ``no_content``: drop content-derived signals (face detection,
  sensitivity scanning) -- no looking *inside* files;
* ``no_behavior``: drop behaviour tracking (access/modify history,
  favorites) -- no watching the *user*;
* ``metadata_only``: only kind, size, and age -- what a filesystem
  already knows.

Measured: held-out accuracy, conservative-demotion risk, and the density
win (SPARE share) at each privacy level.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.classify.features import FEATURE_NAMES, feature_matrix
from repro.classify.logistic import LogisticRegression

from .common import report, run_once

NOW = 2.0
DEMOTE_THRESHOLD = 0.35

#: feature names dropped at each privacy level; "no_content" removes
#: content inspection (§4.5's "file content (e.g., family photos)"),
#: "no_behavior" removes user-behaviour tracking, "metadata_only" both
_PRIVACY_LEVELS = {
    "full": set(),
    "no_content": {"has_known_faces", "sensitivity_score", "is_screenshot",
                   "log_duplicate_count"},
    "no_behavior": {"log_access_count", "log_modify_count", "idle_years",
                    "user_favorite", "shared_from_other", "cloud_backed"},
    "metadata_only": {"has_known_faces", "sensitivity_score", "is_screenshot",
                      "log_duplicate_count", "log_access_count",
                      "log_modify_count", "idle_years", "user_favorite",
                      "shared_from_other", "cloud_backed"},
}


def _evaluate(X_train, y_train, X_test, y_test, system_test, dropped):
    keep = [i for i, name in enumerate(FEATURE_NAMES) if name not in dropped]
    model = LogisticRegression().fit(X_train[:, keep], y_train)
    p = model.predict_proba(X_test[:, keep])
    pred = (p >= 0.5).astype(int)
    accuracy = float(np.mean(pred == y_test))
    demote = (p < DEMOTE_THRESHOLD) & ~system_test
    critical_total = max(1, int(np.sum(y_test == 1)))
    risk = float(np.sum(demote & (y_test == 1)) / critical_total)
    spare_share = float(np.mean(demote))
    return accuracy, risk, spare_share


def compute():
    corpus = generate_corpus(CorpusConfig(n_files=6000), seed=505)
    rng = np.random.default_rng(505)
    order = rng.permutation(len(corpus))
    split = int(len(corpus) * 0.7)
    train = [corpus[i] for i in order[:split]]
    test = [corpus[i] for i in order[split:]]
    X_train = feature_matrix([f.record for f in train], NOW)
    y_train = np.array([int(f.critical) for f in train])
    X_test = feature_matrix([f.record for f in test], NOW)
    y_test = np.array([int(f.critical) for f in test])
    system_test = np.array([f.record.is_system for f in test])
    return {
        level: _evaluate(X_train, y_train, X_test, y_test, system_test, dropped)
        for level, dropped in _PRIVACY_LEVELS.items()
    }


def test_bench_a8_privacy(benchmark):
    results = run_once(benchmark, compute)
    rows = [
        [level, f"{acc:.3f}", f"{risk:.3f}", f"{share:.3f}"]
        for level, (acc, risk, share) in results.items()
    ]
    body = format_table(
        ["tracking level", "accuracy", "critical demoted (risk)",
         "files on SPARE (density)"],
        rows,
        title="Classification quality vs tracking invasiveness",
    )
    full_acc = results["full"][0]
    metadata_acc = results["metadata_only"][0]
    checks = [
        ClaimCheck("a8.full-is-best", "full tracking gives the best accuracy "
                   "(fraction of reduced levels it beats or ties)", 1.0,
                   sum(1 for level, (acc, _, _) in results.items()
                       if level == "full" or acc <= full_acc + 1e-9)
                   / len(results), rel_tol=0.001),
        ClaimCheck("a8.privacy-costs-accuracy", "metadata-only tracking loses "
                   "measurable accuracy vs full", 0.02,
                   full_acc - metadata_acc, Comparison.AT_LEAST),
        ClaimCheck("a8.metadata-still-useful", "even metadata-only stays well "
                   "above chance (the mechanism degrades, not collapses)",
                   0.65, metadata_acc, Comparison.AT_LEAST),
        ClaimCheck("a8.privacy-costs-safety", "the paper's worry is real: "
                   "metadata-only tracking multiplies demotion risk vs full "
                   "tracking (ratio)", 1.5,
                   results["metadata_only"][1] / max(results["full"][1], 1e-9),
                   Comparison.AT_LEAST),
        ClaimCheck("a8.risk-never-catastrophic", "even metadata-only risk "
                   "stays below half of critical files", 0.5,
                   max(risk for _, risk, _ in results.values()),
                   Comparison.AT_MOST),
    ]
    report("A8 (ablation, §4.5 Security): less-pervasive tracking", body, checks)
