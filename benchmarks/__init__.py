"""Experiment benchmark harness: one module per figure/claim-set."""
