"""E7 / §4.3: wear leveling disabled on SPARE.

Regenerates the Jiao-et-al argument the paper adopts: on a partition of
write-once media plus a little churn, static wear leveling spends extra
program/erase cycles moving cold data for wear balance -- cycles that a
read-dominant partition never earns back.  Disabling it lowers *total*
wear; the cost is wear concentration in the churn-heavy blocks, which
SOS tolerates because worn SPARE blocks retire/resuscitate individually
(capacity variance) rather than failing the device.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.sim.lifetime import Partition, PartitionSpec

from .common import report

YEARS = 3
#: media-dominated SPARE traffic: mostly write-once, a little churn
NEW_GB_PER_DAY = 0.9
CHURN_GB_PER_DAY = 0.15


def _run(wear_leveling: bool):
    spec = PartitionSpec(
        name="spare",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.NONE],
        capacity_gb=32.0,
        wear_leveling=wear_leveling,
        max_rber=4e-4,
        resuscitation_bits=(),
        scrub_enabled=False,
    )
    partition = Partition(spec)
    for day in range(YEARS * 365):
        now = day / 365.0
        partition.host_write(NEW_GB_PER_DAY, now, churn=False)
        partition.host_write(CHURN_GB_PER_DAY, now, churn=True)
        partition.host_delete(NEW_GB_PER_DAY * 0.9)  # steady-state churn
        if day % 30 == 0:
            partition.maintain(now)
    total_wear = sum(g.pec * g.capacity_gb for g in partition.groups)
    return {
        "mean_pec": partition.mean_pec(),
        "max_pec": partition.max_pec(),
        "total_wear_gb_cycles": total_wear,
        "retired": partition.retired_count,
        "capacity_gb": partition.capacity_gb(),
    }


def compute():
    return {"wl_on": _run(True), "wl_off": _run(False)}


def test_bench_e7_wear_leveling(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{r['mean_pec']:.1f}",
            f"{r['max_pec']:.1f}",
            f"{r['total_wear_gb_cycles']:.0f}",
            r["retired"],
            f"{r['capacity_gb']:.1f}",
        ]
        for name, r in result.items()
    ]
    body = format_table(
        ["policy", "mean PEC", "max PEC", "total wear (GB-cycles)",
         "groups retired", "capacity left (GB)"],
        rows,
        title=f"SPARE partition after {YEARS} years of media-dominated traffic",
    )
    on, off = result["wl_on"], result["wl_off"]
    checks = [
        ClaimCheck("s43.wl-total-wear", "disabling WL reduces total wear "
                   "(off/on ratio below 1)", 1.0,
                   off["total_wear_gb_cycles"] / on["total_wear_gb_cycles"],
                   Comparison.AT_MOST),
        ClaimCheck("s43.wl-mean-pec", "mean PEC lower without WL", 1.0,
                   off["mean_pec"] / on["mean_pec"], Comparison.AT_MOST),
        ClaimCheck("s43.wl-concentration", "wear skews toward churn blocks "
                   "without WL (max/mean PEC at least 1.25x)", 1.25,
                   off["max_pec"] / off["mean_pec"], Comparison.AT_LEAST),
        ClaimCheck("s43.wl-even", "WL keeps wear even (max/mean below 1.1)",
                   1.1, on["max_pec"] / on["mean_pec"], Comparison.AT_MOST),
        ClaimCheck("s43.capacity-survives", "WL-off capacity loss stays "
                   "bounded (>= 75% capacity after 3y)", 24.0,
                   off["capacity_gb"], Comparison.AT_LEAST),
    ]
    report("E7 (§4.3): wear leveling considered harmful on SPARE", body, checks)
