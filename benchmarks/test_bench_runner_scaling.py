"""Runner scaling smoke: serial vs parallel sweep wall time.

Runs a small A6-style sensitivity grid through ``run_sweep`` once
serially and once with ``jobs=2``, checks the two executions return
bit-identical points (the runner's core guarantee), and writes both
wall times to ``BENCH_runner.json`` so perf regressions in the fan-out
path show up in review.

Skipped on single-core boxes: there is no speedup to measure and the
fork/pickle overhead dominates.  The determinism half of the guarantee
is still covered everywhere by ``tests/runner/test_sweep.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.runner import Sweep, run_sweep, write_bench_json
from repro.runner.points import sensitivity_point

from .common import report_path, run_once

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="runner scaling needs >=2 CPUs; determinism is tested elsewhere",
)

GRID = tuple(
    {"plc_pec": plc_pec, "waf": waf, "capacity_gb": 64.0,
     "mix": "typical", "days": 365, "workload_seed": 111}
    for plc_pec in (300, 700)
    for waf in (1.5, 3.5)
)


def _sweep():
    return Sweep(name="runner-scaling", fn=sensitivity_point, grid=GRID,
                 base_seed=111)


def compute():
    serial = run_sweep(_sweep(), jobs=1)
    parallel = run_sweep(_sweep(), jobs=2)
    return serial, parallel


def test_bench_runner_scaling(benchmark):
    serial, parallel = run_once(benchmark, compute)
    assert serial.values() == parallel.values(), (
        "parallel sweep diverged from serial"
    )
    out = report_path("BENCH_runner.json")
    write_bench_json(out, [serial, parallel],
                     notes="runner scaling smoke: serial vs jobs=2")
    speedup = serial.total_wall_s / max(parallel.total_wall_s, 1e-9)
    print(f"\nserial {serial.total_wall_s:.2f}s vs jobs=2 "
          f"{parallel.total_wall_s:.2f}s ({speedup:.2f}x); wrote {out}")
