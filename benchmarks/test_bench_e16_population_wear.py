"""E16 / §2.3.1-§2.3.2: wear across a *population* of users.

The paper's wear-gap argument is distributional: "most end users and
applications rarely re-write their entire devices frequently as to wear
out the underlying flash media", field studies see ~1%/yr SSD failure,
and even the cited 5%-of-endurance figure is an upper-typical case.

This experiment simulates a population of 200 users -- intensity mix
drawn from a realistic distribution with a small adversarial tail --
each running a TLC phone for its 2.5-year service life, and reports the
wear distribution: median, p90, p99, and the fraction of the fleet that
would wear out before disposal (expected: ~none outside the tail).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.runner import Sweep, run_sweep
from repro.runner.points import population_point

from .common import report, run_once, runner_jobs

N_USERS = 200
SERVICE_YEARS = 2.5
#: population intensity mix: mostly light/typical, thin heavy tail
MIX_WEIGHTS = {"light": 0.35, "typical": 0.45, "heavy": 0.18, "adversarial": 0.02}


def compute():
    # Mix assignment draws sequentially from one rng stream, so it is
    # precomputed serially here; only the per-user lifetime runs fan out.
    rng = np.random.default_rng(606)
    mixes = list(MIX_WEIGHTS)
    weights = np.array([MIX_WEIGHTS[m] for m in mixes])
    days = int(SERVICE_YEARS * 365)
    grid = tuple(
        {"mix": mixes[rng.choice(len(mixes), p=weights / weights.sum())],
         "capacity_gb": 64.0, "days": days, "workload_seed": 1000 + user}
        for user in range(N_USERS)
    )
    sweep = Sweep(name="e16-population-wear", fn=population_point,
                  grid=grid, base_seed=606)
    return np.array(run_sweep(sweep, jobs=runner_jobs()).values())


def test_bench_e16_population_wear(benchmark):
    wear = run_once(benchmark, compute)
    quantiles = {
        "median": float(np.median(wear)),
        "p90": float(np.quantile(wear, 0.90)),
        "p99": float(np.quantile(wear, 0.99)),
        "max": float(wear.max()),
    }
    worn_out = float(np.mean(wear >= 1.0))
    rows = [[name, f"{value * 100:.1f}%"] for name, value in quantiles.items()]
    rows.append(["fleet worn out before disposal", f"{worn_out * 100:.1f}%"])
    body = format_table(
        ["statistic", "endurance consumed in service life"],
        rows,
        title=f"{N_USERS} users x {SERVICE_YEARS}y on 64 GB TLC phones",
    )
    checks = [
        ClaimCheck("s231.median-tiny", "the median user consumes a tiny "
                   "fraction of endurance", 0.05, quantiles["median"],
                   Comparison.AT_MOST),
        ClaimCheck("s232.p90-within-5pct-band", "even p90 sits near the "
                   "paper's ~5% figure", 0.10, quantiles["p90"],
                   Comparison.AT_MOST),
        ClaimCheck("s231.wearout-rare", "fleet fraction wearing out before "
                   "disposal is ~1%-class (field-study failure rates)", 0.02,
                   worn_out, Comparison.AT_MOST),
        ClaimCheck("s231.tail-exists", "an adversarial tail is present "
                   "(max wear far above median)", 5.0,
                   quantiles["max"] / max(quantiles["median"], 1e-9),
                   Comparison.AT_LEAST),
    ]
    report("E16 (§2.3.1-§2.3.2): population wear distribution", body, checks)
