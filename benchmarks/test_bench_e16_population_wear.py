"""E16 / §2.3.1-§2.3.2: wear across a *population* of users.

The paper's wear-gap argument is distributional: "most end users and
applications rarely re-write their entire devices frequently as to wear
out the underlying flash media", field studies see ~1%/yr SSD failure,
and even the cited 5%-of-endurance figure is an upper-typical case.

This experiment simulates a population of 200 users -- intensity mix
drawn from a realistic distribution with a small adversarial tail --
each running a TLC phone for its 2.5-year service life, and reports the
wear distribution: median, p90, p99, and the fraction of the fleet that
would wear out before disposal (expected: ~none outside the tail).

Execution goes through the fleet-of-fleets layer: the population is cut
into shards, each shard is one fault-tolerant cached sweep point that
steps its devices through the batched fleet engine and reduces to a
mergeable wear digest.  Per-device identity (mix, workload seed) is a
function of the *global* device index alone, so the wear values -- and
therefore the pinned golden percentiles below -- are invariant to the
shard size and chunk size, and unchanged from the original per-user
scalar sweep (a ``slow``-marked regression pins a deliberately
misaligned sharding against the same goldens).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.fleet import FleetPlan, run_fleet
from repro.runner.points import DEFAULT_MIX_WEIGHTS

from .common import report, run_once, runner_jobs

N_USERS = 200
SERVICE_YEARS = 2.5
#: devices simulated per vectorized batch pass (and per shard here)
BATCH_CHUNK = 50
#: population intensity mix: mostly light/typical, thin heavy tail
MIX_WEIGHTS = DEFAULT_MIX_WEIGHTS

#: golden percentiles from the per-user scalar sweep (seed 606); the
#: fleet layer must reproduce them exactly (TLC runs are bit-identical)
#: for ANY shard/chunk size
GOLDEN_QUANTILES = {
    "median": 0.03219373924433146,
    "p90": 0.07275184014373057,
    "p99": 0.5815825041472942,
}


def _fleet_wear(shard_size: int, chunk: int) -> np.ndarray:
    plan = FleetPlan(
        n_devices=N_USERS, days=int(SERVICE_YEARS * 365), capacity_gb=64.0,
        seed=606, mix_weights=MIX_WEIGHTS, shard_size=shard_size, chunk=chunk,
    )
    fleet = run_fleet(plan, jobs=runner_jobs(), name="e16-population-wear-batch")
    return np.asarray(fleet.wear_values())


def compute():
    return _fleet_wear(shard_size=BATCH_CHUNK, chunk=BATCH_CHUNK)


@pytest.mark.slow
def test_e16_shard_size_invariance():
    """Misaligned shard/chunk sizes reproduce the goldens bit-identically.

    17 divides neither 50 nor 200, so every shard boundary of this run
    disagrees with the golden run's -- the regression that caught
    chunk-dependent per-device identity derivation.
    """
    wear = _fleet_wear(shard_size=17, chunk=13)
    assert float(np.median(wear)) == GOLDEN_QUANTILES["median"]
    assert float(np.quantile(wear, 0.90)) == GOLDEN_QUANTILES["p90"]
    assert float(np.quantile(wear, 0.99)) == GOLDEN_QUANTILES["p99"]


def test_bench_e16_population_wear(benchmark):
    wear = run_once(benchmark, compute)
    quantiles = {
        "median": float(np.median(wear)),
        "p90": float(np.quantile(wear, 0.90)),
        "p99": float(np.quantile(wear, 0.99)),
        "max": float(wear.max()),
    }
    worn_out = float(np.mean(wear >= 1.0))
    rows = [[name, f"{value * 100:.1f}%"] for name, value in quantiles.items()]
    rows.append(["fleet worn out before disposal", f"{worn_out * 100:.1f}%"])
    body = format_table(
        ["statistic", "endurance consumed in service life"],
        rows,
        title=f"{N_USERS} users x {SERVICE_YEARS}y on 64 GB TLC phones",
    )
    checks = [
        ClaimCheck("s231.median-tiny", "the median user consumes a tiny "
                   "fraction of endurance", 0.05, quantiles["median"],
                   Comparison.AT_MOST),
        ClaimCheck("s232.p90-within-5pct-band", "even p90 sits near the "
                   "paper's ~5% figure", 0.10, quantiles["p90"],
                   Comparison.AT_MOST),
        ClaimCheck("s231.wearout-rare", "fleet fraction wearing out before "
                   "disposal is ~1%-class (field-study failure rates)", 0.02,
                   worn_out, Comparison.AT_MOST),
        ClaimCheck("s231.tail-exists", "an adversarial tail is present "
                   "(max wear far above median)", 5.0,
                   quantiles["max"] / max(quantiles["median"], 1e-9),
                   Comparison.AT_LEAST),
    ]
    # golden regression: batching must not move the distribution
    checks += [
        ClaimCheck(f"e16.golden-{name}", f"batched population reproduces the "
                   f"scalar sweep's {name} wear exactly", golden,
                   quantiles[name], rel_tol=1e-12)
        for name, golden in GOLDEN_QUANTILES.items()
    ]
    report("E16 (§2.3.1-§2.3.2): population wear distribution", body, checks)
