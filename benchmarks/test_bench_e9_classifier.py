"""E9 / §4.4-§4.5: machine-driven data classification.

Regenerates the classifier operating points the design depends on:

* the auto-delete predictor reaches the ~79% accuracy the paper cites
  from Khan et al. [68];
* the criticality classifier demotes the majority of low-value files
  (the density win) while sending few truly-critical files to SPARE
  (the conservatism requirement of §4.2/§4.3);
* both learners (logistic regression, Gaussian NB) train on the same
  corpus -- the lightweight NB trades accuracy for simplicity.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.classify.auto_delete import train_auto_delete
from repro.classify.classifier import train_classifier
from repro.classify.corpus import CorpusConfig, generate_corpus

from .common import report, run_once

NOW = 2.0


def compute():
    corpus = generate_corpus(CorpusConfig(n_files=6000), seed=77)
    _, logistic = train_classifier(corpus, NOW, kind="logistic", seed=77)
    _, nb = train_classifier(corpus, NOW, kind="naive_bayes", seed=77)
    _, auto_delete = train_auto_delete(corpus, NOW, seed=77)
    return logistic, nb, auto_delete


def test_bench_e9_classifier(benchmark):
    logistic, nb, auto_delete = run_once(benchmark, compute)
    rows = [
        ["criticality (logistic)", f"{logistic.accuracy:.3f}",
         f"{logistic.precision_critical:.3f}", f"{logistic.recall_critical:.3f}",
         f"{logistic.spare_fraction:.3f}", f"{logistic.critical_demotion_rate:.3f}"],
        ["criticality (naive bayes)", f"{nb.accuracy:.3f}",
         f"{nb.precision_critical:.3f}", f"{nb.recall_critical:.3f}",
         f"{nb.spare_fraction:.3f}", f"{nb.critical_demotion_rate:.3f}"],
        ["auto-delete (logistic)", f"{auto_delete.accuracy:.3f}",
         f"{auto_delete.precision:.3f}", f"{auto_delete.recall:.3f}", "-", "-"],
    ]
    body = format_table(
        ["model", "accuracy", "precision", "recall", "spare fraction",
         "critical demoted"],
        rows,
        title="Classifier operating points (held-out split)",
    )
    checks = [
        ClaimCheck("s45.auto-delete-79", "auto-delete accuracy reaches the "
                   "cited 79% operating point (ours exceeds it)", 0.79,
                   auto_delete.accuracy, Comparison.AT_LEAST),
        ClaimCheck("s44.criticality-accuracy", "criticality accuracy above "
                   "chance-by-a-wide-margin", 0.80, logistic.accuracy,
                   Comparison.AT_LEAST),
        ClaimCheck("s42.majority-demoted", "most files land on SPARE "
                   "(density win requires it)", 0.40, logistic.spare_fraction,
                   Comparison.AT_LEAST),
        ClaimCheck("s43.conservative", "truly-critical files demoted to SPARE",
                   0.20, logistic.critical_demotion_rate, Comparison.AT_MOST),
        ClaimCheck("s44.nb-weaker-but-usable", "lightweight NB stays usable",
                   0.70, nb.accuracy, Comparison.AT_LEAST),
    ]
    report("E9 (§4.4-§4.5): machine-driven data classification", body, checks)
