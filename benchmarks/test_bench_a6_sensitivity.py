"""A6 ablation: robustness of the headline conclusions to calibration.

Every absolute flash-physics constant in this reproduction is a
calibration (DESIGN.md §5).  This ablation perturbs the two most
influential ones -- PLC rated endurance (the paper itself only bounds it
to "6-10x below TLC") and the FTL write-amplification factor -- and
checks that E11's conclusions survive every combination:

* the carbon ordering TLC > QLC > SOS > PLC-naive is calibration-free
  (pure density arithmetic) and must never move;
* SOS must survive a 3-year typical life at every point in the grid;
* SOS SYS wear must stay within pseudo-QLC endurance everywhere.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.flash.cell import CellTechnology
from repro.flash.reliability import ENDURANCE_TABLE, EnduranceSpec
from repro.sim.baselines import build_sos, build_tlc_baseline
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

from .common import report, run_once

#: PLC rated endurance: the paper's 6-10x-below-TLC band maps to 300-500.
PLC_PEC_GRID = (300, 500, 700)
WAF_GRID = (1.5, 2.5, 3.5)
YEARS = 3


def _with_plc_pec(pec: int):
    """Temporarily override the PLC endurance table entry."""
    original = ENDURANCE_TABLE[CellTechnology.PLC]
    ENDURANCE_TABLE[CellTechnology.PLC] = dataclasses.replace(
        original, rated_pec=pec
    )
    return original


def compute():
    summaries = MobileWorkload(
        WorkloadConfig(mix="typical", days=YEARS * 365, seed=111)
    ).daily_summaries()
    grid = []
    for plc_pec in PLC_PEC_GRID:
        original = _with_plc_pec(plc_pec)
        try:
            for waf in WAF_GRID:
                sos_build = build_sos(64.0)
                for part in sos_build.device.partitions.values():
                    part.spec = dataclasses.replace(part.spec, waf=waf)
                result = run_lifetime(sos_build, summaries)
                tlc = build_tlc_baseline(64.0)
                capacity_fraction = result.final.capacity_gb / 64.0
                grid.append({
                    "plc_pec": plc_pec,
                    "waf": waf,
                    # usable = acceptable media quality and bounded capacity
                    # loss; §4.3's resuscitation makes capacity shrink the
                    # *designed* response at pessimistic calibrations
                    "usable": result.final.spare_quality >= 0.85
                    and capacity_fraction >= 0.75,
                    "capacity_fraction": capacity_fraction,
                    "sys_wear": result.final.sys_wear_fraction,
                    "quality": result.final.spare_quality,
                    "carbon_ok": sos_build.intensity_kg_per_gb < tlc.intensity_kg_per_gb,
                })
        finally:
            ENDURANCE_TABLE[CellTechnology.PLC] = original
    return grid


def test_bench_a6_sensitivity(benchmark):
    grid = run_once(benchmark, compute)
    rows = [
        [g["plc_pec"], g["waf"], f"{g['sys_wear'] * 100:.1f}%",
         f"{g['quality']:.3f}", f"{g['capacity_fraction'] * 100:.0f}%", g["usable"]]
        for g in grid
    ]
    body = format_table(
        ["PLC rated PEC", "WAF", "SYS wear (3y)", "media quality",
         "capacity left", "usable"],
        rows,
        title="Calibration sensitivity grid (SOS, 64 GB, typical mix)",
    )
    checks = [
        ClaimCheck("a6.usable-everywhere", "SOS remains usable after 3y "
                   "typical use at every calibration point (fraction of grid; "
                   "capacity variance is the designed response at pessimistic "
                   "points)", 1.0,
                   sum(g["usable"] for g in grid) / len(grid), rel_tol=0.001),
        ClaimCheck("a6.carbon-ordering-fixed", "carbon win is calibration-free "
                   "(fraction of grid where SOS beats TLC)", 1.0,
                   sum(g["carbon_ok"] for g in grid) / len(grid), rel_tol=0.001),
        ClaimCheck("a6.wear-margin-everywhere", "worst-case SYS wear over the "
                   "grid stays within endurance", 1.0,
                   max(g["sys_wear"] for g in grid), Comparison.AT_MOST),
        ClaimCheck("a6.quality-everywhere", "worst-case media quality over "
                   "the grid stays acceptable", 0.85,
                   min(g["quality"] for g in grid), Comparison.AT_LEAST),
    ]
    report("A6 (ablation): robustness to flash-physics calibration", body, checks)
