"""A6 ablation: robustness of the headline conclusions to calibration.

Every absolute flash-physics constant in this reproduction is a
calibration (DESIGN.md §5).  This ablation perturbs the two most
influential ones -- PLC rated endurance (the paper itself only bounds it
to "6-10x below TLC") and the FTL write-amplification factor -- and
checks that E11's conclusions survive every combination:

* the carbon ordering TLC > QLC > SOS > PLC-naive is calibration-free
  (pure density arithmetic) and must never move;
* SOS must survive a 3-year typical life at every point in the grid;
* SOS SYS wear must stay within pseudo-QLC endurance everywhere.
"""

from __future__ import annotations

from repro.analysis.claims import ClaimCheck, Comparison
from repro.analysis.reporting import format_table
from repro.runner import Sweep, run_sweep
from repro.runner.points import sensitivity_batch_point

from .common import report, run_once, runner_jobs

#: PLC rated endurance: the paper's 6-10x-below-TLC band maps to 300-500.
PLC_PEC_GRID = (300, 500, 700)
WAF_GRID = (1.5, 2.5, 3.5)
YEARS = 3


def compute():
    # One sweep point per PLC-PEC *row*: the endurance-table override is
    # global state, so the batched engine runs each row's WAF column as
    # one vectorized pass (WAF is a per-device spec field).
    sweep = Sweep(
        name="a6-sensitivity-batch",
        fn=sensitivity_batch_point,
        grid=tuple(
            {"plc_pec": plc_pec, "wafs": list(WAF_GRID), "capacity_gb": 64.0,
             "mix": "typical", "days": YEARS * 365, "workload_seed": 111}
            for plc_pec in PLC_PEC_GRID
        ),
        base_seed=111,
    )
    return [point for row in run_sweep(sweep, jobs=runner_jobs()).values()
            for point in row]


def test_bench_a6_sensitivity(benchmark):
    grid = run_once(benchmark, compute)
    rows = [
        [g["plc_pec"], g["waf"], f"{g['sys_wear'] * 100:.1f}%",
         f"{g['quality']:.3f}", f"{g['capacity_fraction'] * 100:.0f}%", g["usable"]]
        for g in grid
    ]
    body = format_table(
        ["PLC rated PEC", "WAF", "SYS wear (3y)", "media quality",
         "capacity left", "usable"],
        rows,
        title="Calibration sensitivity grid (SOS, 64 GB, typical mix)",
    )
    checks = [
        ClaimCheck("a6.usable-everywhere", "SOS remains usable after 3y "
                   "typical use at every calibration point (fraction of grid; "
                   "capacity variance is the designed response at pessimistic "
                   "points)", 1.0,
                   sum(g["usable"] for g in grid) / len(grid), rel_tol=0.001),
        ClaimCheck("a6.carbon-ordering-fixed", "carbon win is calibration-free "
                   "(fraction of grid where SOS beats TLC)", 1.0,
                   sum(g["carbon_ok"] for g in grid) / len(grid), rel_tol=0.001),
        ClaimCheck("a6.wear-margin-everywhere", "worst-case SYS wear over the "
                   "grid stays within endurance", 1.0,
                   max(g["sys_wear"] for g in grid), Comparison.AT_MOST),
        ClaimCheck("a6.quality-everywhere", "worst-case media quality over "
                   "the grid stays acceptable", 0.85,
                   min(g["quality"] for g in grid), Comparison.AT_LEAST),
    ]
    report("A6 (ablation): robustness to flash-physics calibration", body, checks)
