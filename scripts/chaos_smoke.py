"""End-to-end chaos smoke: degrade-don't-die and crash-and-resume, CI-shaped.

Drives the real CLI as subprocesses -- nothing mocked -- through the two
failure stories the chaos layer hardens:

1. **ENOSPC fleet**: run ``repro population`` with
   ``REPRO_CHAOS_FS=enospc_after=0`` so every cache store hits a full
   disk; the fleet must *complete* (exit 0) in read-through passthrough
   and say so (the degraded-storage warning);
2. **crash-armed gateway restart**: start a gateway with
   ``REPRO_CHAOS_CRASH=journal.save.post_rename``, submit a job, and
   require the gateway to die at the label with the distinctive exit
   code; restart it disarmed over the same state dir and require the
   journaled job to be recovered, the identical resubmission to
   deduplicate onto it and run to a complete result, and ``/healthz``
   to report healthy.

Any deviation exits nonzero with the captured output, so a CI step can
gate on it directly.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CRASH_EXIT = 86  # repro.chaos.crash.CRASH_EXIT, pinned for the smoke


def _env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CHAOS_FS", None)
    env.pop("REPRO_CHAOS_CRASH", None)
    env.update(extra)
    return env


def _cli(*args: str, timeout: float = 120.0, **extra_env: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(**extra_env), capture_output=True, text=True, timeout=timeout,
    )


def _fail(step: str, detail: str, output: str = "") -> None:
    print(f"FAIL [{step}] {detail}")
    if output:
        print("--- captured output ---")
        print(output)
    raise SystemExit(1)


def _start_gateway(state_dir: Path, port_file: Path, **extra_env: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir),
            "--port", "0",
            "--port-file", str(port_file),
            "--max-running", "1",
            "--job-workers", "2",
        ],
        env=_env(**extra_env), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )


def _await_port(gateway: subprocess.Popen, port_file: Path, step: str) -> str:
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        if gateway.poll() is not None:
            _fail(step, "gateway exited during startup", gateway.stdout.read())
        if time.monotonic() > deadline:
            _fail(step, "port file never appeared")
        time.sleep(0.05)
    return f"127.0.0.1:{port_file.read_text().strip()}"


def _enospc_fleet(tmp_path: Path) -> None:
    run = _cli(
        "population", "--devices", "40", "--years", "0.1",
        "--cache-dir", str(tmp_path / "cache"),
        REPRO_CHAOS_FS="enospc_after=0",
    )
    if run.returncode != 0:
        _fail("enospc", f"fleet exited {run.returncode} -- ENOSPC must "
              f"degrade, not kill:\n{run.stdout}\n{run.stderr}")
    if "result cache degraded" not in run.stdout:
        _fail("enospc", f"no degraded-storage warning in output:\n{run.stdout}")
    if "passthrough=True" not in run.stdout:
        _fail("enospc", f"passthrough not reported:\n{run.stdout}")
    print("PASS [enospc] full-disk fleet completed read-through and said so")


def _crash_restart(tmp_path: Path) -> None:
    state = tmp_path / "state"
    submit_args = (
        "submit", "population",
        "--devices", "40", "--years", "0.1",
    )

    armed_port = tmp_path / "armed-port"
    armed = _start_gateway(
        state, armed_port, REPRO_CHAOS_CRASH="journal.save.post_rename"
    )
    try:
        target = _await_port(armed, armed_port, "arm")
        # the first journal append fires the crash point mid-submission;
        # the client sees a dropped connection (any nonzero exit is fine)
        _cli(*submit_args, "--gateway", target, timeout=30.0)
        try:
            code = armed.wait(timeout=30)
        except subprocess.TimeoutExpired:
            _fail("arm", "armed gateway survived the journal append")
        if code != CRASH_EXIT:
            _fail("arm", f"armed gateway exited {code}, expected {CRASH_EXIT} "
                  "-- the crash point never fired", armed.stdout.read())
        print(f"PASS [arm] gateway died at journal.save.post_rename "
              f"(exit {CRASH_EXIT})")
    finally:
        if armed.poll() is None:
            armed.kill()
            armed.wait(timeout=10)

    port_file = tmp_path / "port"
    gateway = _start_gateway(state, port_file)
    try:
        target = _await_port(gateway, port_file, "restart")
        resubmit = _cli(*submit_args, "--gateway", target, "--wait")
        if resubmit.returncode != 0:
            _fail("resume", f"resubmission exited {resubmit.returncode}:\n"
                  f"{resubmit.stdout}", gateway.stdout.read() if gateway.poll()
                  is not None else "")
        view = json.loads(resubmit.stdout.partition("\n")[2])
        if view["state"] != "done" or not view["result"]["complete"]:
            _fail("resume", f"recovered job not complete:\n{resubmit.stdout}")
        print(f"PASS [resume] journaled job {view['job_id']} recovered and "
              f"ran to a complete result ({view['result']['devices']} devices)")

        health = _cli("jobs", "--gateway", target, "--health")
        report = json.loads(health.stdout)
        if health.returncode != 0 or report["healthy"] is not True:
            _fail("health", f"restarted gateway unhealthy:\n{health.stdout}")
        if report["storage"]["degraded"]:
            _fail("health", f"storage still degraded after restart:\n{health.stdout}")
        print("PASS [health] restarted gateway healthy, storage clean")
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(timeout=10)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp_path = Path(tmp)
        _enospc_fleet(tmp_path)
        _crash_restart(tmp_path)
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
