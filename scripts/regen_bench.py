"""Regenerate the checked-in ``BENCH_runner.json`` perf baseline.

Runs the recorded sweeps in one process and writes a single
``repro.runner.bench/v2`` payload:

* ``cli-lifetime`` -- the 4-build lifetime comparison behind
  ``repro lifetime`` (the original baseline entry);
* ``cli-population-scalar`` -- a 200-device population through the
  per-device scalar engine, one sweep point per device;
* ``cli-population-batch`` -- the same 200 devices through the fleet
  layer (sharded, batched, streaming-reduced), as ``repro population``
  runs it;
* ``fleet-scaling-{1k,10k,100k,1m}`` -- the fleet-of-fleets scaling
  curve: 1k to 1M devices at 90 days each, sharded per the recipe in
  EXPERIMENTS.md.  Memory stays shard-bounded throughout (the 1M run is
  reduced to a mergeable wear histogram, never materialized), so the
  curve should stay ~linear in device count.

A top-level ``store`` section additionally records the column store's
size and scan throughput for a cached 10k-device fleet against the
pickle-per-point counterfactual (one framed pickle per device, the
scalar engine's cache granularity) -- the ``>= 5x`` smaller claim, as a
number.

A top-level ``ftl_bench`` section records the page-level FTL's perf
claims: single-device replay throughput on the bit-exact + scalar-GC
path vs the analytic + vectorized path (the ``>= 5x`` replay speedup,
with an equivalence self-check -- both paths must land identical
``FtlStats``), and the first FTL fleet-scaling curve
(``ftl-scaling-{10,50,200}`` sweeps, devices/s at 90 days each).

The scalar/batch pair records the batching speedup, the scaling rows
the sharding throughput, as part of the perf trajectory: compare
``total_wall_s`` across sweeps.

Usage::

    PYTHONPATH=src python scripts/regen_bench.py [BENCH_runner.json]
"""

from __future__ import annotations

import pickle
import sys
import tempfile
import time
from pathlib import Path

from repro.fleet import FleetPlan, run_fleet
from repro.runner import Sweep, run_sweep, write_bench_json
from repro.runner.cache import ResultCache
from repro.runner.record import frame_record
from repro.store import ColumnStore
from repro.runner.points import (
    DEFAULT_MIX_WEIGHTS,
    assign_mixes,
    lifetime_point,
)
from repro.sim.baselines import ALL_BUILDERS

POPULATION_USERS = 200
POPULATION_YEARS = 2.5
POPULATION_CHUNK = 50

#: the 1k -> 1M scaling curve: (label, devices, shard_size, chunk).
#: Shard sizes keep each sweep at <= 20 cache/restart units; chunk is
#: the vectorization width (peak working set ~ chunk x partitions).
FLEET_DAYS = 90
FLEET_SCALING = (
    ("fleet-scaling-1k", 1_000, 250, 250),
    ("fleet-scaling-10k", 10_000, 2_500, 500),
    ("fleet-scaling-100k", 100_000, 5_000, 1_000),
    ("fleet-scaling-1m", 1_000_000, 50_000, 1_000),
)

#: the store size/throughput comparison: the fleet-scaling-10k plan,
#: run once more *with* a cache so observables land in columns.rcs
STORE_BENCH_DEVICES = 10_000

#: the FTL replay benchmark horizon and scaling curve:
#: (label, devices, shard_size, chunk) at FTL_REPLAY_DAYS each
FTL_REPLAY_DAYS = 90
FTL_SCALING = (
    ("ftl-scaling-10", 10, 5, 5),
    ("ftl-scaling-50", 50, 25, 25),
    ("ftl-scaling-200", 200, 50, 50),
)


def ftl_bench(results: list) -> dict:
    """FTL replay throughput (scalar vs vectorized) + fleet curve.

    Best-of-3 per path so one scheduler hiccup can't misstate the
    speedup; the two paths must agree on ``FtlStats`` exactly or the
    regeneration aborts (the perf claim is only meaningful if the fast
    path is also the *correct* path).
    """
    from repro.ftl.replay import FtlReplayConfig, replay

    modes = {
        "scalar": dict(analytic=False, vectorized_gc=False),
        "vectorized": dict(analytic=True, vectorized_gc=True),
    }
    best: dict[str, object] = {}
    for label, flags in modes.items():
        runs = [
            replay(FtlReplayConfig(days=FTL_REPLAY_DAYS, seed=3, **flags))
            for _ in range(3)
        ]
        best[label] = max(runs, key=lambda r: r.ops_per_s)
    if best["scalar"].stats != best["vectorized"].stats:
        raise AssertionError("analytic fast path diverged from bit-exact")
    speedup = best["vectorized"].ops_per_s / best["scalar"].ops_per_s
    print(f"ftl replay ({FTL_REPLAY_DAYS} days): "
          f"scalar {best['scalar'].ops_per_s:,.0f} ops/s, "
          f"vectorized {best['vectorized'].ops_per_s:,.0f} ops/s "
          f"({speedup:.1f}x, stats identical)")

    curve = []
    for label, devices, shard_size, chunk in FTL_SCALING:
        plan = FleetPlan(n_devices=devices, days=FTL_REPLAY_DAYS,
                         capacity_gb=64.0, seed=606,
                         mix_weights=DEFAULT_MIX_WEIGHTS,
                         shard_size=shard_size, chunk=chunk,
                         fidelity="ftl")
        fleet = run_fleet(plan, jobs=1, name=label)
        results.append(fleet.sweep)
        wall = fleet.sweep.total_wall_s
        curve.append({
            "label": label, "devices": devices, "days": FTL_REPLAY_DAYS,
            "shard_size": shard_size, "chunk": chunk,
            "wall_s": wall,
            "devices_per_s": round(devices / wall, 2) if wall else None,
            "p99_wear": fleet.wear.quantile(0.99),
        })
        print(f"{label}: {devices} devices x {FTL_REPLAY_DAYS} days in "
              f"{wall:.1f} s ({devices / wall:,.1f} devices/s)")
    return {
        "replay_days": FTL_REPLAY_DAYS,
        "replay_host_ops": best["vectorized"].host_ops,
        "scalar_ops_per_s": round(best["scalar"].ops_per_s),
        "vectorized_ops_per_s": round(best["vectorized"].ops_per_s),
        "replay_speedup": round(speedup, 2),
        "stats_identical": True,
        "scaling": curve,
    }


def store_bench() -> dict:
    """Column store vs pickle-per-point for a 10k-device fleet.

    The counterfactual is the scalar engine's cache granularity: one
    framed pickle per device holding that device's observables.  The
    store side is the real artifact a cached fleet run leaves behind
    (``columns.rcs``, compacted), and the scan number is a cold
    off-disk quantile query over every device's wear.
    """
    plan = FleetPlan(
        n_devices=STORE_BENCH_DEVICES, days=FLEET_DAYS, capacity_gb=64.0,
        seed=606, mix_weights=DEFAULT_MIX_WEIGHTS, shard_size=2_500, chunk=500,
    )
    with tempfile.TemporaryDirectory(prefix="store-bench-") as cache_dir:
        run_fleet(plan, jobs=1, cache_dir=cache_dir, name="store-bench")
        store_path = Path(cache_dir) / ResultCache.STORE_FILE
        raw_bytes = store_path.stat().st_size
        store = ColumnStore(store_path)
        store.compact()
        compacted_bytes = store_path.stat().st_size

        # pickle-per-point counterfactual, from the same observables
        baseline_bytes = 0
        devices = 0
        columns: dict[str, list] = {}
        for _, name, arr in store.scan():
            columns.setdefault(name, []).append(arr)
        per_column = {
            name: [v for part in parts for v in part.tolist()]
            for name, parts in columns.items()
        }
        for i in range(STORE_BENCH_DEVICES):
            value = {name: vals[i] for name, vals in per_column.items()}
            baseline_bytes += len(
                frame_record(pickle.dumps({"value": value, "wall_s": 0.0}))
            )
            devices += 1

        # cold off-disk scan: every device's wear out of the block index
        cold = ColumnStore(store_path, mode="read")
        start = time.perf_counter()
        wear = cold.column_values("obs.wear")
        scan_s = time.perf_counter() - start
        assert len(wear) == STORE_BENCH_DEVICES
        return {
            "devices": devices,
            "days": FLEET_DAYS,
            "codec": store.codec,
            "store_bytes": raw_bytes,
            "compacted_bytes": compacted_bytes,
            "pickle_per_point_bytes": baseline_bytes,
            "size_ratio": round(baseline_bytes / compacted_bytes, 2),
            "scan_wall_s": scan_s,
            "scan_values_per_s": round(len(wear) / scan_s) if scan_s else None,
        }


def main(path: str) -> int:
    lifetime_sweep = Sweep(
        name="cli-lifetime",
        fn=lifetime_point,
        grid=tuple(
            {"build": name, "capacity_gb": 64.0, "mix": "typical",
             "days": 3 * 365, "workload_seed": 7}
            for name in ALL_BUILDERS
        ),
        base_seed=7,
    )
    days = int(POPULATION_YEARS * 365)
    population_plan = FleetPlan(
        n_devices=POPULATION_USERS, days=days, capacity_gb=64.0, seed=606,
        mix_weights=DEFAULT_MIX_WEIGHTS,
        shard_size=POPULATION_CHUNK, chunk=POPULATION_CHUNK,
    )
    scalar_grid = tuple(
        {"build": "tlc_baseline", "capacity_gb": 64.0, "mix": mix,
         "days": days,
         "workload_seed": population_plan.workload_seed_base + u}
        for u, mix in enumerate(
            assign_mixes(606, DEFAULT_MIX_WEIGHTS, 0, POPULATION_USERS)
        )
    )
    scalar_sweep = Sweep(name="cli-population-scalar", fn=lifetime_point,
                         grid=scalar_grid, base_seed=606)

    results = []
    outcome = run_sweep(lifetime_sweep, jobs=1)
    results.append(outcome)
    print(f"{lifetime_sweep.name}: {len(outcome.points)} points, "
          f"{outcome.total_wall_s:.2f} s")
    outcome = run_sweep(scalar_sweep, jobs=1)
    results.append(outcome)
    print(f"{scalar_sweep.name}: {len(outcome.points)} points, "
          f"{outcome.total_wall_s:.2f} s")

    fleet = run_fleet(population_plan, jobs=1, name="cli-population-batch")
    results.append(fleet.sweep)
    print(f"cli-population-batch: {fleet.sweep.total_wall_s:.2f} s")
    scalar_s, batch_s = results[1].total_wall_s, results[2].total_wall_s
    print(f"population batching speedup: {scalar_s / batch_s:.1f}x "
          f"({POPULATION_USERS} devices, {days} days)")

    for label, devices, shard_size, chunk in FLEET_SCALING:
        plan = FleetPlan(n_devices=devices, days=FLEET_DAYS,
                         capacity_gb=64.0, seed=606,
                         mix_weights=DEFAULT_MIX_WEIGHTS,
                         shard_size=shard_size, chunk=chunk)
        fleet = run_fleet(plan, jobs=1, name=label)
        results.append(fleet.sweep)
        wall = fleet.sweep.total_wall_s
        print(f"{label}: {devices} devices x {FLEET_DAYS} days in "
              f"{wall:.1f} s ({devices / wall:,.0f} devices/s, "
              f"{plan.n_shards} shards of {shard_size}, "
              f"{'exact' if plan.exact else 'histogram'} reduction, "
              f"p99 wear {fleet.wear.quantile(0.99):.4f})")

    store = store_bench()
    print(f"store: {store['devices']} devices -> "
          f"{store['compacted_bytes']:,} bytes compacted "
          f"({store['codec']}), pickle-per-point "
          f"{store['pickle_per_point_bytes']:,} bytes, "
          f"{store['size_ratio']:.1f}x smaller; wear scan "
          f"{store['scan_values_per_s']:,} values/s")

    ftl = ftl_bench(results)

    write_bench_json(
        path, results, notes="scripts/regen_bench.py",
        extras={"store": store, "ftl_bench": ftl},
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else str(
        Path(__file__).resolve().parent.parent / "BENCH_runner.json"
    )
    sys.exit(main(target))
