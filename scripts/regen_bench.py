"""Regenerate the checked-in ``BENCH_runner.json`` perf baseline.

Runs the recorded sweeps in one process and writes a single
``repro.runner.bench/v2`` payload:

* ``cli-lifetime`` -- the 4-build lifetime comparison behind
  ``repro lifetime`` (the original baseline entry);
* ``cli-population-scalar`` -- a 200-device population through the
  per-device scalar engine, one sweep point per device;
* ``cli-population-batch`` -- the same 200 devices through the batched
  fleet engine, one vectorized 50-device pass per sweep point.

The scalar/batch pair records the batching speedup as part of the perf
trajectory: compare the two sweeps' ``total_wall_s``.

Usage::

    PYTHONPATH=src python scripts/regen_bench.py [BENCH_runner.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.runner import Sweep, run_sweep, write_bench_json
from repro.runner.points import (
    DEFAULT_MIX_WEIGHTS,
    lifetime_point,
    population_batch_grid,
    population_batch_point,
)
from repro.sim.baselines import ALL_BUILDERS

POPULATION_USERS = 200
POPULATION_YEARS = 2.5
POPULATION_CHUNK = 50


def main(path: str) -> int:
    lifetime_sweep = Sweep(
        name="cli-lifetime",
        fn=lifetime_point,
        grid=tuple(
            {"build": name, "capacity_gb": 64.0, "mix": "typical",
             "days": 3 * 365, "workload_seed": 7}
            for name in ALL_BUILDERS
        ),
        base_seed=7,
    )
    days = int(POPULATION_YEARS * 365)
    batch_grid = population_batch_grid(
        POPULATION_USERS, days, 64.0, seed=606,
        mix_weights=DEFAULT_MIX_WEIGHTS, chunk=POPULATION_CHUNK,
    )
    scalar_grid = tuple(
        {"build": "tlc_baseline", "capacity_gb": 64.0, "mix": mix,
         "days": days, "workload_seed": seed}
        for chunk in batch_grid
        for mix, seed in zip(chunk["mixes"], chunk["workload_seeds"])
    )
    scalar_sweep = Sweep(name="cli-population-scalar", fn=lifetime_point,
                         grid=scalar_grid, base_seed=606)
    batch_sweep = Sweep(name="cli-population-batch", fn=population_batch_point,
                        grid=batch_grid, base_seed=606)

    results = []
    for sweep in (lifetime_sweep, scalar_sweep, batch_sweep):
        outcome = run_sweep(sweep, jobs=1)
        results.append(outcome)
        print(f"{sweep.name}: {len(outcome.points)} points, "
              f"{outcome.total_wall_s:.2f} s")
    scalar_s, batch_s = results[1].total_wall_s, results[2].total_wall_s
    print(f"population batching speedup: {scalar_s / batch_s:.1f}x "
          f"({POPULATION_USERS} devices, {days} days)")
    write_bench_json(path, results, notes="scripts/regen_bench.py")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else str(
        Path(__file__).resolve().parent.parent / "BENCH_runner.json"
    )
    sys.exit(main(target))
