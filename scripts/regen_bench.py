"""Regenerate the checked-in ``BENCH_runner.json`` perf baseline.

Runs the recorded sweeps in one process and writes a single
``repro.runner.bench/v2`` payload:

* ``cli-lifetime`` -- the 4-build lifetime comparison behind
  ``repro lifetime`` (the original baseline entry);
* ``cli-population-scalar`` -- a 200-device population through the
  per-device scalar engine, one sweep point per device;
* ``cli-population-batch`` -- the same 200 devices through the fleet
  layer (sharded, batched, streaming-reduced), as ``repro population``
  runs it;
* ``fleet-scaling-{1k,10k,100k,1m}`` -- the fleet-of-fleets scaling
  curve: 1k to 1M devices at 90 days each, sharded per the recipe in
  EXPERIMENTS.md.  Memory stays shard-bounded throughout (the 1M run is
  reduced to a mergeable wear histogram, never materialized), so the
  curve should stay ~linear in device count.

The scalar/batch pair records the batching speedup, the scaling rows
the sharding throughput, as part of the perf trajectory: compare
``total_wall_s`` across sweeps.

Usage::

    PYTHONPATH=src python scripts/regen_bench.py [BENCH_runner.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.fleet import FleetPlan, run_fleet
from repro.runner import Sweep, run_sweep, write_bench_json
from repro.runner.points import (
    DEFAULT_MIX_WEIGHTS,
    assign_mixes,
    lifetime_point,
)
from repro.sim.baselines import ALL_BUILDERS

POPULATION_USERS = 200
POPULATION_YEARS = 2.5
POPULATION_CHUNK = 50

#: the 1k -> 1M scaling curve: (label, devices, shard_size, chunk).
#: Shard sizes keep each sweep at <= 20 cache/restart units; chunk is
#: the vectorization width (peak working set ~ chunk x partitions).
FLEET_DAYS = 90
FLEET_SCALING = (
    ("fleet-scaling-1k", 1_000, 250, 250),
    ("fleet-scaling-10k", 10_000, 2_500, 500),
    ("fleet-scaling-100k", 100_000, 5_000, 1_000),
    ("fleet-scaling-1m", 1_000_000, 50_000, 1_000),
)


def main(path: str) -> int:
    lifetime_sweep = Sweep(
        name="cli-lifetime",
        fn=lifetime_point,
        grid=tuple(
            {"build": name, "capacity_gb": 64.0, "mix": "typical",
             "days": 3 * 365, "workload_seed": 7}
            for name in ALL_BUILDERS
        ),
        base_seed=7,
    )
    days = int(POPULATION_YEARS * 365)
    population_plan = FleetPlan(
        n_devices=POPULATION_USERS, days=days, capacity_gb=64.0, seed=606,
        mix_weights=DEFAULT_MIX_WEIGHTS,
        shard_size=POPULATION_CHUNK, chunk=POPULATION_CHUNK,
    )
    scalar_grid = tuple(
        {"build": "tlc_baseline", "capacity_gb": 64.0, "mix": mix,
         "days": days,
         "workload_seed": population_plan.workload_seed_base + u}
        for u, mix in enumerate(
            assign_mixes(606, DEFAULT_MIX_WEIGHTS, 0, POPULATION_USERS)
        )
    )
    scalar_sweep = Sweep(name="cli-population-scalar", fn=lifetime_point,
                         grid=scalar_grid, base_seed=606)

    results = []
    outcome = run_sweep(lifetime_sweep, jobs=1)
    results.append(outcome)
    print(f"{lifetime_sweep.name}: {len(outcome.points)} points, "
          f"{outcome.total_wall_s:.2f} s")
    outcome = run_sweep(scalar_sweep, jobs=1)
    results.append(outcome)
    print(f"{scalar_sweep.name}: {len(outcome.points)} points, "
          f"{outcome.total_wall_s:.2f} s")

    fleet = run_fleet(population_plan, jobs=1, name="cli-population-batch")
    results.append(fleet.sweep)
    print(f"cli-population-batch: {fleet.sweep.total_wall_s:.2f} s")
    scalar_s, batch_s = results[1].total_wall_s, results[2].total_wall_s
    print(f"population batching speedup: {scalar_s / batch_s:.1f}x "
          f"({POPULATION_USERS} devices, {days} days)")

    for label, devices, shard_size, chunk in FLEET_SCALING:
        plan = FleetPlan(n_devices=devices, days=FLEET_DAYS,
                         capacity_gb=64.0, seed=606,
                         mix_weights=DEFAULT_MIX_WEIGHTS,
                         shard_size=shard_size, chunk=chunk)
        fleet = run_fleet(plan, jobs=1, name=label)
        results.append(fleet.sweep)
        wall = fleet.sweep.total_wall_s
        print(f"{label}: {devices} devices x {FLEET_DAYS} days in "
              f"{wall:.1f} s ({devices / wall:,.0f} devices/s, "
              f"{plan.n_shards} shards of {shard_size}, "
              f"{'exact' if plan.exact else 'histogram'} reduction, "
              f"p99 wear {fleet.wear.quantile(0.99):.4f})")

    write_bench_json(path, results, notes="scripts/regen_bench.py")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else str(
        Path(__file__).resolve().parent.parent / "BENCH_runner.json"
    )
    sys.exit(main(target))
