"""End-to-end column store smoke: cache -> query -> damage -> compact, CI-shaped.

Drives the real CLI as subprocesses -- nothing mocked -- through the
column store's whole life cycle:

1. **populate**: ``repro population --cache-dir`` runs a small fleet;
   its shard observables must land in ``columns.rcs`` beside the shard
   pickles;
2. **query off-disk**: ``repro store inspect`` verifies clean, and
   ``repro store scan --column obs.wear`` answers the wear distribution
   from the block index with every device accounted for;
3. **resume**: the same fleet re-run over the cache must be all cache
   hits (the store rehydrates every shard bit-identically -- a wrong
   byte would change the printed percentiles);
4. **damage**: flip one byte in the middle of ``columns.rcs``; the
   re-run must still exit 0 (the damaged shard degrades to a
   recomputed miss, never to wrong data) and print the same numbers;
5. **compact**: ``repro store compact`` rewrites live entries only and
   ``inspect`` verifies clean after; the off-disk scan output is
   byte-identical before and after.

Any deviation exits nonzero with the captured output, so a CI step can
gate on it directly.

Usage::

    PYTHONPATH=src python scripts/store_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

POPULATION = [
    "population", "--devices", "120", "--years", "0.2",
    "--shard-size", "40", "--chunk", "40", "--seed", "11",
    "--cache-dir",  # + dir
]


def _cli(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CHAOS_FS", None)
    env.pop("REPRO_CHAOS_CRASH", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def _require(proc: subprocess.CompletedProcess, step: str, expect_rc: int = 0) -> str:
    if proc.returncode != expect_rc:
        print(f"FAIL [{step}]: exit {proc.returncode}, expected {expect_rc}")
        print("-- stdout --\n" + proc.stdout)
        print("-- stderr --\n" + proc.stderr)
        sys.exit(1)
    print(f"ok [{step}]")
    return proc.stdout


def _wear_table(cache: str) -> str:
    return _require(
        _cli("store", "scan", cache, "--column", "obs.wear"), "store scan obs.wear"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="store-smoke-") as cache:
        store_file = Path(cache) / "columns.rcs"

        # 1. populate through the real fleet path
        first = _require(_cli(*POPULATION, cache), "population (cold)")
        if not store_file.exists():
            print(f"FAIL: fleet run left no column store at {store_file}")
            return 1

        # 2. off-disk queries
        inspect = _require(_cli("store", "inspect", cache), "store inspect")
        if "verify: clean" not in inspect:
            print("FAIL: inspect did not verify clean:\n" + inspect)
            return 1
        scan = _wear_table(cache)
        if "120" not in scan:  # every device's wear answered off-disk
            print("FAIL: scan does not account for all 120 devices:\n" + scan)
            return 1

        # 3. warm resume: identical numbers, no recompute needed
        second = _require(_cli(*POPULATION, cache), "population (warm)")
        if _percentiles(first) != _percentiles(second):
            print("FAIL: warm re-run changed the percentile lines")
            print("-- cold --\n" + first + "-- warm --\n" + second)
            return 1

        # 4. single-byte damage degrades to a recomputed miss, not wrong data
        blob = bytearray(store_file.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        store_file.write_bytes(bytes(blob))
        healed = _require(_cli(*POPULATION, cache), "population (damaged store)")
        if _percentiles(first) != _percentiles(healed):
            print("FAIL: damaged-store re-run changed the percentile lines")
            print("-- cold --\n" + first + "-- healed --\n" + healed)
            return 1

        # 5. compact, verify clean, and the off-disk answers are unchanged
        before_scan = _wear_table(cache)
        _require(_cli("store", "compact", cache), "store compact")
        after = _require(_cli("store", "inspect", cache), "store inspect (compacted)")
        if "verify: clean" not in after:
            print("FAIL: store does not verify clean after compact:\n" + after)
            return 1
        if _wear_table(cache) != before_scan:
            print("FAIL: compaction changed the off-disk wear distribution")
            return 1

    print("store smoke: all steps passed")
    return 0


def _percentiles(output: str) -> list[str]:
    """The wear-distribution lines of a population run's report."""
    lines = [
        line.strip() for line in output.splitlines()
        if any(tag in line for tag in ("p50", "p90", "p99", "median", "max"))
    ]
    if not lines:
        print("FAIL: population output carries no percentile lines:\n" + output)
        sys.exit(1)
    return lines


if __name__ == "__main__":
    sys.exit(main())
