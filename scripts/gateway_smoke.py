"""End-to-end smoke for the ``repro serve`` gateway, CI-shaped.

Drives the real CLI as subprocesses -- nothing is mocked, nothing is
imported around the argument parser -- through the full service story:

1. start a gateway on an ephemeral port (``--port 0`` + ``--port-file``
   handshake);
2. ``repro submit population --wait`` a small fleet and require exit 0
   with a complete summary;
3. ``repro jobs`` / ``repro jobs --health`` render and report healthy;
4. resubmit the identical spec and require the dedup fast path (the
   job id is reused, exit 0, no recompute);
5. SIGTERM the gateway and require a clean drain (exit 0).

Any deviation exits nonzero with the gateway's captured output, so a
CI step can gate on it directly.

Usage::

    PYTHONPATH=src python scripts/gateway_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _cli(*args: str, timeout: float = 120.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(), capture_output=True, text=True, timeout=timeout,
    )


def _fail(step: str, detail: str, gateway_output: str = "") -> None:
    print(f"FAIL [{step}] {detail}")
    if gateway_output:
        print("--- gateway output ---")
        print(gateway_output)
    raise SystemExit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        tmp_path = Path(tmp)
        port_file = tmp_path / "port"
        gateway = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--state-dir", str(tmp_path / "state"),
                "--port", "0",
                "--port-file", str(port_file),
                "--max-running", "1",
                "--job-workers", "2",
            ],
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not port_file.exists():
                if gateway.poll() is not None:
                    _fail("start", "gateway exited during startup",
                          gateway.stdout.read())
                if time.monotonic() > deadline:
                    _fail("start", "port file never appeared")
                time.sleep(0.05)
            port = port_file.read_text().strip()
            target = f"127.0.0.1:{port}"
            print(f"PASS [start] gateway up on {target}")

            submit = _cli(
                "submit", "population", "--gateway", target,
                "--devices", "40", "--years", "0.1", "--wait",
            )
            if submit.returncode != 0:
                _fail("submit", f"exit {submit.returncode}:\n{submit.stdout}")
            view = json.loads(submit.stdout.partition("\n")[2])
            if not view["result"]["complete"]:
                _fail("submit", f"summary not complete:\n{submit.stdout}")
            job_id = view["job_id"]
            print(f"PASS [submit] job {job_id} done, "
                  f"{view['result']['devices']} devices")

            jobs = _cli("jobs", "--gateway", target)
            if jobs.returncode != 0 or job_id not in jobs.stdout:
                _fail("jobs", f"exit {jobs.returncode}:\n{jobs.stdout}")
            health = _cli("jobs", "--gateway", target, "--health")
            report = json.loads(health.stdout)
            if health.returncode != 0 or report["healthy"] is not True:
                _fail("health", f"exit {health.returncode}:\n{health.stdout}")
            print(f"PASS [status] {report['counters']['serve.jobs_done']} "
                  "job(s) done, gateway healthy")

            again = _cli(
                "submit", "population", "--gateway", target,
                "--devices", "40", "--years", "0.1", "--wait",
            )
            if again.returncode != 0 or "deduplicated" not in again.stdout:
                _fail("dedup", f"exit {again.returncode}:\n{again.stdout}")
            if json.loads(again.stdout.partition("\n")[2])["job_id"] != job_id:
                _fail("dedup", "identical spec produced a second job")
            print("PASS [dedup] identical spec re-attached to the same job")

            gateway.send_signal(signal.SIGTERM)
            try:
                code = gateway.wait(timeout=30)
            except subprocess.TimeoutExpired:
                _fail("drain", "gateway did not drain within 30s")
            output = gateway.stdout.read()
            if code != 0 or "draining" not in output:
                _fail("drain", f"exit {code}", output)
            print("PASS [drain] SIGTERM drained cleanly (exit 0)")
        finally:
            if gateway.poll() is None:
                gateway.kill()
                gateway.wait(timeout=10)
    print("gateway smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
