#!/usr/bin/env python
"""Approximate media: watch a video degrade, get rescued, and get repaired.

Demonstrates §4.2/§4.3 on the bit-exact device: a GOP-structured media
object is stored with its error-tolerant frames on unprotected PLC
(hybrid layout), the device ages and wears, the degradation monitor
forecasts trouble, and the scrubber rescues -- from the cloud when a
backup exists, by relocation otherwise.

Run:  python examples/approximate_media.py
"""

from __future__ import annotations

from repro.core import CloudBackup, DegradationMonitor, Scrubber, default_config
from repro.core.partitions import build_partitions
from repro.flash.geometry import Geometry
from repro.host.block_layer import BlockLayer
from repro.media import ApproximateStore, MediaLayout, make_media_object
from repro.media.quality import quality_to_psnr_db


def main() -> None:
    geometry = Geometry(page_size_bytes=512, pages_per_block=16,
                        blocks_per_plane=64, planes_per_die=2, dies=1)
    device = build_partitions(default_config(seed=9, geometry=geometry))
    layer = BlockLayer(device.ftl)
    store = ApproximateStore(layer)
    backup = CloudBackup(available=True)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    scrubber = Scrubber(layer, monitor, backup, quality_floor=0.9)

    media = make_media_object(30_000, seed=4)
    print(f"media object: {media.size_bytes} B, {len(media.gops)} GOPs, "
          f"{media.tolerant_fraction() * 100:.0f}% of bytes error-tolerant")

    stored = store.store(media, MediaLayout.HYBRID)
    print(f"stored hybrid: {stored.spare_fraction * 100:.0f}% of pages on "
          f"unprotected PLC SPARE, I-frames on protected SYS")
    # the user has cloud backup: upload clean page copies
    for i, lpn in enumerate(stored.lpns):
        chunk = media.data[i * layer.page_bytes:(i + 1) * layer.page_bytes]
        backup.store_page(lpn, chunk)

    print(f"\n{'quarter':>7}  {'SPARE PEC':>9}  {'quality':>8}  {'PSNR':>7}  "
          f"{'repairs':>7}")
    for quarter in range(1, 13):
        for index in device.ftl.stream("spare").blocks:
            device.chip.blocks[index].pec += 20  # heavy-ish use
        device.chip.advance_time(quarter / 4)
        scrub = scrubber.scrub(stored.lpns)
        audit = store.audit_quality(stored)
        pec = device.chip.blocks[device.ftl.stream("spare").blocks[0]].pec
        print(f"{quarter:>7}  {pec:>9}  {audit.quality:>8.4f}  "
              f"{quality_to_psnr_db(audit.quality):>6.1f}dB  "
              f"{scrub.pages_repaired_from_cloud:>7}")

    final = store.audit_quality(stored)
    verdict = "acceptable" if final.acceptable else "degraded"
    print(f"\nafter 3 years at ~50% of rated PLC endurance: quality "
          f"{final.quality:.3f} ({verdict}), mean BER {final.mean_ber:.2e}")


if __name__ == "__main__":
    main()
