#!/usr/bin/env python
"""Zoned SOS: host-managed placement through a ZNS-style interface.

§4.3's alternative co-design: instead of LBA hints interpreted by device
firmware, "the host is responsible for placing data blocks in relevant
streams/zones with different management policies".  This example drives
the zoned frontend directly: the host appends a media object's
error-tolerant frames into SPARE-class zones and its I-frames into
SYS-class zones, then ages the device and reads everything back.

Run:  python examples/zoned_sos.py
"""

from __future__ import annotations

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.zones import ZoneClass, ZonedDevice, ZoneState
from repro.media.codec import make_media_object
from repro.media.quality import measure_quality


def main() -> None:
    geometry = Geometry(page_size_bytes=512, pages_per_block=16,
                        blocks_per_plane=64, planes_per_die=2, dies=1)
    chip = FlashChip(geometry, CellTechnology.PLC, seed=17)
    total = geometry.total_blocks
    zoned = ZonedDevice(
        chip,
        {
            "sys": ZoneClass("sys", pseudo_mode(CellTechnology.PLC, 4),
                             POLICIES[ProtectionLevel.STRONG]),
            "spare": ZoneClass("spare", native_mode(CellTechnology.PLC),
                               POLICIES[ProtectionLevel.NONE]),
        },
        {"sys": list(range(total // 2)), "spare": list(range(total // 2, total))},
    )
    media = make_media_object(20_000, seed=12)
    critical = media.critical_ranges()
    print(f"media: {media.size_bytes} B, {len(media.gops)} GOPs, "
          f"{media.tolerant_fraction() * 100:.0f}% tolerant bytes")

    # host-side placement: chunk the object, route chunks by I-frame overlap
    page = min(zoned.payload_bytes("sys"), zoned.payload_bytes("spare"))
    placements: list[tuple[str, int, int]] = []  # (class, zone, offset)
    open_zone = {"sys": None, "spare": None}
    for start in range(0, media.size_bytes, page):
        chunk = media.data[start:start + page]
        end = start + len(chunk)
        is_critical = any(start < ce and cs < end for cs, ce in critical)
        zclass = "sys" if is_critical else "spare"
        zone = open_zone[zclass]
        if zone is None or zoned.info(zone).state is ZoneState.FULL:
            zone = next(z.zone_id for z in zoned.zones(zclass)
                        if z.state is ZoneState.EMPTY)
            open_zone[zclass] = zone
        offset = zoned.append(zone, chunk)
        placements.append((zclass, zone, offset))
    sys_chunks = sum(1 for c, _, _ in placements if c == "sys")
    print(f"host placed {sys_chunks}/{len(placements)} chunks in SYS zones, "
          f"the rest in SPARE zones")

    # three years pass; SPARE zones wear
    for z in zoned.zones("spare"):
        chip.blocks[z.zone_id].pec += 80
    chip.advance_time(3.0)

    readback = bytearray()
    for _zclass, zone, offset in placements:
        readback.extend(zoned.read(zone, offset).payload[:page])
    quality = measure_quality(media, bytes(readback[:media.size_bytes]))
    print(f"\nafter 3 years: quality {quality.quality:.3f} "
          f"({quality.psnr_db:.1f} dB proxy), mean BER {quality.mean_ber:.2e}")
    print("acceptable" if quality.acceptable else "degraded beyond the bar")


if __name__ == "__main__":
    main()
