#!/usr/bin/env python
"""Fleet carbon: what would worldwide SOS adoption be worth?

Combines the market model (Figure 1), the replacement-rate analysis
(§2.3), and the 2021-2030 production projection (§1/§3) to answer the
question the paper motivates: if personal flash (phones, tablets, cards)
switched from TLC-class to SOS's PLC/pseudo-QLC split, how many megatons
of CO2e per year does that avoid by decade's end?

Run:  python examples/fleet_carbon.py [--adoption 0..1]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.carbon.credits import EU_ETS_PEAK_2022, credit_cost_per_tb
from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
from repro.carbon.market import MARKET_SHARE_2020, personal_share
from repro.carbon.projection import ProjectionConfig, project
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--adoption", type=float, default=1.0,
                        help="fraction of personal-device flash using SOS by 2030")
    args = parser.parse_args()

    plc = CellTechnology.PLC
    sos_intensity_ratio = mixed_intensity_kg_per_gb(
        {native_mode(plc): 0.5, pseudo_mode(plc, 4): 0.5}
    ) / intensity_kg_per_gb(CellTechnology.TLC)
    personal = personal_share(include_memory_cards=True)

    print("market (Figure 1):")
    for device, share in MARKET_SHARE_2020.items():
        print(f"  {device:<12} {share * 100:.0f}%")
    print(f"personal share of flash bits: {personal * 100:.0f}%")
    print(f"SOS intensity vs TLC: {sos_intensity_ratio * 100:.1f}% "
          f"(a {(1 - sos_intensity_ratio) * 100:.1f}% cut)\n")

    points = project(ProjectionConfig())
    rows = []
    for point in points:
        addressable = point.emissions_mt * personal
        avoided = addressable * (1 - sos_intensity_ratio) * args.adoption
        rows.append([
            point.year,
            f"{point.emissions_mt:.0f}",
            f"{addressable:.0f}",
            f"{avoided:.0f}",
            f"{avoided / point.emissions_mt * 100:.1f}%",
        ])
    print(format_table(
        ["year", "flash emissions (Mt)", "personal share (Mt)",
         f"avoided @ {args.adoption * 100:.0f}% adoption (Mt)", "of all flash"],
        rows,
    ))
    final = points[-1]
    avoided_2030 = final.emissions_mt * personal * (1 - sos_intensity_ratio) * args.adoption
    people = avoided_2030 * 1e6 / 4.4 / 1e6
    credit_value = avoided_2030 * 1e6 * EU_ETS_PEAK_2022.usd_per_tonne / 1e9
    print(f"\nby 2030 SOS avoids ~{avoided_2030:.0f} Mt CO2e/year "
          f"(annual emissions of ~{people:.0f}M people), worth "
          f"~${credit_value:.1f}B/year at the EU ETS peak price.")
    print(f"for scale: one TB of TLC flash embeds "
          f"${credit_cost_per_tb(EU_ETS_PEAK_2022):.2f} of carbon credits.")


if __name__ == "__main__":
    main()
