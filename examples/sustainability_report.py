#!/usr/bin/env python
"""Sustainability report: audit an SOS device after simulated use.

Runs a few simulated months of mixed usage on the bit-exact device,
then prints the full lifetime accounting: carbon saved versus the TLC
status quo, wear margins consumed, rescue/repair activity, and the
integrity record.

Run:  python examples/sustainability_report.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SOSDevice, build_report, default_config, render_report
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind


def main() -> None:
    geometry = Geometry(page_size_bytes=512, pages_per_block=16,
                        blocks_per_plane=48, planes_per_die=2, dies=1)
    device = SOSDevice(default_config(seed=23, geometry=geometry))
    rng = np.random.default_rng(8)

    # a few months of life: system files, keepers, junk, churn
    device.create_file("/system/base.img", FileKind.OS_SYSTEM, 6000,
                       content=lambda o: rng.bytes(400))
    for month in range(1, 7):
        now = month / 12
        device.advance_time(now)
        for i in range(4):
            kind = FileKind.PHOTO if i % 2 else FileKind.MESSAGE_MEDIA
            device.create_file(
                f"/m{month}/media{i}", kind, 2500,
                attributes=FileAttributes(
                    created_years=now, last_access_years=now,
                    is_screenshot=(i % 2 == 0), duplicate_count=i,
                    cloud_backed=(i == 0),
                ),
                content=lambda o: rng.bytes(400),
            )
        if month % 2 == 0:
            device.create_file(
                f"/m{month}/treasure", FileKind.VIDEO, 2500,
                attributes=FileAttributes(
                    created_years=now, last_access_years=now,
                    user_favorite=True, has_known_faces=True, access_count=60,
                ),
                content=lambda o: rng.bytes(400),
            )
        device.run_daemon()

    print(render_report(build_report(device)))


if __name__ == "__main__":
    main()
