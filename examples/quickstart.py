#!/usr/bin/env python
"""Quickstart: build an SOS device, store files, watch them get classified.

Walks the Figure 2 pipeline end to end in under a minute:

1. build a PLC device split into SYS (pseudo-QLC, strong ECC) and SPARE
   (native PLC, no ECC, no wear leveling);
2. create a mix of files -- OS data, a treasured family video, a pile of
   screenshots;
3. run the classifier daemon and see where everything landed;
4. report the embodied-carbon win over a TLC device of equal capacity.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.carbon.embodied import intensity_kg_per_gb
from repro.core import SOSDevice, default_config
from repro.flash.cell import CellTechnology
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind
from repro.host.hints import Placement


def main() -> None:
    geometry = Geometry(page_size_bytes=512, pages_per_block=16,
                        blocks_per_plane=48, planes_per_die=2, dies=1)
    device = SOSDevice(default_config(seed=1, geometry=geometry))
    rng = np.random.default_rng(0)

    print("== 1. device ==")
    print(f"technology: {device.config.technology.name}, "
          f"SYS mode {device.config.sys_mode.name}, "
          f"SPARE mode {device.config.spare_mode.name}")
    print(f"capacity: {device.filesystem.capacity_pages()} logical pages "
          f"({device.block_layer.page_bytes} B payload each)")

    print("\n== 2. files ==")
    device.create_file("/system/framework.jar", FileKind.OS_SYSTEM, 8000,
                       content=lambda o: rng.bytes(400))
    device.create_file(
        "/DCIM/wedding.mp4", FileKind.VIDEO, 12000,
        attributes=FileAttributes(user_favorite=True, has_known_faces=True,
                                  access_count=90, cloud_backed=True),
        content=lambda o: rng.bytes(400),
    )
    for i in range(8):
        device.create_file(
            f"/DCIM/screenshot_{i}.png", FileKind.PHOTO, 3000,
            attributes=FileAttributes(is_screenshot=True, duplicate_count=3,
                                      access_count=1),
            content=lambda o: rng.bytes(400),
        )
    print("created 1 system file, 1 favorite video, 8 screenshots "
          "(all land on SYS first, per §4.4)")

    print("\n== 3. daemon ==")
    device.advance_time(30 / 365)  # a month passes
    run = device.run_daemon()
    print(f"daemon reviewed {run.files_reviewed} files, moved {run.files_moved}")
    for record in device.filesystem.live_files():
        placement = device.placement.placement_of(record)
        marker = "SPARE (degradable)" if placement is Placement.SPARE else "SYS  (protected) "
        print(f"  {marker}  {record.path}")

    print("\n== 4. carbon ==")
    carbon = device.embodied_carbon()
    tlc = intensity_kg_per_gb(CellTechnology.TLC)
    print(f"SOS embodied intensity: {carbon.intensity_kg_per_gb:.3f} kg CO2e/GB")
    print(f"TLC baseline:           {tlc:.3f} kg CO2e/GB")
    print(f"reduction:              {(1 - carbon.intensity_kg_per_gb / tlc) * 100:.1f}%")


if __name__ == "__main__":
    main()
