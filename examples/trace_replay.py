#!/usr/bin/env python
"""Trace replay: a year of phone usage against the bit-exact device.

Generates an op-level synthetic mobile trace (creates, in-place app
churn, reads, deletions), scales it down to the simulated chip, and
replays it through the full SOS stack -- file system, block layer,
classifier daemon, scrubber, and trim policy all engaged.

Run:  python examples/trace_replay.py [--days 365]
"""

from __future__ import annotations

import argparse

from repro.core import SOSDevice, default_config
from repro.flash.geometry import Geometry
from repro.sim.replay import replay
from repro.workloads.mobile import MobileWorkload, WorkloadConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=365)
    parser.add_argument("--mix", default="typical")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    geometry = Geometry(page_size_bytes=512, pages_per_block=16,
                        blocks_per_plane=64, planes_per_die=2, dies=2)
    device = SOSDevice(default_config(seed=2, geometry=geometry))
    capacity_bytes = device.filesystem.capacity_pages() * device.block_layer.page_bytes

    workload = MobileWorkload(WorkloadConfig(mix=args.mix, days=args.days,
                                             seed=args.seed))
    # scale daily volumes so a day's new data is ~1.5% of the small chip
    scale = capacity_bytes * 0.015 / 2.5e9
    ops = workload.ops(scale_bytes=scale, files_per_day=4, delete_rate=0.02)
    print(f"replaying {len(ops)} ops over {args.days} days "
          f"({args.mix} mix) against a "
          f"{capacity_bytes / 1e6:.1f} MB bit-exact device...")

    stats = replay(device, ops, daemon_every_days=7)
    snapshot = device.snapshot()

    print(f"\nreplay: {stats.creates} creates, {stats.overwrites} overwrites, "
          f"{stats.reads} reads, {stats.deletes} deletes "
          f"({stats.skipped_full} skipped for space)")
    print(f"daemon ran {stats.daemon_runs} times, {stats.trim_events} trim episodes")
    print(f"\ndevice after {args.days} days:")
    print(f"  capacity: {snapshot.capacity_pages} pages, "
          f"used {snapshot.used_pages}")
    print(f"  wear: SYS mean {snapshot.sys_mean_pec:.1f} PEC, "
          f"SPARE mean {snapshot.spare_mean_pec:.1f} PEC")
    print(f"  blocks retired: {snapshot.blocks_retired}, "
          f"resuscitated: {snapshot.blocks_resuscitated}")
    print(f"  files on SPARE: {snapshot.spare_file_count} "
          f"of {len(list(device.filesystem.live_files()))}")
    ftl = device.ftl.stats
    print(f"  FTL: {ftl.host_writes} host writes, {ftl.gc_migrations} GC "
          f"migrations, {ftl.corrected_bits} bits corrected by ECC, "
          f"{ftl.uncorrectable_codewords} uncorrectable codewords")


if __name__ == "__main__":
    main()
