#!/usr/bin/env python
"""Phone lifetime: 3 years of a 64 GB phone, four storage designs.

The paper's central comparison (§4): run the same synthetic personal
workload against today's TLC device, a QLC device, a naive all-PLC
device, and SOS -- then put carbon, wear, media quality, and critical-
data risk side by side.

Run:  python examples/phone_lifetime.py [--mix typical|heavy|light] [--years N]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.sim.baselines import (
    build_plc_naive,
    build_qlc_baseline,
    build_sos,
    build_tlc_baseline,
)
from repro.sim.engine import run_lifetime
from repro.workloads.apps import daily_write_gb
from repro.workloads.mobile import MobileWorkload, WorkloadConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", default="typical",
                        choices=("light", "typical", "heavy", "adversarial"))
    parser.add_argument("--years", type=int, default=3)
    parser.add_argument("--capacity-gb", type=float, default=64.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"workload: '{args.mix}' mix, ~{daily_write_gb(args.mix):.1f} GB/day "
          f"nominal, {args.years} years, {args.capacity_gb:.0f} GB devices\n")
    summaries = MobileWorkload(
        WorkloadConfig(mix=args.mix, days=args.years * 365, seed=args.seed)
    ).daily_summaries()

    builders = {
        "TLC (status quo)": build_tlc_baseline,
        "QLC": build_qlc_baseline,
        "PLC naive": build_plc_naive,
        "SOS": build_sos,
    }
    rows = []
    for label, builder in builders.items():
        build = builder(args.capacity_gb)
        result = run_lifetime(build, summaries)
        final = result.final
        rows.append([
            label,
            f"{result.embodied_kg:.2f}",
            f"{final.sys_wear_fraction * 100:.1f}%",
            f"{final.spare_quality:.3f}",
            f"{final.sys_uncorrectable:.1e}",
            f"{final.capacity_gb:.1f}",
            "yes" if result.survived() else "degraded",
        ])
    print(format_table(
        ["device", "embodied kg CO2e", "worst wear", "media quality",
         "E[uncorrectable]", "capacity left (GB)", f"healthy at {args.years}y"],
        rows,
    ))
    sos_kg = float(rows[3][1])
    tlc_kg = float(rows[0][1])
    print(f"\nSOS saves {tlc_kg - sos_kg:.2f} kg CO2e per device vs TLC "
          f"({(1 - sos_kg / tlc_kg) * 100:.0f}% of the storage footprint).")
    print("Scaled to a billion phones a year, that is "
          f"~{(tlc_kg - sos_kg) * 1e9 / 1e9:.1f} Mt CO2e annually.")


if __name__ == "__main__":
    main()
