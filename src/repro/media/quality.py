"""Media quality metric under bit errors.

Maps observed bit error rates per frame to a perceptual quality score,
following the error-propagation structure of GOP-coded video:

* a frame's own quality decays exponentially with its bit error rate,
  with a sensitivity constant per frame type (I >> P > B) -- intra-coded
  frames lose entropy-coded sync on few errors, while B-frame macroblock
  errors stay local;
* I-frame corruption multiplies into every frame of its GOP (reference
  propagation);
* file quality is the byte-weighted mean over GOPs.

A display mapping to a PSNR-like dB figure is provided for familiarity;
experiments threshold on the [0, 1] score.  ``DEFAULT_ACCEPTABLE_QUALITY``
is the "sufficient quality" bar of the paper's abstract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .codec import FrameType, Gop, MediaObject

__all__ = [
    "FRAME_SENSITIVITY",
    "DEFAULT_ACCEPTABLE_QUALITY",
    "frame_quality",
    "gop_quality",
    "file_quality",
    "quality_to_psnr_db",
    "QualityReport",
    "measure_quality",
]

#: Exponential BER sensitivity per frame type (errors-per-bit scale).
FRAME_SENSITIVITY: dict[FrameType, float] = {
    FrameType.I: 5000.0,
    FrameType.P: 800.0,
    FrameType.B: 300.0,
}

#: Quality score below which degradation is user-visible enough to act on.
DEFAULT_ACCEPTABLE_QUALITY = 0.80


def frame_quality(ber: float, frame_type: FrameType) -> float:
    """Quality of a single frame read at bit error rate ``ber``."""
    if ber < 0:
        raise ValueError("ber must be non-negative")
    return math.exp(-FRAME_SENSITIVITY[frame_type] * ber)


def gop_quality(frame_bers: list[float], gop: Gop) -> float:
    """Quality of one GOP given each frame's observed BER.

    The I-frame's quality multiplies into all frames (reference
    propagation); remaining frames contribute their byte-weighted mean.
    """
    if len(frame_bers) != len(gop.frames):
        raise ValueError("one BER per frame required")
    q_i = frame_quality(frame_bers[0], FrameType.I)
    dependents = list(zip(frame_bers[1:], gop.frames[1:]))
    if not dependents:
        return q_i
    weighted = sum(
        frame_quality(ber, frame.frame_type) * frame.size_bytes for ber, frame in dependents
    )
    total = sum(frame.size_bytes for _, frame in dependents)
    return q_i * (weighted / total)


def file_quality(gop_qualities: list[float], gops: tuple[Gop, ...]) -> float:
    """Byte-weighted mean quality across GOPs."""
    if len(gop_qualities) != len(gops):
        raise ValueError("one quality per GOP required")
    total = sum(g.size_bytes for g in gops)
    if total == 0:
        return 1.0
    return sum(q * g.size_bytes for q, g in zip(gop_qualities, gops)) / total


def quality_to_psnr_db(quality: float) -> float:
    """Display mapping from [0, 1] quality to a PSNR-like dB figure.

    Anchored at ~40 dB (visually lossless) for quality 1.0 and ~15 dB
    (unwatchable) for quality 0.0; linear in between.  Purely cosmetic.
    """
    if not 0.0 <= quality <= 1.0:
        raise ValueError("quality must be in [0, 1]")
    return 15.0 + 25.0 * quality


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Quality measurement of one media object read-back."""

    quality: float
    psnr_db: float
    worst_gop_quality: float
    mean_ber: float

    @property
    def acceptable(self) -> bool:
        """Whether quality clears :data:`DEFAULT_ACCEPTABLE_QUALITY`."""
        return self.quality >= DEFAULT_ACCEPTABLE_QUALITY


def measure_quality(media: MediaObject, readback: bytes) -> QualityReport:
    """Compare a read-back byte string against the reference media object.

    Counts bit errors per frame (XOR popcount against the reference),
    converts to per-frame BER, and aggregates through the GOP model.
    """
    if len(readback) < media.size_bytes:
        raise ValueError("readback shorter than media object")
    reference = media.data
    gop_qs: list[float] = []
    total_errors = 0
    for gop in media.gops:
        bers: list[float] = []
        for frame in gop.frames:
            ref = reference[frame.offset: frame.end]
            got = readback[frame.offset: frame.end]
            errors = _bit_errors(ref, got)
            total_errors += errors
            bers.append(errors / (frame.size_bytes * 8))
        gop_qs.append(gop_quality(bers, gop))
    quality = file_quality(gop_qs, media.gops)
    return QualityReport(
        quality=quality,
        psnr_db=quality_to_psnr_db(quality),
        worst_gop_quality=min(gop_qs) if gop_qs else 1.0,
        mean_ber=total_errors / (media.size_bytes * 8),
    )


def _bit_errors(a: bytes, b: bytes) -> int:
    """Hamming distance in bits between equal-length byte strings."""
    return sum((x ^ y).bit_count() for x, y in zip(a, b))
