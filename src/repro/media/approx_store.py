"""Approximate storage of media objects over the two-partition device.

Implements the §4.2 placement for media data demoted to SPARE, with the
selective-protection refinement from the approximate-storage literature
the paper cites (Sampson et al., Li et al., AxFTL): the *error-tolerant*
frames (P/B) go to the weakly-protected SPARE partition, while the small,
error-critical I-frames may be kept on SYS ("hybrid" layout) so a handful
of bit flips never destroys a whole GOP.

Layouts
-------
``FULL_SPARE``
    Everything on SPARE -- maximum density, quality decays fastest.
``HYBRID``
    I-frames on SYS, P/B frames on SPARE -- the operating point that makes
    50%-density PLC storage deliver acceptable quality for years.
``FULL_SYS``
    Everything on SYS (the conservative baseline for comparisons).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement

from .codec import FrameType, MediaObject
from .quality import QualityReport, measure_quality

__all__ = ["MediaLayout", "StoredMedia", "ApproximateStore"]


class MediaLayout(enum.Enum):
    """Placement strategy for a media object's frames."""

    FULL_SPARE = "full_spare"
    HYBRID = "hybrid"
    FULL_SYS = "full_sys"


@dataclass(slots=True)
class StoredMedia:
    """Placement record of one stored media object."""

    media: MediaObject
    layout: MediaLayout
    #: LPNs in object order
    lpns: list[int]
    #: per-LPN placement actually used
    placements: list[Placement]

    @property
    def spare_fraction(self) -> float:
        """Fraction of the object's pages on the SPARE partition."""
        if not self.placements:
            return 0.0
        return sum(1 for p in self.placements if p is Placement.SPARE) / len(self.placements)


class ApproximateStore:
    """Stores media objects page-by-page across SYS/SPARE partitions.

    Parameters
    ----------
    block_layer:
        Host block layer to write through.
    lpn_base:
        First LPN this store may use; the store allocates sequentially.
        Callers carve disjoint LPN regions per store.
    """

    def __init__(self, block_layer: BlockLayer, lpn_base: int = 1 << 20) -> None:
        self.block_layer = block_layer
        self._next_lpn = lpn_base

    def store(self, media: MediaObject, layout: MediaLayout) -> StoredMedia:
        """Write a media object under the given layout."""
        page_bytes = self.block_layer.page_bytes
        lpns: list[int] = []
        placements: list[Placement] = []
        critical = media.critical_ranges()
        for offset in range(0, media.size_bytes, page_bytes):
            chunk = media.data[offset: offset + page_bytes]
            placement = self._placement_for(offset, len(chunk), critical, layout)
            lpn = self._next_lpn
            self._next_lpn += 1
            self.block_layer.relocate(lpn, placement)  # set sticky placement
            self.block_layer.write_page(lpn, chunk)
            lpns.append(lpn)
            placements.append(placement)
        return StoredMedia(media=media, layout=layout, lpns=lpns, placements=placements)

    def read_back(self, stored: StoredMedia, votes: int = 1) -> bytes:
        """Reassemble the object's bytes (with whatever errors survived).

        Parameters
        ----------
        votes:
            Read each page this many times and take a per-bit majority
            vote.  Retention/wear errors on unprotected flash are largely
            *transient sensing* errors that resample on every read, so
            voting suppresses them quadratically at the cost of ``votes``x
            read latency -- a standard approximate-storage recovery trick
            (cf. Sampson et al. §6).  ``votes`` must be odd.
        """
        if votes < 1 or votes % 2 == 0:
            raise ValueError("votes must be a positive odd number")
        page_bytes = self.block_layer.page_bytes
        out = bytearray()
        for lpn in stored.lpns:
            if votes == 1:
                out.extend(self.block_layer.read_page(lpn)[:page_bytes])
                continue
            reads = [
                np.frombuffer(
                    self.block_layer.read_page(lpn)[:page_bytes], dtype=np.uint8
                )
                for _ in range(votes)
            ]
            stacked = np.unpackbits(np.stack(reads), axis=1)
            majority = (stacked.sum(axis=0) > votes // 2).astype(np.uint8)
            out.extend(np.packbits(majority).tobytes())
        return bytes(out[: stored.media.size_bytes])

    def audit_quality(self, stored: StoredMedia, votes: int = 1) -> QualityReport:
        """Read the object back and score its quality against the reference."""
        return measure_quality(stored.media, self.read_back(stored, votes=votes))

    def rewrite(self, stored: StoredMedia, data: bytes | None = None) -> None:
        """Rewrite the object in place (repair path: fresh, clean copy)."""
        payload = stored.media.data if data is None else data
        page_bytes = self.block_layer.page_bytes
        for i, lpn in enumerate(stored.lpns):
            chunk = payload[i * page_bytes: (i + 1) * page_bytes]
            self.block_layer.write_page(lpn, chunk)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _placement_for(
        offset: int,
        length: int,
        critical_ranges: list[tuple[int, int]],
        layout: MediaLayout,
    ) -> Placement:
        if layout is MediaLayout.FULL_SYS:
            return Placement.SYS
        if layout is MediaLayout.FULL_SPARE:
            return Placement.SPARE
        # HYBRID: a page is critical if it overlaps any I-frame range
        end = offset + length
        for c_start, c_end in critical_ranges:
            if offset < c_end and c_start < end:
                return Placement.SYS
        return Placement.SPARE
