"""GOP-structured media model with per-frame error tolerance.

§4.2 (citing AxFTL): "error-tolerant frames, which compose most data in
MPEG files, can be approximately stored over flash with low quality loss".
The load-bearing structure is the MPEG group-of-pictures (GOP):

* **I-frames** are intra-coded reference images -- errors in them corrupt
  every frame in the GOP (low tolerance, small share of bytes);
* **P-frames** predict from earlier frames -- errors propagate forward
  within the GOP only (medium tolerance);
* **B-frames** are bidirectionally predicted leaves -- errors affect only
  themselves (high tolerance, the bulk of bytes).

:class:`MediaObject` synthesizes a media file as concrete GOP/frame byte
ranges so the approximate store can place and audit them individually.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrameType",
    "Frame",
    "Gop",
    "MediaObject",
    "make_media_object",
    "make_photo_object",
    "make_audio_object",
]


class FrameType(enum.Enum):
    """MPEG frame classes, ordered by decreasing error sensitivity."""

    I = "I"  # noqa: E741 - standard MPEG terminology
    P = "P"
    B = "B"


@dataclass(frozen=True, slots=True)
class Frame:
    """One frame: a byte range within the media object."""

    frame_type: FrameType
    offset: int
    size_bytes: int

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.size_bytes


@dataclass(frozen=True, slots=True)
class Gop:
    """One group of pictures: an I-frame plus its dependent frames."""

    frames: tuple[Frame, ...]

    @property
    def i_frame(self) -> Frame:
        """The GOP's reference frame."""
        return self.frames[0]

    @property
    def size_bytes(self) -> int:
        """Total GOP bytes."""
        return sum(f.size_bytes for f in self.frames)


@dataclass(frozen=True, slots=True)
class MediaObject:
    """A synthesized media file with full frame layout and reference bytes."""

    gops: tuple[Gop, ...]
    data: bytes

    @property
    def size_bytes(self) -> int:
        """Total media payload size."""
        return len(self.data)

    def critical_ranges(self) -> list[tuple[int, int]]:
        """(offset, end) byte ranges of all I-frames (low error tolerance)."""
        return [(g.i_frame.offset, g.i_frame.end) for g in self.gops]

    def tolerant_fraction(self) -> float:
        """Fraction of bytes in error-tolerant (P/B) frames.

        The paper's premise is that this is "most data in MPEG files".
        """
        tolerant = sum(
            f.size_bytes for g in self.gops for f in g.frames if f.frame_type is not FrameType.I
        )
        return tolerant / self.size_bytes if self.size_bytes else 0.0


def make_media_object(
    size_bytes: int,
    gop_length: int = 12,
    i_frame_scale: float = 3.0,
    seed: int = 0,
) -> MediaObject:
    """Synthesize a media object of roughly ``size_bytes``.

    Parameters
    ----------
    size_bytes:
        Target payload size.
    gop_length:
        Frames per GOP (1 I + alternating P/B), the common IBBPBBP... GOP.
    i_frame_scale:
        I-frame size relative to a P-frame (I-frames are intra-coded and
        larger per frame, but rare -- so they remain a minority of bytes).
    seed:
        Seed for frame-size jitter and payload bytes.
    """
    if size_bytes < 1024:
        raise ValueError("media object must be at least 1 KiB")
    rng = np.random.default_rng(seed)
    # nominal P-frame size chosen so GOPs tile the object
    p_size = max(256, size_bytes // (gop_length * 8))
    gops: list[Gop] = []
    offset = 0
    while offset < size_bytes:
        frames: list[Frame] = []
        for idx in range(gop_length):
            if idx == 0:
                ftype = FrameType.I
                nominal = int(p_size * i_frame_scale)
            elif idx % 3 == 0:
                ftype = FrameType.P
                nominal = p_size
            else:
                ftype = FrameType.B
                nominal = int(p_size * 0.7)
            size = max(128, int(nominal * rng.uniform(0.8, 1.2)))
            size = min(size, size_bytes - offset)
            if size <= 0:
                break
            frames.append(Frame(ftype, offset, size))
            offset += size
            if offset >= size_bytes:
                break
        if frames:
            if frames[0].frame_type is not FrameType.I:
                # a truncated tail GOP must still lead with its reference
                frames[0] = Frame(FrameType.I, frames[0].offset, frames[0].size_bytes)
            gops.append(Gop(tuple(frames)))
    data = rng.integers(0, 256, size=size_bytes, dtype=np.uint8).tobytes()
    return MediaObject(gops=tuple(gops), data=data)


def make_photo_object(size_bytes: int, seed: int = 0) -> MediaObject:
    """Synthesize a progressive-JPEG-like photo (§4.2's "additional file
    formats ... stored approximately").

    Structure: one critical header region (markers, quantization/Huffman
    tables, DC scan -- losing it loses the image) followed by
    progressively less important AC refinement scans.  Modelled as a
    single GOP: the header is the I-frame; scans are P then B frames
    (errors in a later scan only soften detail).
    """
    if size_bytes < 1024:
        raise ValueError("photo object must be at least 1 KiB")
    rng = np.random.default_rng(seed)
    header = max(256, int(size_bytes * 0.06))
    frames = [Frame(FrameType.I, 0, header)]
    offset = header
    # first AC scan is structurally more important than later refinements
    first_scan = max(256, int((size_bytes - header) * 0.3))
    first_scan = min(first_scan, size_bytes - offset)
    if first_scan > 0:
        frames.append(Frame(FrameType.P, offset, first_scan))
        offset += first_scan
    while offset < size_bytes:
        scan = min(max(256, int(size_bytes * 0.15)), size_bytes - offset)
        frames.append(Frame(FrameType.B, offset, scan))
        offset += scan
    data = rng.integers(0, 256, size=size_bytes, dtype=np.uint8).tobytes()
    return MediaObject(gops=(Gop(tuple(frames)),), data=data)


def make_audio_object(
    size_bytes: int, frame_bytes: int = 1024, seed: int = 0
) -> MediaObject:
    """Synthesize a compressed-audio stream (MP3/AAC-like).

    Each audio frame is self-contained: a small critical header (sync
    word, bit-allocation tables) and a tolerant payload whose bit errors
    become brief audible artifacts.  Modelled as many tiny GOPs (header
    I-frame + payload B-frame), so damage never propagates past one
    frame -- the most error-tolerant of the media formats.
    """
    if size_bytes < 1024:
        raise ValueError("audio object must be at least 1 KiB")
    rng = np.random.default_rng(seed)
    gops: list[Gop] = []
    offset = 0
    header = max(32, frame_bytes // 16)
    while offset < size_bytes:
        this_header = min(header, size_bytes - offset)
        frames = [Frame(FrameType.I, offset, this_header)]
        offset += this_header
        payload = min(frame_bytes - this_header, size_bytes - offset)
        if payload > 0:
            frames.append(Frame(FrameType.B, offset, payload))
            offset += payload
        gops.append(Gop(tuple(frames)))
    data = rng.integers(0, 256, size=size_bytes, dtype=np.uint8).tobytes()
    return MediaObject(gops=tuple(gops), data=data)
