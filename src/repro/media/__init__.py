"""Error-tolerant media model and approximate storage (§4.2).

GOP-structured synthetic media objects, a quality metric that models
error propagation through I/P/B frame dependencies, and an approximate
store that places tolerant frames on the weakly-protected SPARE
partition.
"""

from .approx_store import ApproximateStore, MediaLayout, StoredMedia
from .codec import (
    Frame,
    FrameType,
    Gop,
    MediaObject,
    make_audio_object,
    make_media_object,
    make_photo_object,
)
from .quality import (
    DEFAULT_ACCEPTABLE_QUALITY,
    FRAME_SENSITIVITY,
    QualityReport,
    file_quality,
    frame_quality,
    gop_quality,
    measure_quality,
    quality_to_psnr_db,
)

__all__ = [
    "ApproximateStore",
    "MediaLayout",
    "StoredMedia",
    "Frame",
    "FrameType",
    "Gop",
    "MediaObject",
    "make_media_object",
    "make_photo_object",
    "make_audio_object",
    "DEFAULT_ACCEPTABLE_QUALITY",
    "FRAME_SENSITIVITY",
    "QualityReport",
    "file_quality",
    "frame_quality",
    "gop_quality",
    "measure_quality",
    "quality_to_psnr_db",
]
