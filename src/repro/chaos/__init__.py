"""Infrastructure chaos: deterministic fs/crash fault injection.

Where :mod:`repro.faults` tortures *simulated* devices, this package
tortures the coordinator stack itself -- the result cache, the job
journal, the sweep and fleet loops -- with the failure shapes real
storage exhibits:

* :mod:`repro.chaos.fs` -- a seeded filesystem shim
  (:class:`ChaosFs`) threaded through every durable write, firing
  ``ENOSPC``, ``EIO``, torn partial writes, and failed renames at
  SeedSequence-derived points;
* :mod:`repro.chaos.crash` -- labeled crash points
  (:func:`crash_point`) that an armed process dies at via
  ``os._exit``, exactly like a power cut;
* :mod:`repro.chaos.driver` -- the crash matrix: a subprocess driver
  that kills a sweep/fleet/journal target at *every* labeled point and
  asserts the resumed output is bit-identical to an uninterrupted run.

Disabled -- the default -- all of it is inert: the fs layer is a
stateless pass-through singleton and a crash point is one truthiness
check; the transparency guard in ``tests/chaos`` pins both.
"""

from .driver import (
    MATRIX_TARGETS,
    MatrixReport,
    MatrixRow,
    run_crash_matrix,
    run_target,
)
from .crash import (
    CRASH_EXIT,
    CRASH_POINT_ENV,
    CRASH_POINTS,
    arm,
    crash_point,
    disarm,
    rearm_from_env,
)
from .fs import (
    CHAOS_FS_ENV,
    REAL_FS,
    ChaosFs,
    FaultSpec,
    RealFs,
    chaos_fs,
    get_fs,
    set_fs,
)

__all__ = [
    "CHAOS_FS_ENV",
    "CRASH_EXIT",
    "CRASH_POINT_ENV",
    "CRASH_POINTS",
    "ChaosFs",
    "FaultSpec",
    "MATRIX_TARGETS",
    "MatrixReport",
    "MatrixRow",
    "REAL_FS",
    "RealFs",
    "arm",
    "chaos_fs",
    "crash_point",
    "disarm",
    "get_fs",
    "rearm_from_env",
    "run_crash_matrix",
    "run_target",
    "set_fs",
]
