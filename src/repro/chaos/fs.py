"""Deterministic filesystem fault injection: the seeded fs shim.

Every durable write the coordinator stack performs -- result-cache
records, job-journal entries -- routes through a tiny filesystem
interface (:class:`RealFs`) instead of calling ``os`` directly.  The
indirection buys one thing: a :class:`ChaosFs` can be swapped in (per
construction argument, process-globally via :func:`set_fs`, or from the
``REPRO_CHAOS_FS`` environment variable so subprocesses inherit it) and
fire the real-world I/O failures the host-stack literature catalogs --
``ENOSPC``, ``EIO``, torn partial writes, failed renames -- at
**SeedSequence-derived points**, so a failing run replays bit-for-bit.

The injection contract mirrors :mod:`repro.faults` for simulated
devices: decisions are a pure function of ``(seed, op kind, op
ordinal)``, never of wall clock or interleaving, which makes every
chaos test deterministic and every failure reproducible from its seed.

With chaos disabled nothing changes: :data:`REAL_FS` is a stateless
singleton whose methods are one-line ``os`` calls, and
:func:`get_fs` returns it without allocation -- the transparency guard
in ``tests/chaos`` pins that the hooks cost nothing when idle.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

__all__ = [
    "CHAOS_FS_ENV",
    "ChaosFs",
    "FaultSpec",
    "RealFs",
    "REAL_FS",
    "chaos_fs",
    "get_fs",
    "set_fs",
]

#: Environment variable that installs a ChaosFs at import time, e.g.
#: ``REPRO_CHAOS_FS="seed=7,enospc_after=3,torn_write_rate=0.2"``.
#: Worker and CLI subprocesses inherit it, so one variable injects
#: faults through a whole process tree.
CHAOS_FS_ENV = "REPRO_CHAOS_FS"


class RealFs:
    """Pass-through filesystem layer: each method is one ``os`` call.

    Stateless by design -- one shared singleton (:data:`REAL_FS`) serves
    every cache and journal in the process, and the disabled-chaos path
    stays allocation-free.
    """

    __slots__ = ()

    name = "real"

    def open_write(self, path: str | Path) -> BinaryIO:
        return open(path, "wb")

    def open_append(self, path: str | Path) -> BinaryIO:
        return open(path, "ab")

    def write(self, fh: BinaryIO, data: bytes) -> None:
        fh.write(data)

    def fsync(self, fh: BinaryIO) -> None:
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str | Path) -> None:
        # durability of a rename needs the *parent directory* synced too;
        # opening read-only is how POSIX lets you reach its metadata
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


REAL_FS = RealFs()


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """What a :class:`ChaosFs` injects, and how often.

    Rates are per-operation probabilities in ``[0, 1]`` drawn
    deterministically from the fs seed; ``enospc_after`` is a hard
    schedule -- every ``write``/``open_write`` from that ordinal on
    raises ``ENOSPC``, the shape a filling disk actually has.
    """

    #: probability a write op raises ENOSPC
    enospc_rate: float = 0.0
    #: probability a write/fsync op raises EIO
    eio_rate: float = 0.0
    #: probability a write silently persists only a prefix (torn write)
    torn_write_rate: float = 0.0
    #: probability a replace (rename) raises EIO
    rename_fail_rate: float = 0.0
    #: write ops before the disk is "full"; None = never
    enospc_after: int | None = None

    def __post_init__(self) -> None:
        for name in ("enospc_rate", "eio_rate", "torn_write_rate", "rename_fail_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.enospc_after is not None and self.enospc_after < 0:
            raise ValueError("enospc_after must be >= 0")


#: op-kind component of the SeedSequence spawn key; fixed integers so a
#: spec's injection schedule never moves when op kinds are added
_OP_IDS = {"open": 1, "write": 2, "fsync": 3, "replace": 4}


class ChaosFs(RealFs):
    """Seeded fault-injecting filesystem layer.

    Each operation kind keeps its own ordinal counter; the decision for
    the ``n``-th op of kind ``k`` derives from
    ``SeedSequence(entropy=seed, spawn_key=(op_id, n))`` -- the same
    convention the sweep runner's jittered backoff uses -- so two runs
    with the same seed inject identical faults at identical points
    regardless of timing.  ``injected`` counts what actually fired, for
    assertions and reports.
    """

    __slots__ = ("seed", "spec", "_ordinals", "injected")

    name = "chaos"

    def __init__(self, seed: int = 0, spec: FaultSpec | None = None) -> None:
        self.seed = int(seed)
        self.spec = spec if spec is not None else FaultSpec()
        self._ordinals = {kind: 0 for kind in _OP_IDS}
        self.injected: dict[str, int] = {}

    # -- deterministic draws ---------------------------------------------------

    def _next(self, kind: str) -> tuple[int, float, float]:
        """Ordinal plus two uniform draws for this op (decision, detail)."""
        ordinal = self._ordinals[kind]
        self._ordinals[kind] = ordinal + 1
        state = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_OP_IDS[kind], ordinal)
        ).generate_state(2, dtype=np.uint64)
        return ordinal, float(state[0] / 2.0**64), float(state[1] / 2.0**64)

    def _fire(self, fault: str, op: str, code: int) -> None:
        self.injected[fault] = self.injected.get(fault, 0) + 1
        raise OSError(code, f"injected {fault} (chaos fs, op={op})")

    # -- the injected surface --------------------------------------------------

    def open_write(self, path: str | Path) -> BinaryIO:
        ordinal, decision, _ = self._next("open")
        if self.spec.enospc_after is not None and ordinal >= self.spec.enospc_after:
            self._fire("enospc", "open", errno.ENOSPC)
        if decision < self.spec.enospc_rate:
            self._fire("enospc", "open", errno.ENOSPC)
        return super().open_write(path)

    def open_append(self, path: str | Path) -> BinaryIO:
        # appends share the "open" ordinal stream: to an injection
        # schedule a store-block append and a record create are the
        # same kind of durable open
        ordinal, decision, _ = self._next("open")
        if self.spec.enospc_after is not None and ordinal >= self.spec.enospc_after:
            self._fire("enospc", "open", errno.ENOSPC)
        if decision < self.spec.enospc_rate:
            self._fire("enospc", "open", errno.ENOSPC)
        return super().open_append(path)

    def write(self, fh: BinaryIO, data: bytes) -> None:
        ordinal, decision, detail = self._next("write")
        if self.spec.enospc_after is not None and ordinal >= self.spec.enospc_after:
            self._fire("enospc", "write", errno.ENOSPC)
        threshold = self.spec.enospc_rate
        if decision < threshold:
            self._fire("enospc", "write", errno.ENOSPC)
        threshold += self.spec.eio_rate
        if decision < threshold:
            self._fire("eio", "write", errno.EIO)
        threshold += self.spec.torn_write_rate
        if decision < threshold and len(data) > 1:
            # the nasty case: persist a strict prefix and *succeed* --
            # only a checksum can catch this downstream
            cut = 1 + int(detail * (len(data) - 1))
            self.injected["torn_write"] = self.injected.get("torn_write", 0) + 1
            super().write(fh, data[:cut])
            return
        super().write(fh, data)

    def fsync(self, fh: BinaryIO) -> None:
        _, decision, _ = self._next("fsync")
        if decision < self.spec.eio_rate:
            self._fire("eio", "fsync", errno.EIO)
        super().fsync(fh)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        _, decision, _ = self._next("replace")
        if decision < self.spec.rename_fail_rate:
            self._fire("rename_fail", "replace", errno.EIO)
        super().replace(src, dst)


# -- process-global installation ----------------------------------------------

def _fs_from_env() -> RealFs:
    """Build the process fs from ``REPRO_CHAOS_FS``, or the real one."""
    raw = os.environ.get(CHAOS_FS_ENV, "").strip()
    if not raw:
        return REAL_FS
    known = {f.name for f in fields(FaultSpec)}
    seed = 0
    kwargs: dict[str, float | int] = {}
    for item in raw.split(","):
        name, _, value = item.partition("=")
        name = name.strip()
        if name == "seed":
            seed = int(value)
        elif name in ("enospc_after",):
            kwargs[name] = int(value)
        elif name in known:
            kwargs[name] = float(value)
        else:
            raise ValueError(
                f"{CHAOS_FS_ENV}: unknown field {name!r} "
                f"(known: seed, {', '.join(sorted(known))})"
            )
    return ChaosFs(seed=seed, spec=FaultSpec(**kwargs))


_FS: RealFs = _fs_from_env()


def get_fs() -> RealFs:
    """The process-global filesystem layer (the real one by default)."""
    return _FS


def set_fs(fs: RealFs) -> RealFs:
    """Install ``fs`` globally; returns the previous layer."""
    global _FS
    previous = _FS
    _FS = fs
    return previous


@contextmanager
def chaos_fs(fs: RealFs) -> Iterator[RealFs]:
    """Scope a filesystem layer: caches/journals *constructed inside*
    the block pick it up (the layer binds at construction, matching how
    one sweep owns one cache)."""
    previous = set_fs(fs)
    try:
        yield fs
    finally:
        set_fs(previous)
