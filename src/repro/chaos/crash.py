"""Labeled crash points: kill the process at a named instant, on demand.

The storage/coordination stack marks the instants that matter for crash
consistency -- just before and after a cache record's rename, around a
journal append, after a shard reduces -- with ``crash_point("label")``.
Disarmed (the default, and the only state production code ever runs
in), a crash point is one truthiness check on an empty dict; armed, the
process dies via ``os._exit`` at the n-th hit of the label, skipping
every ``finally``/``atexit`` exactly like a SIGKILL or a power cut.

Arming is environment-driven (``REPRO_CHAOS_CRASH="label"`` or
``"label:3"`` for the third hit), so a subprocess driver -- the crash
matrix in :mod:`repro.chaos.driver` -- can kill a sweep, fleet, or
gateway at *every* labeled point in turn and assert that a resumed run
is bit-identical to an uninterrupted one.  The registry below is the
closed set of labels; arming an unknown label is an error, so the
matrix can never silently test nothing.
"""

from __future__ import annotations

import os

__all__ = [
    "CRASH_EXIT",
    "CRASH_POINTS",
    "CRASH_POINT_ENV",
    "arm",
    "crash_point",
    "disarm",
    "rearm_from_env",
]

#: distinctive exit code of an injected crash, so drivers can tell an
#: intended kill from an ordinary failure
CRASH_EXIT = 86

CRASH_POINT_ENV = "REPRO_CHAOS_CRASH"

#: Every labeled instant the stack can die at.  Closed registry: a call
#: site adding a label must list it here or arming it fails loudly.
CRASH_POINTS = (
    # result cache: tmp file fully written, rename not yet issued
    "cache.store.pre_rename",
    # result cache: record visible under its final name
    "cache.store.post_rename",
    # job journal: record serialized to tmp, rename not yet issued
    "journal.save.pre_rename",
    # job journal: record visible under its final name
    "journal.save.post_rename",
    # sweep coordinator: point persisted to cache, reduction hook not run
    "sweep.point.post_persist",
    # fleet reduction: shard folded into the running digest
    "fleet.shard.reduced",
    # column store: block frame appended, index not yet rewritten
    "store.block.append",
    # column store: footer index appended (checkpoint durable)
    "store.index.write",
    # column store: compacted tmp fully written, rename not yet issued
    "store.compact.rename",
)

#: armed labels -> remaining hits before exit; empty = disarmed
_armed: dict[str, int] = {}

#: indirection so unit tests can observe the exit instead of dying
_exit = os._exit


def crash_point(label: str) -> None:
    """Die here if ``label`` is armed and its hit count is due.

    The disarmed fast path -- the only one production code takes -- is
    a single truthiness check; no allocation, no lookup.
    """
    if not _armed:
        return
    remaining = _armed.get(label)
    if remaining is None:
        return
    if remaining > 1:
        _armed[label] = remaining - 1
        return
    # mirror a power cut: say where we died (stderr survives the exit
    # for the driver's logs), then vanish without teardown
    os.write(2, f"chaos: crash at {label} (pid {os.getpid()})\n".encode())
    _exit(CRASH_EXIT)


def arm(label: str, hits: int = 1) -> None:
    """Arm ``label`` to kill the process at its ``hits``-th future hit."""
    if label not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {label!r}; known: {', '.join(CRASH_POINTS)}"
        )
    if hits < 1:
        raise ValueError("hits is 1-based")
    _armed[label] = hits


def disarm() -> None:
    """Clear every armed crash point."""
    _armed.clear()


def rearm_from_env() -> None:
    """(Re)load armed points from ``REPRO_CHAOS_CRASH``.

    Format: comma-separated ``label`` or ``label:hits`` entries.  Runs
    at import, so worker processes forked from an armed coordinator and
    subprocesses spawned with the variable set are armed identically.
    """
    disarm()
    raw = os.environ.get(CRASH_POINT_ENV, "").strip()
    if not raw:
        return
    for item in raw.split(","):
        label, _, hits = item.strip().partition(":")
        arm(label, int(hits) if hits else 1)


rearm_from_env()
