"""The crash matrix: die at every labeled point, resume bit-identically.

The driver turns the crash-point registry into a test harness.  For
each *target* -- a small, fully deterministic workload that exercises
one slice of the storage stack -- it runs three subprocesses per label:

1. **baseline**: the target uninterrupted, in a fresh state dir; its
   canonical-JSON stdout is the reference output;
2. **armed**: the target in another fresh state dir with
   ``REPRO_CHAOS_CRASH=<label>``, which must die with
   :data:`~repro.chaos.crash.CRASH_EXIT` at the label (any other exit
   means the label never fired -- a matrix that silently tests nothing
   is itself a failure);
3. **resumed**: the target again, disarmed, over the crashed run's
   state dir; it must exit cleanly and print **byte-identical** output
   to the baseline.

That last comparison is the whole durability claim in one predicate:
whatever instant the process died at, the cache/journal state it left
behind resumes to the same answer an uninterrupted run produces.

Targets run via ``python -m repro.cli chaos target <name>`` so they are
ordinary subprocesses; each is started in its own session so any worker
a crash orphans can be reaped by process group (belt) on top of the
workers' own PDEATHSIG tie to the coordinator (braces).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from .crash import CRASH_EXIT, CRASH_POINT_ENV

__all__ = [
    "MATRIX_TARGETS",
    "MatrixReport",
    "MatrixRow",
    "matrix_point",
    "run_crash_matrix",
    "run_target",
]

#: target name -> the crash labels its workload provably reaches
MATRIX_TARGETS: dict[str, tuple[str, ...]] = {
    "sweep": (
        "cache.store.pre_rename",
        "cache.store.post_rename",
        "sweep.point.post_persist",
    ),
    "fleet": (
        "cache.store.pre_rename",
        "cache.store.post_rename",
        "sweep.point.post_persist",
        "fleet.shard.reduced",
        # shard observables route through the column store: a block is
        # appended per persisted shard, the index at finalize
        "store.block.append",
        "store.index.write",
    ),
    "journal": (
        "journal.save.pre_rename",
        "journal.save.post_rename",
    ),
    "store": (
        "store.block.append",
        "store.index.write",
        "store.compact.rename",
    ),
}

_TIMEOUT_S = 120.0


def matrix_point(params: dict, seed: int) -> dict:
    """Cheap, pure sweep point for the matrix (importable for pickling)."""
    return {"i": params["i"], "v": (params["i"] * 1_000_003 + seed) % 999_983}


# -- targets (run inside the subprocess) ---------------------------------------


def run_target(name: str, state_dir: str | Path) -> dict:
    """Execute one matrix target against ``state_dir``; returns its
    canonical output payload (plain data, no wall-clock fields)."""
    if name == "sweep":
        return _target_sweep(Path(state_dir))
    if name == "fleet":
        return _target_fleet(Path(state_dir))
    if name == "journal":
        return _target_journal(Path(state_dir))
    if name == "store":
        return _target_store(Path(state_dir))
    raise ValueError(
        f"unknown matrix target {name!r}; known: {', '.join(sorted(MATRIX_TARGETS))}"
    )


def _target_sweep(state_dir: Path) -> dict:
    """A 2-worker sweep through the result cache's crash points."""
    from repro.runner.sweep import Sweep, run_sweep

    sweep = Sweep(
        name="chaos-matrix-sweep",
        fn=matrix_point,
        grid=tuple({"i": i} for i in range(8)),
        base_seed=20260807,
    )
    result = run_sweep(sweep, jobs=2, cache_dir=state_dir / "cache")
    return {"values": [p.value for p in result.points]}


def _target_fleet(state_dir: Path) -> dict:
    """A sharded fleet: cache crash points plus the reduction one.

    ``mean`` is deliberately absent from the output: the digest's
    running ``total`` accumulates in shard *completion* order, so its
    last float bits are scheduling-dependent -- everything printed here
    is completion-order-invariant (integer counts, max, and quantiles
    over the index-ordered exact vector).
    """
    from repro.fleet import FleetPlan, run_fleet

    plan = FleetPlan(
        n_devices=40, days=30, capacity_gb=64.0, seed=7, shard_size=10, chunk=10
    )
    fleet = run_fleet(plan, jobs=2, cache_dir=state_dir / "cache")
    summary = fleet.summary()
    keys = (
        "devices", "requested_devices", "missing_devices", "shards",
        "failed_shards", "complete", "exact", "median", "p90", "p99",
        "max", "worn_out_fraction",
    )
    return {k: summary[k] for k in keys}


def _target_journal(state_dir: Path) -> dict:
    """Drive three jobs through the journal's full state walk.

    Written to *converge*: records already journaled by a crashed run
    are recovered and re-walked to the same terminal state, so whatever
    instant a save died at, the final journal picture is identical.
    Timestamps and attempt counts are excluded from the output -- they
    legitimately differ between an uninterrupted run and a resumed one.
    """
    from repro.serve.jobs import JobRecord, JobSpec, JobStore

    store = JobStore(state_dir / "jobs")
    store.recover()
    out = []
    for index in range(3):
        spec = JobSpec(
            client="chaos-matrix",
            kind="sweep",
            params={"fn": "lifetime", "grid": [{"index": index}], "base_seed": index},
        )
        record = store.load(spec.job_id())
        if record is None:
            record = JobRecord.fresh(spec, now=0.0)
        record.state = "running"
        store.save(record)
        record.state = "done"
        record.result = {"points": 1, "checksum": (index * 7919 + 13) % 104729}
        record.error = None
        store.save(record)
        out.append(
            {"job_id": record.job_id, "state": record.state, "result": record.result}
        )
    out.sort(key=lambda item: item["job_id"])
    return {"jobs": out, "corrupt_skipped": store.corrupt_skipped}


def _target_store(state_dir: Path) -> dict:
    """Drive a ColumnStore through append, checkpoint, and compact.

    Written to *converge*: every put is guarded by a presence check, so
    a run resumed over crashed state skips what already landed, and the
    final :meth:`~repro.store.ColumnStore.compact` rewrites the file
    from sorted logical content -- whatever block layout the crash and
    resume history produced, the compacted bytes (and so their SHA-256)
    match the uninterrupted run's exactly.
    """
    import hashlib

    import numpy as np

    from repro.store import ColumnStore

    path = Path(state_dir) / "store" / "target.rcs"
    # small block_bytes: each put flushes its own block, so the
    # block-append crash point fires on the very first key
    store = ColumnStore(path, codec="zlib", block_bytes=256)
    for index in range(6):
        key = f"point-{index:02d}"
        if key not in store:
            lane = np.arange(40, dtype=np.float64) * (index + 1)
            store.put(key, {
                "wear": lane / 100.0,
                "retired": (np.arange(40, dtype=np.int64) * (index + 3)) % 7,
            })
    store.checkpoint()
    report = store.compact()
    listing = {}
    for key in store.keys():
        arrays = store.get(key)
        listing[key] = {
            name: {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
            }
            for name, arr in sorted(arrays.items())
        }
    return {
        "keys": store.keys(),
        "columns": listing,
        "compacted_sha256": hashlib.sha256(path.read_bytes()).hexdigest(),
        "dropped": report["dropped_entries"],
    }


def canonical(payload: dict) -> str:
    """One canonical encoding so stdout comparison is byte-exact."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- the driver (runs the targets as subprocesses) -----------------------------


@dataclass(slots=True)
class MatrixRow:
    """Outcome of one (target, label) cell."""

    target: str
    label: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "label": self.label,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(slots=True)
class MatrixReport:
    """Every cell's outcome; ``ok`` only when the whole matrix held."""

    rows: list[MatrixRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "rows": [row.to_dict() for row in self.rows]}


def _spawn_target(
    name: str, state_dir: Path, *, armed_label: str | None, python: str
) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    env.pop(CRASH_POINT_ENV, None)
    if armed_label is not None:
        env[CRASH_POINT_ENV] = armed_label
    # the subprocess must resolve the same repro tree this driver runs from
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    cmd = [
        python, "-m", "repro.cli", "chaos", "target", name,
        "--state-dir", str(state_dir),
    ]
    with subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        start_new_session=True,  # own process group: stragglers are reapable
    ) as child:
        try:
            stdout, stderr = child.communicate(timeout=_TIMEOUT_S)
        finally:
            try:  # reap any worker the crash orphaned (PDEATHSIG is the main net)
                os.killpg(child.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
    return subprocess.CompletedProcess(cmd, child.returncode, stdout, stderr)


def _stderr_tail(proc: subprocess.CompletedProcess, lines: int = 4) -> str:
    text = proc.stderr.decode("utf-8", errors="replace").strip()
    return " | ".join(text.splitlines()[-lines:])


def run_crash_matrix(
    targets: list[str] | None = None,
    *,
    base_dir: str | Path | None = None,
    python: str = sys.executable,
    on_row=None,
) -> MatrixReport:
    """Run the full matrix; every cell becomes a :class:`MatrixRow`.

    ``on_row`` (callable taking a row) streams progress to a CLI.  The
    driver never raises on a failed cell -- the report carries the
    verdict -- but subprocess timeouts do propagate: a hung target is
    an environment problem, not a durability result.
    """
    chosen = sorted(MATRIX_TARGETS) if targets is None else list(targets)
    for name in chosen:
        if name not in MATRIX_TARGETS:
            raise ValueError(f"unknown matrix target {name!r}")
    base = Path(
        tempfile.mkdtemp(prefix="chaos-matrix-") if base_dir is None else base_dir
    )
    report = MatrixReport()

    def emit(row: MatrixRow) -> None:
        report.rows.append(row)
        if on_row is not None:
            on_row(row)

    for name in chosen:
        baseline = _spawn_target(
            name, base / name / "baseline", armed_label=None, python=python
        )
        if baseline.returncode != 0:
            emit(MatrixRow(
                name, "(baseline)", False,
                f"baseline exited {baseline.returncode}: {_stderr_tail(baseline)}",
            ))
            continue
        reference = baseline.stdout
        for label in MATRIX_TARGETS[name]:
            state_dir = base / name / label.replace(".", "_")
            armed = _spawn_target(
                name, state_dir, armed_label=label, python=python
            )
            if armed.returncode != CRASH_EXIT:
                emit(MatrixRow(
                    name, label, False,
                    f"armed run exited {armed.returncode}, expected "
                    f"{CRASH_EXIT} -- the label never fired: "
                    f"{_stderr_tail(armed)}",
                ))
                continue
            resumed = _spawn_target(
                name, state_dir, armed_label=None, python=python
            )
            if resumed.returncode != 0:
                emit(MatrixRow(
                    name, label, False,
                    f"resumed run exited {resumed.returncode}: "
                    f"{_stderr_tail(resumed)}",
                ))
            elif resumed.stdout != reference:
                emit(MatrixRow(
                    name, label, False,
                    "resumed output differs from baseline: "
                    f"{resumed.stdout!r} != {reference!r}",
                ))
            else:
                emit(MatrixRow(name, label, True, "resume bit-identical"))
    return report
