"""Deterministic parallel sweep runner.

A *sweep* is a named grid of independent experiment points, each a call
of one picklable function ``fn(params, seed)``.  The runner owns three
concerns the ad-hoc benchmark loops used to interleave:

* **parallelism** -- points fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs`` workers);
  ``jobs=1`` runs serially in-process, with bit-identical results,
  because per-point seeds are derived from the point *index* via
  :meth:`numpy.random.SeedSequence.spawn`, never from execution order;
* **caching** -- with a ``cache_dir``, each point's result is persisted
  under a stable hash of (sweep name, code-version tag, params, seed),
  so re-running a sweep only computes changed points;
* **timing** -- every point records its compute wall time, and the
  sweep aggregates into a record that :mod:`repro.runner.metrics` can
  emit as a ``BENCH_runner.json`` perf baseline.

``fn`` must be importable at module scope (workers unpickle it by
reference) and ``params`` must be plain JSON-able data (the cache key
requires it even when caching is off, which keeps sweeps cacheable by
construction).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro import __version__ as _CODE_VERSION

from .cache import ResultCache, stable_key

__all__ = ["Sweep", "PointResult", "SweepResult", "derive_seeds", "run_sweep"]


@dataclass(frozen=True, slots=True)
class Sweep:
    """A named grid of independent ``fn(params, seed)`` points.

    Attributes
    ----------
    name:
        Sweep identity; part of every point's cache key.
    fn:
        Module-level callable executed per point.  Must be picklable so
        worker processes can import it by reference.
    grid:
        One params dict per point (plain JSON-able values only).
    base_seed:
        Root of the per-point seed derivation.
    version_tag:
        Code-version component of the cache key; bump it when the code
        behind ``fn`` changes meaning so stale cached results are not
        reused.  The package version is always included as well.
    """

    name: str
    fn: Callable[[dict, int], Any]
    grid: tuple[dict, ...]
    base_seed: int = 0
    version_tag: str = ""

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep grid must contain at least one point")

    def point_key(self, index: int, seed: int) -> str:
        """Stable cache key for one point."""
        return stable_key(
            {
                "sweep": self.name,
                "code": f"{_CODE_VERSION}|{self.version_tag}",
                "params": self.grid[index],
                "seed": seed,
            }
        )


@dataclass(slots=True)
class PointResult:
    """Outcome of one sweep point."""

    index: int
    params: dict
    seed: int
    value: Any
    #: wall time of the compute that produced ``value`` (the original
    #: compute's time when the point was served from cache)
    wall_s: float
    cached: bool


@dataclass(slots=True)
class SweepResult:
    """All point results of one sweep run, in grid order."""

    name: str
    jobs: int
    total_wall_s: float
    points: list[PointResult] = field(default_factory=list)

    def values(self) -> list[Any]:
        """Point values in grid order."""
        return [p.value for p in self.points]

    @property
    def cached_count(self) -> int:
        """Points served from the on-disk cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def computed_count(self) -> int:
        """Points computed this run."""
        return sum(1 for p in self.points if not p.cached)


def derive_seeds(base_seed: int, n: int) -> list[int]:
    """Per-point seeds from one root seed.

    ``SeedSequence.spawn`` guarantees statistically independent child
    streams, and the derivation depends only on ``(base_seed, index)`` --
    not on worker count or completion order -- which is what makes
    parallel runs bit-identical to serial ones.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _execute_point(fn: Callable[[dict, int], Any], params: dict, seed: int) -> tuple[Any, float]:
    """Run one point, timing the call (runs inside worker processes)."""
    start = time.perf_counter()
    value = fn(params, seed)
    return value, time.perf_counter() - start


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> SweepResult:
    """Run every point of ``sweep`` and return results in grid order.

    Parameters
    ----------
    sweep:
        The sweep definition.
    jobs:
        Worker processes; ``1`` runs serially in-process.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    start = time.perf_counter()
    n = len(sweep.grid)
    seeds = derive_seeds(sweep.base_seed, n)
    # keys are computed even with caching off, so every grid is
    # validated as cache-keyable before any compute starts
    keys = [sweep.point_key(i, seeds[i]) for i in range(n)]
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: dict[int, PointResult] = {}
    pending: list[int] = []
    for i in range(n):
        entry = cache.load(keys[i]) if cache is not None else None
        if entry is not None:
            results[i] = PointResult(
                index=i, params=sweep.grid[i], seed=seeds[i],
                value=entry.value, wall_s=entry.wall_s, cached=True,
            )
        else:
            pending.append(i)

    if jobs == 1 or len(pending) <= 1:
        computed = [_execute_point(sweep.fn, sweep.grid[i], seeds[i]) for i in pending]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as executor:
            futures = [
                executor.submit(_execute_point, sweep.fn, sweep.grid[i], seeds[i])
                for i in pending
            ]
            computed = [f.result() for f in futures]

    for i, (value, wall_s) in zip(pending, computed):
        if cache is not None:
            cache.store(keys[i], value, wall_s)
        results[i] = PointResult(
            index=i, params=sweep.grid[i], seed=seeds[i],
            value=value, wall_s=wall_s, cached=False,
        )

    return SweepResult(
        name=sweep.name,
        jobs=jobs,
        total_wall_s=time.perf_counter() - start,
        points=[results[i] for i in range(n)],
    )
