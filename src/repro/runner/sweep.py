"""Deterministic, fault-tolerant parallel sweep runner.

A *sweep* is a named grid of independent experiment points, each a call
of one picklable function ``fn(params, seed)``.  The runner owns four
concerns the ad-hoc benchmark loops used to interleave:

* **parallelism** -- points fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs`` workers);
  ``jobs=1`` runs serially in-process, with bit-identical results,
  because per-point seeds are derived from the point *index* via
  :meth:`numpy.random.SeedSequence.spawn`, never from execution order;
* **caching** -- with a ``cache_dir``, each point's result is persisted
  under a stable hash of (sweep name, code-version tag, params, seed)
  *as soon as it completes*, so a crashed or aborted sweep resumes from
  its last finished point and a re-run only computes changed points;
* **fault tolerance** -- completions are streamed as they finish; failed
  points are retried with exponential backoff (``retries``), long-running
  points are bounded by a per-point ``timeout_s`` (the hung worker pool
  is killed and rebuilt), a worker process dying mid-point
  (:class:`~concurrent.futures.process.BrokenProcessPool`) is survived by
  rebuilding the pool and re-running the in-flight points in isolation so
  the culprit is attributed precisely, and ``keep_going=True`` turns
  exhausted failures into structured :class:`PointError` records instead
  of aborting the sweep;
* **timing** -- every point records its compute wall time, and the
  sweep aggregates into a record that :mod:`repro.runner.metrics` can
  emit as a ``BENCH_runner.json`` perf baseline;
* **streaming reduction** -- an ``on_point`` hook observes every
  completed point (cache hits included) in the coordinator as it
  resolves, and ``keep_values=False`` drops point values once the hook
  and the cache have seen them, so a reducing caller's memory is bounded
  by one point, not the whole grid (the fleet-of-fleets layer in
  :mod:`repro.fleet` is the canonical consumer).

``fn`` must be importable at module scope (workers unpickle it by
reference) and ``params`` must be plain JSON-able data (the cache key
requires it even when caching is off, which keeps sweeps cacheable by
construction).
"""

from __future__ import annotations

import math
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro import __version__ as _CODE_VERSION
from repro.chaos import crash_point
from repro.obs import get_observer, merge_point_traces, merge_snapshots, observed

from .cache import ResultCache, stable_key

__all__ = [
    "Sweep",
    "PointResult",
    "PointError",
    "SweepTimeoutError",
    "SweepCrashError",
    "SweepCancelled",
    "SweepResult",
    "derive_seeds",
    "full_jitter_backoff",
    "run_sweep",
]

#: Poll interval of the completion-streaming loop (seconds).
_TICK_S = 0.05

#: Ceiling on a single retry backoff delay (seconds).
_MAX_BACKOFF_S = 2.0


class SweepTimeoutError(TimeoutError):
    """A sweep point exceeded its per-point timeout (``keep_going`` off)."""


class SweepCrashError(RuntimeError):
    """A sweep point killed its worker process (``keep_going`` off)."""


class SweepCancelled(RuntimeError):
    """The sweep's ``should_stop`` hook asked for teardown mid-run.

    Raised from the coordinator (or the serial loop) once the request is
    observed; every in-flight worker pool is killed first, so no stray
    point keeps computing after the exception propagates.  Points that
    completed before the cancel are already persisted to the cache --
    re-running the same sweep resumes from them.
    """


def full_jitter_backoff(
    base_s: float, attempt: int, seed: int, cap_s: float = _MAX_BACKOFF_S
) -> float:
    """Deterministic full-jitter retry delay for one point's ``attempt``.

    Classic full jitter -- ``U(0, min(cap, base * 2**(attempt-1)))`` --
    except the "random" draw is derived from ``(seed, attempt)`` via
    ``SeedSequence``, so the schedule is reproducible run-to-run while
    still *differing across points*: a grid whose points all fail at
    once (a dead shared dependency, a full disk) fans its retries out
    over the window instead of stampeding the pool in synchronized
    waves.  ``attempt`` is 1-based (the delay before retry #1).
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    ceiling = min(base_s * (2 ** (attempt - 1)), cap_s)
    # one uint64 draw -> uniform in [0, 1); entropy mixes seed and attempt
    state = np.random.SeedSequence(entropy=seed, spawn_key=(attempt,))
    unit = state.generate_state(1, dtype=np.uint64)[0] / 2.0**64
    return ceiling * float(unit)


@dataclass(frozen=True, slots=True)
class Sweep:
    """A named grid of independent ``fn(params, seed)`` points.

    Attributes
    ----------
    name:
        Sweep identity; part of every point's cache key.
    fn:
        Module-level callable executed per point.  Must be picklable so
        worker processes can import it by reference.
    grid:
        One params dict per point (plain JSON-able values only).
    base_seed:
        Root of the per-point seed derivation.
    version_tag:
        Code-version component of the cache key; bump it when the code
        behind ``fn`` changes meaning so stale cached results are not
        reused.  The package version is always included as well.
    """

    name: str
    fn: Callable[[dict, int], Any]
    grid: tuple[dict, ...]
    base_seed: int = 0
    version_tag: str = ""

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep grid must contain at least one point")

    def point_key(self, index: int, seed: int) -> str:
        """Stable cache key for one point."""
        return stable_key(
            {
                "sweep": self.name,
                "code": f"{_CODE_VERSION}|{self.version_tag}",
                "params": self.grid[index],
                "seed": seed,
            }
        )


@dataclass(slots=True)
class PointResult:
    """Outcome of one successful sweep point."""

    index: int
    params: dict
    seed: int
    value: Any
    #: wall time of the compute that produced ``value`` (the original
    #: compute's time when the point was served from cache)
    wall_s: float
    cached: bool
    #: attempts the point took to succeed (1 = first try; cached points
    #: report 1 -- the original attempts are not persisted)
    attempts: int = 1
    #: worker-side observability payload ({"metrics": snapshot,
    #: "events": [...]}) when the sweep ran with ``collect_obs``;
    #: None otherwise and for cache hits
    obs: dict | None = None


@dataclass(slots=True)
class PointError:
    """Structured record of one point that exhausted its retry budget.

    ``kind`` distinguishes how the point failed:

    * ``"error"``   -- ``fn`` raised an exception;
    * ``"timeout"`` -- the point exceeded ``timeout_s`` and its worker
      pool was killed;
    * ``"crash"``   -- the point's worker process died (segfault,
      ``os._exit``, OOM-kill ...), observed as a broken process pool.
    """

    index: int
    params: dict
    seed: int
    kind: str
    message: str
    attempts: int


@dataclass(slots=True)
class SweepResult:
    """All point results of one sweep run.

    ``points`` holds the successful points in grid order; under
    ``keep_going`` the points that exhausted their retries appear in
    ``errors`` instead (also grid order).  Without ``keep_going`` a
    failure raises, so ``errors`` is always empty there.
    """

    name: str
    jobs: int
    total_wall_s: float
    points: list[PointResult] = field(default_factory=list)
    errors: list[PointError] = field(default_factory=list)
    #: worker pools rebuilt after a crash or timeout kill
    pool_rebuilds: int = 0
    #: the cache's degradation/durability report (empty when uncached);
    #: see :meth:`repro.runner.cache.ResultCache.storage_report`
    storage: dict = field(default_factory=dict)

    def values(self) -> list[Any]:
        """Successful point values in grid order."""
        return [p.value for p in self.points]

    @property
    def cached_count(self) -> int:
        """Points served from the on-disk cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def computed_count(self) -> int:
        """Points computed this run."""
        return sum(1 for p in self.points if not p.cached)

    @property
    def failed_count(self) -> int:
        """Points that exhausted their retries (``keep_going`` runs)."""
        return len(self.errors)

    @property
    def retry_attempts(self) -> int:
        """Failed attempts absorbed by retries across all points."""
        return (
            sum(p.attempts - 1 for p in self.points)
            + sum(e.attempts - 1 for e in self.errors)
        )

    @property
    def ok(self) -> bool:
        """Whether every grid point produced a value."""
        return not self.errors

    def merged_metrics(self) -> dict | None:
        """Associative merge of per-point metric snapshots, in grid order.

        Grid order makes the merge independent of completion order, so
        serial and parallel runs of the same sweep produce the identical
        merged snapshot (up to span wall times; see
        :func:`repro.obs.strip_timings`).  None when no point carried an
        observability payload.
        """
        snapshots = [p.obs["metrics"] for p in self.points if p.obs is not None]
        if not snapshots:
            return None
        return merge_snapshots(*snapshots)

    def merged_trace(self) -> list[dict]:
        """Seed-ordered merged event trace across all observed points."""
        return merge_point_traces(
            {p.index: p.obs["events"] for p in self.points if p.obs is not None}
        )


def derive_seeds(base_seed: int, n: int) -> list[int]:
    """Per-point seeds from one root seed.

    ``SeedSequence.spawn`` guarantees statistically independent child
    streams, and the derivation depends only on ``(base_seed, index)`` --
    not on worker count or completion order -- which is what makes
    parallel runs bit-identical to serial ones.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _worker_init() -> None:
    """Reset inherited signal plumbing in freshly forked workers.

    When the coordinator is embedded in an asyncio host (the serve
    gateway), the host's signal handlers write into a wakeup pipe that
    fork-started workers share with the parent.  Pool teardown SIGTERMs
    workers after every sweep; without this reset the inherited handler
    would echo that SIGTERM down the shared pipe and the *parent* event
    loop would see a phantom shutdown request.
    """
    try:
        signal.set_wakeup_fd(-1)
    except ValueError:  # pragma: no cover - non-main thread after fork
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # Ctrl-C teardown is the coordinator's job; workers must not race it
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _die_with_parent()


def _die_with_parent() -> None:  # pragma: no cover - exercised via subprocess
    """Tie this worker's life to its coordinator (Linux PDEATHSIG).

    A coordinator that dies without pool teardown -- SIGKILL, power cut,
    an armed :func:`repro.chaos.crash_point` -- cannot close the call
    queue under its workers: every worker also inherits a write end of
    the queue's pipe, so the read side never sees EOF and each worker
    blocks in ``get()`` forever, reparented to init.  ``PR_SET_PDEATHSIG``
    makes the kernel deliver SIGTERM to the worker the instant its
    parent exits, so crashed coordinators never leak a worker fleet.
    Best-effort: silently a no-op off Linux or without libc.
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGTERM, 0, 0, 0)
        # the parent may have died between our fork and the prctl; the
        # kernel only signals on *future* deaths, so check once
        if os.getppid() == 1:
            os._exit(0)
    except OSError:
        pass


def _execute_point(
    fn: Callable[[dict, int], Any], params: dict, seed: int, collect_obs: bool = False
) -> tuple[Any, float, dict | None]:
    """Run one point, timing the call (runs inside worker processes).

    With ``collect_obs`` a fresh observer is installed for the call and
    its snapshot/events come back as plain data, so the coordinator can
    merge per-point metrics deterministically whatever process ran them.
    """
    start = time.perf_counter()
    if not collect_obs:
        value = fn(params, seed)
        return value, time.perf_counter() - start, None
    with observed() as obs:
        value = fn(params, seed)
    payload = {"metrics": obs.registry.snapshot(), "events": obs.events}
    return value, time.perf_counter() - start, payload


def _finish_point(
    point: PointResult,
    on_point: Callable[[PointResult], None] | None,
    keep_values: bool,
) -> PointResult:
    """Stream one resolved point through the reduction hook.

    The hook runs in the coordinator process, in completion order for
    computed points (cache hits are delivered first, in grid order).
    With ``keep_values=False`` the value is released right after the
    hook -- by then it is already persisted to the cache -- so a
    reducing sweep holds at most one point's value at a time.
    """
    if on_point is not None:
        on_point(point)
    if not keep_values:
        point.value = None
    return point


@dataclass(slots=True)
class _PointState:
    """Coordinator-side bookkeeping for one pending point."""

    index: int
    attempts: int = 0
    #: monotonic time before which the point must not be resubmitted
    ready_at: float = 0.0
    #: monotonic deadline of the in-flight attempt (inf = no timeout)
    deadline: float = math.inf


class _Coordinator:
    """Streams completions from a worker pool, surviving faults.

    One instance drives the parallel portion of one :func:`run_sweep`
    call.  The loop invariants:

    * a point is in exactly one place: the ready queue, in flight, the
      results dict, or the errors dict;
    * after any pool breakage the coordinator switches to *isolation
      mode* (one in-flight point at a time) so the next crash attributes
      to exactly one point -- the first breakage charges nobody, because
      with several points in flight the culprit is unknowable;
    * successful points are persisted to the cache immediately, before
      any further scheduling decision, so no completed work can be lost.
    """

    def __init__(
        self,
        sweep: Sweep,
        seeds: list[int],
        keys: list[str],
        cache: ResultCache | None,
        jobs: int,
        retries: int,
        retry_backoff_s: float,
        timeout_s: float | None,
        keep_going: bool,
        collect_obs: bool = False,
        on_point: Callable[[PointResult], None] | None = None,
        keep_values: bool = True,
        should_stop: Callable[[], bool] | None = None,
    ) -> None:
        self.sweep = sweep
        self.seeds = seeds
        self.keys = keys
        self.cache = cache
        self.jobs = jobs
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.timeout_s = timeout_s
        self.keep_going = keep_going
        self.collect_obs = collect_obs
        self.on_point = on_point
        self.keep_values = keep_values
        self.should_stop = should_stop
        self.results: dict[int, PointResult] = {}
        self.errors: dict[int, PointError] = {}
        self.pool_rebuilds = 0
        self._queue: deque[int] = deque()
        self._states: dict[int, _PointState] = {}
        self._inflight: dict[Future, _PointState] = {}
        self._executor: ProcessPoolExecutor | None = None
        self._isolate = False

    # -- public ----------------------------------------------------------------

    def run(self, pending: Sequence[int]) -> None:
        """Execute all pending points; fills ``results`` and ``errors``."""
        self._states = {i: _PointState(i) for i in pending}
        self._queue = deque(pending)
        try:
            while self._queue or self._inflight:
                self._check_cancelled()
                self._submit_ready()
                self._pump()
        finally:
            self._teardown()

    def _check_cancelled(self) -> None:
        """Honour a pending cancel request before any more scheduling.

        Raising here reaches ``run``'s finally clause, which terminates
        every worker process -- in-flight points are torn down, not
        merely abandoned.  Completed points were persisted to the cache
        the moment they finished, so nothing done is lost.
        """
        if self.should_stop is not None and self.should_stop():
            raise SweepCancelled(
                f"sweep '{self.sweep.name}' cancelled with "
                f"{len(self._inflight)} point(s) in flight and "
                f"{len(self._queue)} queued"
            )

    # -- scheduling ------------------------------------------------------------

    def _submit_ready(self) -> None:
        if not self._queue:
            return
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
        now = time.monotonic()
        capacity = 1 if self._isolate else self.jobs
        # one pass over the queue: submit what is ready, keep the rest
        for _ in range(len(self._queue)):
            if len(self._inflight) >= capacity:
                break
            index = self._queue.popleft()
            state = self._states[index]
            if state.ready_at > now:
                self._queue.append(index)  # in backoff; revisit next tick
                continue
            try:
                future = self._executor.submit(
                    _execute_point, self.sweep.fn, self.sweep.grid[index],
                    self.seeds[index], self.collect_obs,
                )
            except (BrokenProcessPool, RuntimeError):
                # pool died between completions; put the point back and
                # let the crash path rebuild
                self._queue.appendleft(index)
                self._handle_pool_break(culprit=None)
                return
            state.deadline = (
                now + self.timeout_s if self.timeout_s is not None else math.inf
            )
            self._inflight[future] = state

    def _pump(self) -> None:
        """Wait for progress: completions, timeouts, or backoff expiry."""
        if not self._inflight:
            if self._queue:
                now = time.monotonic()
                soonest = min(self._states[i].ready_at for i in self._queue)
                if soonest > now:
                    # with a cancel hook installed, sleep in short ticks
                    # so a cancel lands within ~_TICK_S, not a backoff
                    cap = _TICK_S if self.should_stop is not None else _MAX_BACKOFF_S
                    time.sleep(min(soonest - now, cap))
            return
        done, _ = wait(set(self._inflight), timeout=_TICK_S,
                       return_when=FIRST_COMPLETED)
        for future in done:
            state = self._inflight.pop(future, None)
            if state is None:
                continue
            exc = future.exception()
            if exc is None:
                value, wall_s, obs_payload = future.result()
                self._record_success(state, value, wall_s, obs_payload)
            elif isinstance(exc, BrokenProcessPool):
                self._handle_pool_break(culprit=state)
                return  # every other in-flight future is broken too
            else:
                self._record_failure(state, "error", exc)
        self._check_timeouts()

    # -- outcome recording -------------------------------------------------------

    def _record_success(
        self, state: _PointState, value: Any, wall_s: float,
        obs_payload: dict | None = None,
    ) -> None:
        index = state.index
        # persist first: a crash after this line loses nothing
        if self.cache is not None:
            self.cache.store(self.keys[index], value, wall_s)
        crash_point("sweep.point.post_persist")
        self.results[index] = _finish_point(
            PointResult(
                index=index, params=self.sweep.grid[index],
                seed=self.seeds[index], value=value, wall_s=wall_s,
                cached=False, attempts=state.attempts + 1, obs=obs_payload,
            ),
            self.on_point, self.keep_values,
        )

    def _record_failure(
        self, state: _PointState, kind: str, exc: BaseException | None,
        message: str | None = None,
    ) -> None:
        """Charge one failed attempt; requeue, record, or abort."""
        state.attempts += 1
        if state.attempts <= self.retries:
            backoff = full_jitter_backoff(
                self.retry_backoff_s, state.attempts, self.seeds[state.index]
            )
            state.ready_at = time.monotonic() + backoff
            self._queue.append(state.index)
            return
        error = PointError(
            index=state.index,
            params=self.sweep.grid[state.index],
            seed=self.seeds[state.index],
            kind=kind,
            message=message if message is not None else repr(exc),
            attempts=state.attempts,
        )
        if self.keep_going:
            self.errors[state.index] = error
            return
        if kind == "error" and exc is not None:
            raise exc  # backwards-compatible: surface fn's own exception
        if kind == "timeout":
            raise SweepTimeoutError(
                f"sweep '{self.sweep.name}' point {state.index} "
                f"({error.message}) after {state.attempts} attempt(s)"
            )
        raise SweepCrashError(
            f"sweep '{self.sweep.name}' point {state.index} "
            f"({error.message}) after {state.attempts} attempt(s)"
        )

    # -- fault paths ---------------------------------------------------------------

    def _handle_pool_break(self, culprit: _PointState | None) -> None:
        """The worker pool died under some in-flight point(s).

        In isolation mode exactly one point was in flight, so the crash
        is attributed and charged.  Otherwise the culprit is ambiguous:
        every in-flight point is requeued uncharged and the coordinator
        enters isolation mode, where any repeat offender is caught.
        """
        survivors = list(self._inflight.values())
        self._inflight.clear()
        self._teardown()
        self.pool_rebuilds += 1
        message = "worker process died (broken process pool)"
        if self._isolate and culprit is not None and not survivors:
            self._record_failure(culprit, "crash", None, message=message)
        else:
            for state in ([culprit] if culprit is not None else []) + survivors:
                state.deadline = math.inf
                self._queue.appendleft(state.index)
        self._isolate = True

    def _check_timeouts(self) -> None:
        if self.timeout_s is None or not self._inflight:
            return
        now = time.monotonic()
        expired = [f for f, s in self._inflight.items() if now >= s.deadline]
        if not expired:
            return
        # a running task cannot be cancelled: kill the whole pool, then
        # requeue the innocent in-flight points uncharged
        for future in expired:
            state = self._inflight.pop(future)
            self._record_failure(
                state, "timeout", None,
                message=f"exceeded per-point timeout of {self.timeout_s}s",
            )
        for state in self._inflight.values():
            state.deadline = math.inf
            self._queue.appendleft(state.index)
        self._inflight.clear()
        self._teardown()
        self.pool_rebuilds += 1

    def _teardown(self) -> None:
        if self._executor is None:
            return
        # terminate first: shutdown() alone would wait on a hung worker
        for process in list(getattr(self._executor, "_processes", {}).values()):
            process.terminate()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None


def _run_serial(
    sweep: Sweep,
    seeds: list[int],
    keys: list[str],
    cache: ResultCache | None,
    pending: Sequence[int],
    retries: int,
    retry_backoff_s: float,
    keep_going: bool,
    results: dict[int, PointResult],
    errors: dict[int, PointError],
    collect_obs: bool = False,
    on_point: Callable[[PointResult], None] | None = None,
    keep_values: bool = True,
    should_stop: Callable[[], bool] | None = None,
) -> None:
    """In-process execution (``jobs=1``): retries, ``keep_going``, and
    cancellation (between points and between retry attempts) apply;
    per-point timeouts and crash survival need worker processes, so
    they do not (a hard crash of ``fn`` takes the caller with it)."""
    for index in pending:
        attempts = 0
        while True:
            if should_stop is not None and should_stop():
                raise SweepCancelled(
                    f"sweep '{sweep.name}' cancelled at point {index}"
                )
            attempts += 1
            try:
                value, wall_s, obs_payload = _execute_point(
                    sweep.fn, sweep.grid[index], seeds[index], collect_obs
                )
            except Exception as exc:
                if attempts <= retries:
                    time.sleep(
                        full_jitter_backoff(retry_backoff_s, attempts, seeds[index])
                    )
                    continue
                if keep_going:
                    errors[index] = PointError(
                        index=index, params=sweep.grid[index], seed=seeds[index],
                        kind="error", message=repr(exc), attempts=attempts,
                    )
                    break
                raise
            else:
                if cache is not None:
                    cache.store(keys[index], value, wall_s)
                crash_point("sweep.point.post_persist")
                results[index] = _finish_point(
                    PointResult(
                        index=index, params=sweep.grid[index], seed=seeds[index],
                        value=value, wall_s=wall_s, cached=False,
                        attempts=attempts, obs=obs_payload,
                    ),
                    on_point, keep_values,
                )
                break


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
    timeout_s: float | None = None,
    keep_going: bool = False,
    collect_obs: bool = False,
    on_point: Callable[[PointResult], None] | None = None,
    keep_values: bool = True,
    should_stop: Callable[[], bool] | None = None,
    durability: str = "rename",
) -> SweepResult:
    """Run every point of ``sweep`` and return results in grid order.

    Parameters
    ----------
    sweep:
        The sweep definition.
    jobs:
        Worker processes; ``1`` runs serially in-process.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.  Completed points are persisted as they finish, so an
        interrupted sweep resumes from its last completed point.
    retries:
        Failed attempts a point may retry before it counts as failed.
    retry_backoff_s:
        Base of the exponential backoff between retries.
    timeout_s:
        Per-point wall-clock bound (``jobs > 1`` only): a point running
        longer has its worker pool killed and counts as a failed attempt.
    keep_going:
        When True, points that exhaust their retries become structured
        :class:`PointError` records on the result instead of aborting
        the sweep; completed points are always kept either way.
    collect_obs:
        Capture each computed point's metrics snapshot and event trace
        (an observer is installed around ``fn`` in whichever process
        runs it) onto :attr:`PointResult.obs`.  Cache hits carry no
        payload -- only freshly computed points are observed.
    on_point:
        Streaming reduction hook, called in the coordinator process for
        every resolved point: cache hits first (grid order), then
        computed points as they complete (completion order -- pair it
        with an associative, commutative reducer for deterministic
        results).  An exception from the hook aborts the sweep.
    keep_values:
        When False, each point's ``value`` is dropped right after the
        cache store and the ``on_point`` hook have seen it, bounding the
        sweep's memory by one point instead of the whole grid.  The
        returned :class:`SweepResult` then carries ``value=None`` points
        (timings, params, and obs payloads are kept).
    should_stop:
        Cooperative cancellation hook, polled by the scheduling loop
        (every tick in parallel runs; between points and retry attempts
        serially).  Returning True raises :class:`SweepCancelled` after
        killing every in-flight worker, so cancellation genuinely tears
        down running shards; already-completed points stay in the cache
        and a re-run of the same sweep resumes from them.
    durability:
        Cache write policy (``none``/``rename``/``fsync``); see
        :data:`repro.runner.cache.DURABILITY_LEVELS`.  The default
        ``rename`` keeps benchmarks honest (no fsync stalls) while
        readers still never observe a torn record.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    start = time.perf_counter()
    obs = get_observer()
    n = len(sweep.grid)
    seeds = derive_seeds(sweep.base_seed, n)
    # keys are computed even with caching off, so every grid is
    # validated as cache-keyable before any compute starts
    keys = [sweep.point_key(i, seeds[i]) for i in range(n)]
    # the coordinator sweeps orphaned *.tmp files exactly once per run;
    # every other cache open (workers, reducers) is rescan-free
    cache = (
        ResultCache(cache_dir, scan_stale_tmp=True, durability=durability)
        if cache_dir is not None
        else None
    )

    results: dict[int, PointResult] = {}
    errors: dict[int, PointError] = {}
    pending: list[int] = []
    for i in range(n):
        entry = cache.load(keys[i]) if cache is not None else None
        if entry is not None:
            results[i] = _finish_point(
                PointResult(
                    index=i, params=sweep.grid[i], seed=seeds[i],
                    value=entry.value, wall_s=entry.wall_s, cached=True,
                ),
                on_point, keep_values,
            )
        else:
            pending.append(i)
    obs.count("sweep.cache_hits", len(results))
    obs.count("sweep.cache_misses", len(pending))

    pool_rebuilds = 0
    with obs.span("sweep.run"):
        try:
            if jobs == 1 or not pending:
                _run_serial(sweep, seeds, keys, cache, pending, retries,
                            retry_backoff_s, keep_going, results, errors,
                            collect_obs, on_point, keep_values, should_stop)
            else:
                coordinator = _Coordinator(
                    sweep, seeds, keys, cache, min(jobs, len(pending)),
                    retries, retry_backoff_s, timeout_s, keep_going,
                    collect_obs, on_point, keep_values, should_stop,
                )
                coordinator.run(pending)
                results.update(coordinator.results)
                errors.update(coordinator.errors)
                pool_rebuilds = coordinator.pool_rebuilds
        finally:
            # flush + index the column store even on cancel/abort: the
            # points persisted so far stay O(1) to reopen on resume
            if cache is not None:
                cache.finalize()

    return SweepResult(
        name=sweep.name,
        jobs=jobs,
        total_wall_s=time.perf_counter() - start,
        points=[results[i] for i in range(n) if i in results],
        errors=[errors[i] for i in sorted(errors)],
        pool_rebuilds=pool_rebuilds,
        storage=cache.storage_report() if cache is not None else {},
    )
