"""Deterministic parallel experiment runner.

The sweep harness behind the ablation benchmarks and the CLI: fan a grid
of independent ``fn(params, seed)`` points out over worker processes,
cache point results on disk keyed by a stable config hash, and record
per-point wall times for the ``BENCH_runner.json`` perf baseline.

* :mod:`repro.runner.sweep`   -- Sweep/SweepResult API and the executor
* :mod:`repro.runner.cache`   -- stable hashing + framed-record store
* :mod:`repro.runner.record`  -- checksummed record framing (CRC32C)
* :mod:`repro.runner.metrics` -- BENCH_runner.json emission
* :mod:`repro.runner.points`  -- picklable experiment point functions
"""

from .cache import DURABILITY_LEVELS, CacheEntry, ResultCache, stable_key
from .metrics import BENCH_SCHEMA, bench_record, write_bench_json
from .record import RecordError, crc32c, frame_record, unframe_record
from .sweep import (
    PointError,
    PointResult,
    Sweep,
    SweepCancelled,
    SweepCrashError,
    SweepResult,
    SweepTimeoutError,
    derive_seeds,
    full_jitter_backoff,
    run_sweep,
)

__all__ = [
    "CacheEntry",
    "DURABILITY_LEVELS",
    "RecordError",
    "ResultCache",
    "crc32c",
    "frame_record",
    "stable_key",
    "unframe_record",
    "BENCH_SCHEMA",
    "bench_record",
    "write_bench_json",
    "PointError",
    "PointResult",
    "Sweep",
    "SweepCancelled",
    "SweepCrashError",
    "SweepResult",
    "SweepTimeoutError",
    "derive_seeds",
    "full_jitter_backoff",
    "run_sweep",
]
