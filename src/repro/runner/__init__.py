"""Deterministic parallel experiment runner.

The sweep harness behind the ablation benchmarks and the CLI: fan a grid
of independent ``fn(params, seed)`` points out over worker processes,
cache point results on disk keyed by a stable config hash, and record
per-point wall times for the ``BENCH_runner.json`` perf baseline.

* :mod:`repro.runner.sweep`   -- Sweep/SweepResult API and the executor
* :mod:`repro.runner.cache`   -- stable hashing + pickle-per-key store
* :mod:`repro.runner.metrics` -- BENCH_runner.json emission
* :mod:`repro.runner.points`  -- picklable experiment point functions
"""

from .cache import CacheEntry, ResultCache, stable_key
from .metrics import BENCH_SCHEMA, bench_record, write_bench_json
from .sweep import (
    PointError,
    PointResult,
    Sweep,
    SweepCancelled,
    SweepCrashError,
    SweepResult,
    SweepTimeoutError,
    derive_seeds,
    full_jitter_backoff,
    run_sweep,
)

__all__ = [
    "CacheEntry",
    "ResultCache",
    "stable_key",
    "BENCH_SCHEMA",
    "bench_record",
    "write_bench_json",
    "PointError",
    "PointResult",
    "Sweep",
    "SweepCancelled",
    "SweepCrashError",
    "SweepResult",
    "SweepTimeoutError",
    "derive_seeds",
    "full_jitter_backoff",
    "run_sweep",
]
