"""On-disk result cache for sweep points: checksummed, degrade-don't-die.

Each sweep point is identified by a *stable key*: the SHA-256 of a
canonical JSON encoding of everything that determines its result -- the
sweep name, a code-version tag, the point's parameters, and its derived
seed.  Results are persisted one-file-per-key as **framed records**
(magic + length + CRC32C + pickled payload, see
:mod:`repro.runner.record`), written atomically under the configured
durability policy, so a re-run of a sweep only computes points whose
key changed.

Three hardening contracts replace the old "a torn file is a miss"
hand-wave:

* **corruption is detected and quarantined** -- a record that fails
  frame validation (torn tail, bit rot, truncation, wrong format) or
  unpickles into the wrong payload shape is moved to ``corrupt/``
  beside the store, counted, and warned about once; it is *never*
  silently mis-loaded, and it cannot be re-detected on every restart
  because the move happens exactly once;
* **an explicit durability ladder** -- ``none`` writes in place (fast,
  crash-torn files possible, the CRC catches them), ``rename`` (the
  default) writes tmp-then-``os.replace`` so readers never see a torn
  record, ``fsync`` additionally syncs the file *and its parent
  directory* before/after the rename so a power cut cannot lose an
  acknowledged store;
* **ENOSPC degrades, it does not kill** -- the first full-disk error
  flips the cache into read-through *passthrough* mode: cached hits are
  still served, new stores are dropped (counted), and the sweep keeps
  running; other I/O errors drop the single store and count it.

Values that carry numpy arrays (population-scale batch observables) do
not pickle whole: the arrays are lifted out into a shared append-only
:class:`repro.store.ColumnStore` file (``columns.rcs``, one per cache,
block-compressed and footer-indexed), and the framed pickle keeps only
a skeleton naming its columns.  Scalar values are byte-for-byte
unaffected.  The store degrades exactly like the pickle path: a store
that cannot be opened or appended falls back to whole-value pickles, a
skeleton whose columns are missing or damaged quarantines as a miss
and recomputes, and reads are *bit-identical or absent* -- never
approximate.  The coordinator calls :meth:`ResultCache.finalize` once
per sweep to flush and index the store; everything stays recoverable
without it.

All file I/O routes through the :mod:`repro.chaos` filesystem layer, so
the chaos suite can fire ENOSPC/EIO/torn-write/failed-rename at seeded
points; with chaos disabled the layer is a stateless pass-through.
Leftover ``*.tmp`` files from a writer that died before its rename are
swept by :meth:`ResultCache.remove_stale_tmp` once they are old enough
that no live writer can still own them; opening a cache does **not**
scan the directory -- a worker-side open stays O(1).
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import math
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.chaos import crash_point, get_fs
from repro.obs import get_observer

from .record import RecordError, frame_record, unframe_record

__all__ = ["CacheEntry", "DURABILITY_LEVELS", "ResultCache", "stable_key"]

_LOG = logging.getLogger("repro.runner.cache")

#: the durability ladder, weakest to strongest
DURABILITY_LEVELS = ("none", "rename", "fsync")

#: Exceptions that mean "this payload cannot serve a hit".  Beyond
#: torn-pickle errors (UnpicklingError/EOFError), a *stale* pickle whose
#: class layout changed since it was written surfaces as AttributeError
#: (attribute/class gone), ImportError/ModuleNotFoundError (module
#: moved), TypeError (constructor signature changed), or IndexError
#: (reduce payload reshaped) -- all of them quarantine as stale.
_MISS_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    KeyError,
    AttributeError,
    ImportError,
    TypeError,
    IndexError,
)


def _jsonable(obj: Any) -> Any:
    """Coerce ``obj`` into a canonical JSON-encodable form.

    Tuples become lists, dict keys must be strings, and anything that is
    not a plain scalar/collection is rejected -- a cache key must never
    depend on ``repr`` of an arbitrary object.

    Floats must be canonical: ``json.dumps`` emits ``NaN``/``Infinity``
    (not RFC JSON, and ``NaN != NaN`` would split keys for params that
    compare unequal to themselves) and preserves the sign of ``-0.0``
    (two params that compare equal would hash to different keys).  So
    non-finite floats are rejected with a clear error and negative zero
    canonicalizes to ``0.0``.
    """
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"cache-key floats must be finite, got {obj!r} "
                "(NaN/inf would split or collide cache keys)"
            )
        return 0.0 if obj == 0.0 else obj
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"cache-key dict keys must be str, got {key!r}")
            out[key] = _jsonable(value)
        return out
    raise TypeError(f"value {obj!r} of type {type(obj).__name__} is not cache-keyable")


def stable_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    canonical = json.dumps(
        _jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached point result plus the wall time of its original compute."""

    value: Any
    wall_s: float


class ResultCache:
    """Framed-record-per-key store under one directory.

    Construction is deliberately rescan-free: it creates the directory
    and nothing else.  Stale-``*.tmp`` cleanup is a separate, explicit
    operation (:meth:`remove_stale_tmp`) because globbing the store is
    O(cached points) -- at million-point scale one sweep per *run* is
    fine, one sweep per *open* is quadratic.  Pass ``scan_stale_tmp=True``
    to opt a construction into the sweep (what the sweep coordinator
    does, once per :func:`~repro.runner.sweep.run_sweep` call).

    ``durability`` picks a rung of :data:`DURABILITY_LEVELS`; ``fs``
    overrides the process-global :func:`repro.chaos.get_fs` layer (the
    chaos suite injects faults through it).
    """

    #: age (seconds) past which an orphaned ``*.tmp`` file is fair game
    STALE_TMP_AGE_S = 3600.0

    #: subdirectory quarantined (corrupt/invalid) records are moved to
    CORRUPT_DIR = "corrupt"

    #: the shared column-store file for array payloads, one per cache
    STORE_FILE = "columns.rcs"

    def __init__(
        self,
        root: str | Path,
        *,
        scan_stale_tmp: bool = False,
        durability: str = "rename",
        store_codec: str = "zlib",
        fs=None,
    ) -> None:
        if durability not in DURABILITY_LEVELS:
            raise ValueError(
                f"durability must be one of {DURABILITY_LEVELS}, got {durability!r}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.store_codec = store_codec
        self.fs = fs if fs is not None else get_fs()
        #: latched by the first ENOSPC: serve hits, drop new stores
        self.passthrough = False
        #: stores dropped (passthrough mode or individual I/O errors)
        self.stores_dropped = 0
        #: non-ENOSPC I/O errors that each dropped one store
        self.store_errors = 0
        #: records moved to ``corrupt/`` after failing validation
        self.corrupt_quarantined = 0
        #: well-formed pickles whose payload shape was wrong
        self.invalid_payloads = 0
        #: skeletons whose store columns were missing/damaged (recomputed)
        self.column_misses = 0
        #: column appends that failed and fell back to whole pickles
        self.column_errors = 0
        #: the lazily-opened ColumnStore (None until an array value
        #: arrives or a skeleton is loaded); False = open failed, the
        #: cache latched back to whole-value pickles
        self._store = None
        self._store_failed = False
        if scan_stale_tmp:
            self.remove_stale_tmp()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- the column store backend ----------------------------------------------

    def _get_store(self, create: bool):
        """The cache's ColumnStore, opened (or created) lazily.

        Returns None when there is nothing to open (``create=False`` and
        no file) or when opening failed -- the latter latches
        ``_store_failed`` so the cache degrades to whole-value pickles
        instead of retrying a broken store on every point.
        """
        if self._store is not None:
            return self._store
        if self._store_failed:
            return None
        path = self.root / self.STORE_FILE
        if not create and not path.exists():
            return None
        from repro.store import ColumnStore, StoreError

        try:
            # block_bytes=1: every put flushes its own block, so a
            # point's columns are CRC-framed on disk *before* its
            # skeleton pickle becomes visible -- the sweep's
            # persist-before-proceed invariant holds at the store too.
            # compact() repacks into properly sized blocks afterwards.
            self._store = ColumnStore(
                path, mode="append", codec=self.store_codec,
                block_bytes=1, durability=self.durability, fs=self.fs,
            )
        except (OSError, StoreError) as err:
            self._store_failed = True
            get_observer().count("cache.store_open_failed")
            _LOG.warning(
                "result cache %s: column store unavailable (%s); "
                "falling back to whole-value pickles", self.root, err,
            )
            if isinstance(err, OSError):
                self._degrade(err)
            return None
        return self._store

    def finalize(self) -> None:
        """Flush and index the column store (no-op without one).

        The sweep coordinator calls this once per run; a cache that
        never sees it stays fully recoverable (the store rebuilds its
        index from block TOCs), finalizing just makes reopening O(1).
        """
        if self._store is None:
            return
        try:
            self._store.checkpoint()
        except OSError as err:
            self._degrade(err)

    # -- reads -----------------------------------------------------------------

    def load(self, key: str) -> CacheEntry | None:
        """Return the cached entry for ``key``, or None on miss.

        Damage is *detected*, never mis-loaded: a record failing frame
        validation (CRC/magic/length) or carrying the wrong payload
        shape is quarantined to ``corrupt/`` and answers as a miss.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            get_observer().count("cache.read_errors")
            return None
        try:
            payload_bytes = unframe_record(data)
        except RecordError as err:
            self._quarantine(path, err.reason)
            return None
        try:
            payload = pickle.loads(payload_bytes)
        except _MISS_ERRORS:
            # checksum passed but the pickle's class layout has moved on
            # (renamed module, removed attribute): stale, not torn
            self._quarantine(path, "stale-pickle")
            return None
        if (
            not isinstance(payload, dict)
            or "value" not in payload
            or not isinstance(payload.get("wall_s"), (int, float))
        ):
            # a well-formed pickle with the wrong shape must be a miss
            # here, not a KeyError at some distant use-site
            self.invalid_payloads += 1
            get_observer().count("cache.invalid_payloads")
            self._quarantine(path, "invalid-payload")
            return None
        value = payload["value"]
        if "columns" in payload:
            value = self._join_columns(key, path, payload)
            if value is None:
                return None
        return CacheEntry(value=value, wall_s=float(payload["wall_s"]))

    def _join_columns(self, key: str, path: Path, payload: dict):
        """Rehydrate a skeleton payload from the column store.

        Any trouble -- no store, missing key, missing column, damaged
        block -- quarantines the skeleton and answers as a miss: the
        point recomputes and re-stores, superseding the bad entry.
        Served values are bit-identical to what was stored, or absent.
        """
        from repro.store import StoreError, join_value

        store = self._get_store(create=False)
        reason = "store-miss"
        if store is not None:
            try:
                arrays = store.get(key, columns=payload["columns"])
                if arrays is not None:
                    return join_value(payload["value"], arrays)
            except StoreError as err:
                reason = f"store-{err.reason}"
            except KeyError:
                reason = "store-skeleton-mismatch"
        self.column_misses += 1
        get_observer().count("cache.column_misses")
        self._quarantine(path, reason)
        return None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move one damaged record to ``corrupt/``, once, loudly."""
        dest = self.root / self.CORRUPT_DIR / path.name
        try:
            dest.parent.mkdir(exist_ok=True)
            os.replace(path, dest)
        except OSError:
            # cannot move (disk trouble, concurrent delete): leave it --
            # the next store of this key overwrites it anyway
            dest = path
        self.corrupt_quarantined += 1
        get_observer().count("cache.corrupt_quarantined")
        _LOG.warning(
            "quarantined corrupt cache record %s (%s) -> %s", path.name, reason, dest
        )

    # -- writes ----------------------------------------------------------------

    def store(self, key: str, value: Any, wall_s: float) -> None:
        """Persist one point result under the durability policy.

        Serialization errors (unpicklable values) raise -- they are
        bugs.  I/O errors degrade: ENOSPC latches passthrough mode and
        every store from then on is dropped (hits are still served);
        any other ``OSError`` drops this store and counts it.
        """
        if self.passthrough:
            self.stores_dropped += 1
            get_observer().count("cache.stores_dropped")
            return
        payload = self._split_columns(key, value, wall_s)
        if self.passthrough:  # a store append just latched ENOSPC
            return
        framed = frame_record(pickle.dumps(payload))
        path = self._path(key)
        try:
            if self.durability == "none":
                self._write_in_place(path, framed)
            else:
                self._write_rename(path, framed)
        except OSError as err:
            self._degrade(err)

    def _split_columns(self, key: str, value: Any, wall_s: float) -> dict:
        """Build the pickle payload, lifting arrays into the column store.

        Values without storable arrays produce the exact legacy payload
        (and so the exact legacy bytes).  A failed append falls back to
        the whole-value pickle -- except ENOSPC, which latches
        passthrough via :meth:`_degrade` like any other full-disk write.
        """
        whole = {"value": value, "wall_s": wall_s}
        from repro.store import split_value

        skeleton, columns = split_value(value)
        if not columns:
            return whole
        store = self._get_store(create=True)
        if store is None:
            return whole
        try:
            store.put(key, columns)
        except OSError as err:
            if err.errno == errno.ENOSPC:
                self._degrade(err)
                return whole
            self.column_errors += 1
            get_observer().count("cache.column_errors")
            _LOG.warning(
                "result cache %s: column append failed (%s); storing %s "
                "as a whole pickle", self.root, err, key,
            )
            return whole
        return {"value": skeleton, "wall_s": wall_s, "columns": sorted(columns)}

    def _write_in_place(self, path: Path, framed: bytes) -> None:
        fs = self.fs
        with fs.open_write(path) as fh:
            fs.write(fh, framed)

    def _write_rename(self, path: Path, framed: bytes) -> None:
        fs = self.fs
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fs.write(fh, framed)
                if self.durability == "fsync":
                    fs.fsync(fh)
            crash_point("cache.store.pre_rename")
            fs.replace(tmp_name, path)
            if self.durability == "fsync":
                fs.fsync_dir(self.root)
            crash_point("cache.store.post_rename")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def _degrade(self, err: OSError) -> None:
        """Fold one failed store into the degradation state."""
        self.stores_dropped += 1
        obs = get_observer()
        obs.count("cache.stores_dropped")
        if err.errno == errno.ENOSPC:
            if not self.passthrough:
                self.passthrough = True
                obs.count("cache.enospc_passthrough")
                _LOG.warning(
                    "result cache %s: disk full (ENOSPC); degrading to "
                    "read-through passthrough -- hits still served, new "
                    "stores dropped",
                    self.root,
                )
        else:
            self.store_errors += 1
            obs.count("cache.store_errors")
            _LOG.warning(
                "result cache %s: dropped one store (%s)", self.root, err
            )

    # -- reporting -------------------------------------------------------------

    def storage_report(self) -> dict:
        """Plain-data degradation/durability summary for results and health.

        The ``store`` sub-dict appears only when the column store is
        active, so scalar-only caches report exactly what they always
        did (the chaos transparency suite pins this).
        """
        report = {
            "durability": self.durability,
            "passthrough": self.passthrough,
            "stores_dropped": self.stores_dropped,
            "store_errors": self.store_errors,
            "corrupt_quarantined": self.corrupt_quarantined,
            "invalid_payloads": self.invalid_payloads,
        }
        if self._store is not None:
            stats = self._store.stats()
            report["store"] = {
                "codec": stats.codec,
                "file_bytes": stats.file_bytes,
                "blocks": stats.blocks,
                "keys": stats.keys,
                "recovered": stats.recovered,
                "column_misses": self.column_misses,
                "column_errors": self.column_errors,
            }
        elif self._store_failed:
            report["store"] = {
                "failed": True,
                "column_misses": self.column_misses,
                "column_errors": self.column_errors,
            }
        return report

    @property
    def degraded(self) -> bool:
        """Whether the cache is running in a reduced mode."""
        return self.passthrough or self.store_errors > 0

    # -- maintenance -----------------------------------------------------------

    def remove_stale_tmp(self, max_age_s: float | None = None) -> int:
        """Delete orphaned ``*.tmp`` files left by a killed writer.

        Only files older than ``max_age_s`` (default
        :attr:`STALE_TMP_AGE_S`) are removed, so a concurrent sweep's
        in-flight write is never swept out from under its rename.
        Returns the number of files removed.
        """
        cutoff = time.time() - (
            self.STALE_TMP_AGE_S if max_age_s is None else max_age_s
        )
        removed = 0
        for tmp in self.root.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except FileNotFoundError:
                continue  # lost a race with another cleaner/writer
        return removed
