"""On-disk result cache for sweep points.

Each sweep point is identified by a *stable key*: the SHA-256 of a
canonical JSON encoding of everything that determines its result -- the
sweep name, a code-version tag, the point's parameters, and its derived
seed.  Results are pickled one-file-per-key, written atomically (write
to a temp file, then rename), so a re-run of a sweep only computes
points whose key changed (new params, new seed derivation, or a bumped
version tag).

The load contract is **"a torn or stale file is a miss, not an
error"**: truncated writes from a killed process, hand-edited garbage,
and pickles whose class layout has since changed (renamed module,
removed attribute, incompatible ``__init__``) all deserialize into some
exception -- every one of them answers "no cached value" rather than
propagating.  Leftover ``*.tmp`` files from a writer that died before
its rename are swept out by :meth:`ResultCache.remove_stale_tmp` once
they are old enough that no live writer can still own them; the sweep
runner calls it exactly once per run, from the coordinator.  Opening a
cache does **not** scan the directory -- a worker-side open is O(1) no
matter how many points are cached, which is what keeps million-shard
fleets from rescanning the store once per shard.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["CacheEntry", "ResultCache", "stable_key"]

#: Exceptions that mean "this cache file cannot serve a hit".  Beyond
#: torn-file errors (UnpicklingError/EOFError/KeyError), a *stale* pickle
#: whose class layout changed since it was written surfaces as
#: AttributeError (attribute/class gone), ImportError/ModuleNotFoundError
#: (module moved), TypeError (constructor signature changed), or
#: IndexError (reduce payload reshaped) -- all of them are misses.
_MISS_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    KeyError,
    AttributeError,
    ImportError,
    TypeError,
    IndexError,
)


def _jsonable(obj: Any) -> Any:
    """Coerce ``obj`` into a canonical JSON-encodable form.

    Tuples become lists, dict keys must be strings, and anything that is
    not a plain scalar/collection is rejected -- a cache key must never
    depend on ``repr`` of an arbitrary object.

    Floats must be canonical: ``json.dumps`` emits ``NaN``/``Infinity``
    (not RFC JSON, and ``NaN != NaN`` would split keys for params that
    compare unequal to themselves) and preserves the sign of ``-0.0``
    (two params that compare equal would hash to different keys).  So
    non-finite floats are rejected with a clear error and negative zero
    canonicalizes to ``0.0``.
    """
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"cache-key floats must be finite, got {obj!r} "
                "(NaN/inf would split or collide cache keys)"
            )
        return 0.0 if obj == 0.0 else obj
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"cache-key dict keys must be str, got {key!r}")
            out[key] = _jsonable(value)
        return out
    raise TypeError(f"value {obj!r} of type {type(obj).__name__} is not cache-keyable")


def stable_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    canonical = json.dumps(
        _jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached point result plus the wall time of its original compute."""

    value: Any
    wall_s: float


class ResultCache:
    """Pickle-per-key store under one directory.

    Construction is deliberately rescan-free: it creates the directory
    and nothing else.  Stale-``*.tmp`` cleanup is a separate, explicit
    operation (:meth:`remove_stale_tmp`) because globbing the store is
    O(cached points) -- at million-point scale one sweep per *run* is
    fine, one sweep per *open* is quadratic.  Pass ``scan_stale_tmp=True``
    to opt a construction into the sweep (what the sweep coordinator
    does, once per :func:`~repro.runner.sweep.run_sweep` call).
    """

    #: age (seconds) past which an orphaned ``*.tmp`` file is fair game
    STALE_TMP_AGE_S = 3600.0

    def __init__(self, root: str | Path, *, scan_stale_tmp: bool = False) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if scan_stale_tmp:
            self.remove_stale_tmp()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> CacheEntry | None:
        """Return the cached entry for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            return CacheEntry(value=payload["value"], wall_s=payload["wall_s"])
        except FileNotFoundError:
            return None
        except _MISS_ERRORS:
            # a torn or stale file is a miss, not an error
            return None

    def store(self, key: str, value: Any, wall_s: float) -> None:
        """Atomically persist one point result."""
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"value": value, "wall_s": wall_s}, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def remove_stale_tmp(self, max_age_s: float | None = None) -> int:
        """Delete orphaned ``*.tmp`` files left by a killed writer.

        Only files older than ``max_age_s`` (default
        :attr:`STALE_TMP_AGE_S`) are removed, so a concurrent sweep's
        in-flight write is never swept out from under its rename.
        Returns the number of files removed.
        """
        cutoff = time.time() - (
            self.STALE_TMP_AGE_S if max_age_s is None else max_age_s
        )
        removed = 0
        for tmp in self.root.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except FileNotFoundError:
                continue  # lost a race with another cleaner/writer
        return removed
