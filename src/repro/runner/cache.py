"""On-disk result cache for sweep points.

Each sweep point is identified by a *stable key*: the SHA-256 of a
canonical JSON encoding of everything that determines its result -- the
sweep name, a code-version tag, the point's parameters, and its derived
seed.  Results are pickled one-file-per-key, written atomically, so a
re-run of a sweep only computes points whose key changed (new params,
new seed derivation, or a bumped version tag).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["CacheEntry", "ResultCache", "stable_key"]


def _jsonable(obj: Any) -> Any:
    """Coerce ``obj`` into a canonical JSON-encodable form.

    Tuples become lists, dict keys must be strings, and anything that is
    not a plain scalar/collection is rejected -- a cache key must never
    depend on ``repr`` of an arbitrary object.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"cache-key dict keys must be str, got {key!r}")
            out[key] = _jsonable(value)
        return out
    raise TypeError(f"value {obj!r} of type {type(obj).__name__} is not cache-keyable")


def stable_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    canonical = json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached point result plus the wall time of its original compute."""

    value: Any
    wall_s: float


class ResultCache:
    """Pickle-per-key store under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> CacheEntry | None:
        """Return the cached entry for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            return CacheEntry(value=payload["value"], wall_s=payload["wall_s"])
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, KeyError):
            # a torn or stale file is a miss, not an error
            return None

    def store(self, key: str, value: Any, wall_s: float) -> None:
        """Atomically persist one point result."""
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"value": value, "wall_s": wall_s}, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
