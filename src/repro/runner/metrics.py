"""Timing/metrics layer: turn sweep results into a perf baseline.

``BENCH_runner.json`` is the repo's recorded perf trajectory for the
sweep runner: per-point compute wall times plus enough host context
(CPU count, python version) to interpret them.  The scaling smoke
benchmark and the CLI both emit it through :func:`write_bench_json`.

A record is honest about *how* a sweep ran, not just how long: cache
hits vs fresh computes, retry attempts absorbed per point, structured
errors from ``keep_going`` runs, and worker-pool rebuilds all appear, so
a resumed or fault-ridden sweep is distinguishable from a clean one.
When the sweep ran with ``collect_obs``, the merged deterministic
metrics rollup (see :mod:`repro.obs`) is folded in as well.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.obs import strip_timings

from .sweep import SweepResult

__all__ = ["BENCH_SCHEMA", "bench_record", "write_bench_json"]

#: Schema tag for BENCH_runner.json consumers.
BENCH_SCHEMA = "repro.runner.bench/v2"


def bench_record(result: SweepResult) -> dict:
    """JSON-able timing record for one sweep run."""
    record = {
        "sweep": result.name,
        "jobs": result.jobs,
        "total_wall_s": result.total_wall_s,
        "grid_points": len(result.points) + len(result.errors),
        "cached_points": result.cached_count,
        "computed_points": result.computed_count,
        "failed_points": result.failed_count,
        "retry_attempts": result.retry_attempts,
        "pool_rebuilds": result.pool_rebuilds,
        "points": [
            {
                "index": p.index,
                "params": p.params,
                "seed": p.seed,
                "wall_s": p.wall_s,
                "cached": p.cached,
                "attempts": p.attempts,
            }
            for p in result.points
        ],
        "errors": [
            {
                "index": e.index,
                "params": e.params,
                "seed": e.seed,
                "kind": e.kind,
                "message": e.message,
                "attempts": e.attempts,
            }
            for e in result.errors
        ],
    }
    merged = result.merged_metrics()
    if merged is not None:
        record["metrics"] = strip_timings(merged)
    return record


def write_bench_json(
    path: str | Path,
    results: list[SweepResult],
    notes: str = "",
    extras: dict | None = None,
) -> dict:
    """Write a ``BENCH_runner.json`` perf baseline and return its payload.

    ``extras`` merges additional top-level sections into the payload
    (e.g. the ``store`` size/throughput comparison) without touching the
    reserved keys; a collision raises rather than silently shadowing.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "generated_unix": int(time.time()),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "notes": notes,
        "sweeps": [bench_record(r) for r in results],
    }
    if extras:
        clash = sorted(set(extras) & set(payload))
        if clash:
            raise ValueError(f"extras would shadow reserved bench keys: {clash}")
        payload.update(extras)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
