"""Timing/metrics layer: turn sweep results into a perf baseline.

``BENCH_runner.json`` is the repo's recorded perf trajectory for the
sweep runner: per-point compute wall times plus enough host context
(CPU count, python version) to interpret them.  The scaling smoke
benchmark and the CLI both emit it through :func:`write_bench_json`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from .sweep import SweepResult

__all__ = ["BENCH_SCHEMA", "bench_record", "write_bench_json"]

#: Schema tag for BENCH_runner.json consumers.
BENCH_SCHEMA = "repro.runner.bench/v1"


def bench_record(result: SweepResult) -> dict:
    """JSON-able timing record for one sweep run."""
    return {
        "sweep": result.name,
        "jobs": result.jobs,
        "total_wall_s": result.total_wall_s,
        "cached_points": result.cached_count,
        "computed_points": result.computed_count,
        "points": [
            {
                "index": p.index,
                "params": p.params,
                "seed": p.seed,
                "wall_s": p.wall_s,
                "cached": p.cached,
            }
            for p in result.points
        ],
    }


def write_bench_json(
    path: str | Path,
    results: list[SweepResult],
    notes: str = "",
) -> dict:
    """Write a ``BENCH_runner.json`` perf baseline and return its payload."""
    payload = {
        "schema": BENCH_SCHEMA,
        "generated_unix": int(time.time()),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "notes": notes,
        "sweeps": [bench_record(r) for r in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
