"""Picklable sweep-point functions for the sweep-shaped experiments.

Worker processes unpickle point functions by module reference, so every
function the runner fans out must live at module scope in an importable
module.  This module hosts the point functions behind the CLI
``lifetime`` command and the sweep-shaped benchmarks (A2 split sweep,
A3 threshold sweep, A6 sensitivity grid, E16 population wear).

Each function takes ``(params, seed)``: ``params`` is the plain-data
grid point, ``seed`` is the runner-derived per-point seed.  Experiments
that pin their own workload seeds (to reproduce published tables) carry
them in ``params`` and ignore the derived seed; population-style sweeps
use the derived seed directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.workloads.mobile import MobileWorkload, WorkloadConfig

__all__ = [
    "DEFAULT_MIX_WEIGHTS",
    "assign_mixes",
    "lifetime_point",
    "split_point",
    "threshold_point",
    "sensitivity_point",
    "sensitivity_batch_point",
    "population_point",
    "population_batch_point",
    "population_batch_observables",
    "population_batch_grid",
    "ftl_population_point",
    "ftl_population_observables",
    "fault_ablation_point",
]

#: population intensity mix: mostly light/typical, thin heavy tail.
#: Shared by the E16/E14 population benches and the CLI ``population``
#: command so every "realistic fleet" in the repo means the same fleet.
DEFAULT_MIX_WEIGHTS = {
    "light": 0.35,
    "typical": 0.45,
    "heavy": 0.18,
    "adversarial": 0.02,
}


def assign_mixes(
    seed: int,
    mix_weights,
    start: int,
    count: int,
) -> list[str]:
    """Intensity-mix assignment for devices ``start .. start+count-1``.

    The population convention: device ``u``'s mix is the ``u``-th draw
    of the ``numpy.random.default_rng(seed)`` stream through
    ``rng.choice(len(mixes), p=weights)`` -- one PCG64 state step per
    device.  This function reproduces those draws **bit-identically**
    (pinned by tests against the sequential loop) but derives them from
    the *global* device index: ``PCG64.advance(start)`` jumps straight
    to device ``start``'s draw in O(1), and the block of ``count``
    uniforms then resolves through the same normalized-CDF searchsorted
    that ``Generator.choice`` uses internally.

    Two properties follow, and the fleet sharding layer leans on both:

    * **chunk/shard invariance** -- a device's mix depends only on
      ``(seed, mix_weights, global index)``, never on how the
      population is cut into shards or how large it is;
    * **shard-local construction** -- a shard worker materializes its
      own slice of the assignment in O(shard) time and memory, so
      nobody ever builds (or ships) the million-entry global list.

    ``mix_weights`` is a name->weight mapping or a sequence of
    ``(name, weight)`` pairs; **order matters** (it fixes which CDF
    interval each name owns), which is why sharded grids carry the
    weights as an ordered list of pairs.
    """
    if count < 0 or start < 0:
        raise ValueError("start and count must be non-negative")
    pairs = (
        list(mix_weights.items())
        if hasattr(mix_weights, "items")
        else [(str(name), float(weight)) for name, weight in mix_weights]
    )
    if not pairs:
        raise ValueError("mix_weights must name at least one mix")
    names = [name for name, _ in pairs]
    weights = np.array([weight for _, weight in pairs], dtype=float)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative with a positive sum")
    if count == 0:
        return []
    # the exact normalization chain of Generator.choice(p=weights/sum):
    # choice re-normalizes its (already normalized) p via the CDF
    cdf = np.cumsum(weights / weights.sum())
    cdf /= cdf[-1]
    uniforms = np.random.Generator(
        np.random.PCG64(seed).advance(start)
    ).random(count)
    return [names[i] for i in cdf.searchsorted(uniforms, side="right")]


def _summaries(mix: str, days: int, seed: int):
    return MobileWorkload(WorkloadConfig(mix=mix, days=days, seed=seed)).daily_summaries()


def _fault_plan(build, fault_params: dict | None, days: int, seed: int):
    """Materialize a FaultPlan for ``build`` from plain-data params.

    The schedule targets every partition of the build (units = block
    groups) and is generated *before* the run, so it depends only on
    ``(fault_params, seed, days, build shape)`` -- never on worker
    placement or completion order.
    """
    if not fault_params:
        return None
    from repro.faults.plan import FaultConfig, FaultPlan

    config = FaultConfig.from_params(fault_params)
    if config.is_zero:
        return None
    targets = {
        name: partition.spec.n_groups
        for name, partition in build.device.partitions.items()
    }
    return FaultPlan.generate(config, seed=seed, horizon_days=days, targets=targets)


def lifetime_point(params: dict, seed: int):
    """One (build, workload) lifetime run; the CLI ``lifetime`` point.

    params: ``build`` (key into ALL_BUILDERS), ``capacity_gb``, ``mix``,
    ``days``, ``workload_seed`` (optional; the derived seed otherwise),
    ``faults`` (optional plain-data :class:`FaultConfig` mapping; omitted
    or all-zero means the exact fault-free run).
    Returns the :class:`~repro.sim.engine.LifetimeResult`.
    """
    from repro.sim.baselines import ALL_BUILDERS
    from repro.sim.engine import run_lifetime

    workload_seed = params.get("workload_seed")
    summaries = _summaries(
        params["mix"], params["days"], seed if workload_seed is None else workload_seed
    )
    build = ALL_BUILDERS[params["build"]](params["capacity_gb"])
    plan = _fault_plan(build, params.get("faults"), params["days"], seed)
    return run_lifetime(build, summaries, fault_plan=plan)


def split_point(params: dict, seed: int) -> dict:
    """One SPARE-fraction point of the A2 split sweep.

    params: ``spare_fraction``, ``capacity_gb``, ``mix``, ``days``,
    ``workload_seed``.
    """
    from repro.core.config import default_config
    from repro.core.partitions import density_gain
    from repro.sim.baselines import build_sos, build_tlc_baseline
    from repro.sim.engine import run_lifetime

    fraction = params["spare_fraction"]
    summaries = _summaries(params["mix"], params["days"], params["workload_seed"])
    tlc = build_tlc_baseline(params["capacity_gb"])
    build = build_sos(params["capacity_gb"], spare_fraction=fraction)
    result = run_lifetime(build, summaries)
    return {
        "fraction": fraction,
        "gain": density_gain(default_config(spare_fraction=fraction)),
        "carbon_reduction": 1 - build.intensity_kg_per_gb / tlc.intensity_kg_per_gb,
        "result": result,
    }


def threshold_point(params: dict, seed: int):
    """One demote-threshold point of the A3 classifier sweep.

    params: ``threshold``, ``n_files``, ``now_years``, ``corpus_seed``.
    The corpus is regenerated per point from ``corpus_seed``, so every
    point trains on the identical corpus regardless of worker placement.
    """
    from repro.classify.classifier import train_classifier
    from repro.classify.corpus import CorpusConfig, generate_corpus

    corpus = generate_corpus(
        CorpusConfig(n_files=params["n_files"]), seed=params["corpus_seed"]
    )
    _, metrics = train_classifier(
        corpus,
        params["now_years"],
        demote_threshold=params["threshold"],
        seed=params["corpus_seed"],
    )
    return metrics


def sensitivity_point(params: dict, seed: int) -> dict:
    """One (PLC-PEC, WAF) point of the A6 calibration-sensitivity grid.

    params: ``plc_pec``, ``waf``, ``capacity_gb``, ``mix``, ``days``,
    ``workload_seed``.  The PLC endurance-table override is applied and
    restored inside the point, so points stay independent no matter
    which process runs them.
    """
    from repro.flash.cell import CellTechnology
    from repro.flash.reliability import ENDURANCE_TABLE
    from repro.sim.baselines import build_sos, build_tlc_baseline
    from repro.sim.engine import run_lifetime

    capacity = params["capacity_gb"]
    summaries = _summaries(params["mix"], params["days"], params["workload_seed"])
    original = ENDURANCE_TABLE[CellTechnology.PLC]
    ENDURANCE_TABLE[CellTechnology.PLC] = dataclasses.replace(
        original, rated_pec=params["plc_pec"]
    )
    try:
        sos_build = build_sos(capacity)
        for part in sos_build.device.partitions.values():
            part.spec = dataclasses.replace(part.spec, waf=params["waf"])
        result = run_lifetime(sos_build, summaries)
        tlc = build_tlc_baseline(capacity)
        capacity_fraction = result.final.capacity_gb / capacity
        return {
            "plc_pec": params["plc_pec"],
            "waf": params["waf"],
            # usable = acceptable media quality and bounded capacity
            # loss; §4.3's resuscitation makes capacity shrink the
            # *designed* response at pessimistic calibrations
            "usable": result.final.spare_quality >= 0.85
            and capacity_fraction >= 0.75,
            "capacity_fraction": capacity_fraction,
            "sys_wear": result.final.sys_wear_fraction,
            "quality": result.final.spare_quality,
            "carbon_ok": sos_build.intensity_kg_per_gb < tlc.intensity_kg_per_gb,
        }
    finally:
        ENDURANCE_TABLE[CellTechnology.PLC] = original


def fault_ablation_point(params: dict, seed: int) -> dict:
    """One fault-scale point of the A9 fault-injection ablation.

    params: ``fault_scale`` (multiplier on the base fault rates),
    ``capacity_gb``, ``mix``, ``days``, ``workload_seed``.  Returns the
    end-of-life survival metrics plus the structured fault counters, so
    the benchmark can claim both graceful degradation and counter
    scaling.
    """
    from repro.sim.baselines import build_sos
    from repro.sim.engine import run_lifetime

    scale = params["fault_scale"]
    summaries = _summaries(params["mix"], params["days"], params["workload_seed"])
    build = build_sos(params["capacity_gb"])
    plan = _fault_plan(
        build,
        {
            "block_infant_mortality": 0.02 * scale,
            "transient_read_rate": 0.5 * scale,
            "power_loss_rate": 0.1 * scale,
            "cloud_outage_rate": 0.02 * scale,
            "cloud_outage_days": 3,
        },
        params["days"],
        params["workload_seed"],
    )
    result = run_lifetime(build, summaries, fault_plan=plan)
    final = result.final
    faults = result.faults.as_dict() if result.faults is not None else {}
    return {
        "fault_scale": scale,
        "capacity_fraction": final.capacity_gb / params["capacity_gb"],
        "spare_quality": final.spare_quality,
        "retired_groups": final.retired_groups,
        "survived": result.survived(min_capacity_fraction=0.5, quality_floor=0.5),
        "faults": faults,
        "plan_digest": plan.digest() if plan is not None else None,
    }


def population_point(params: dict, seed: int) -> float:
    """One user of the E16 population-wear sweep.

    params: ``mix``, ``capacity_gb``, ``days``, ``workload_seed``.
    Returns the end-of-life SYS wear fraction.
    """
    from repro.sim.baselines import build_tlc_baseline
    from repro.sim.engine import run_lifetime

    summaries = _summaries(params["mix"], params["days"], params["workload_seed"])
    result = run_lifetime(build_tlc_baseline(params["capacity_gb"]), summaries)
    return result.final.sys_wear_fraction


def _population_batch_results(params: dict, seed: int) -> list:
    """Shared body of the population batch points: one vectorized pass
    over the chunk's devices, returning their ``LifetimeResult``s in
    user order (see :func:`population_batch_point` for the params)."""
    from repro.sim.baselines import ALL_BUILDERS
    from repro.sim.batch import SummaryBatch, run_lifetime_batch

    days = params["days"]
    builder = ALL_BUILDERS[params.get("build", "tlc_baseline")]
    seeds = list(params["workload_seeds"])
    volumes = [
        MobileWorkload(
            WorkloadConfig(mix=mix, days=days, seed=ws)
        ).daily_volume_arrays()
        for mix, ws in zip(params["mixes"], seeds)
    ]
    builds = [builder(params["capacity_gb"]) for _ in volumes]
    plans = None
    if params.get("faults"):
        plans = [
            _fault_plan(build, params["faults"], days, ws)
            for build, ws in zip(builds, seeds)
        ]
    return run_lifetime_batch(
        builds, SummaryBatch.from_volume_arrays(volumes), fault_plans=plans
    )


def population_batch_point(params: dict, seed: int) -> list[float]:
    """One *chunk* of a device population in a single vectorized pass.

    The batched replacement for per-user :func:`population_point` sweeps:
    one sweep point simulates ``len(params["mixes"])`` devices through
    :func:`repro.sim.batch.run_lifetime_batch` and returns their
    end-of-life SYS wear fractions in user order.  ``run_sweep`` treats
    the whole batch as one cached point.

    params: ``mixes`` and ``workload_seeds`` (parallel per-device lists),
    ``capacity_gb``, ``days``, optional ``build`` (ALL_BUILDERS key,
    default ``tlc_baseline``) and ``faults`` (plain-data FaultConfig
    mapping; per-device plans are seeded by each device's workload seed).
    """
    return [
        result.final.sys_wear_fraction
        for result in _population_batch_results(params, seed)
    ]


def population_batch_observables(params: dict, seed: int) -> dict:
    """End-of-life observables of one population chunk, as columns.

    Same params and per-device identity as :func:`population_batch_point`
    (the ``wear`` column *is* that function's return, stacked), but every
    final-day observable worth distribution queries comes back as one
    float64/int64 array per column, in user order -- exactly the shape
    the columnar result store packs into compressed blocks.
    """
    results = _population_batch_results(params, seed)
    finals = [result.final for result in results]
    return {
        "wear": np.array([f.sys_wear_fraction for f in finals], dtype=np.float64),
        "spare_wear": np.array(
            [f.spare_wear_fraction for f in finals], dtype=np.float64
        ),
        "capacity_gb": np.array([f.capacity_gb for f in finals], dtype=np.float64),
        "spare_quality": np.array([f.spare_quality for f in finals], dtype=np.float64),
        "retired_groups": np.array([f.retired_groups for f in finals], dtype=np.int64),
        "resuscitated_groups": np.array(
            [f.resuscitated_groups for f in finals], dtype=np.int64
        ),
    }


def population_batch_grid(
    n_users: int,
    days: int,
    capacity_gb: float,
    seed: int,
    mix_weights: dict[str, float],
    chunk: int = 50,
    build: str = "tlc_baseline",
    workload_seed_base: int = 1000,
) -> tuple[dict, ...]:
    """Chunked :func:`population_batch_point` grid for a user population.

    Per-device identity is a function of the *global* device index
    alone: user ``u`` gets workload seed ``workload_seed_base + u`` and
    the mix :func:`assign_mixes` derives for index ``u`` -- the same
    convention as the per-user scalar sweeps, so a batched population
    reproduces the scalar population's wear values exactly regardless
    of ``chunk`` (every chunk size slices the identical device list).
    Construction is vectorized per chunk; no per-user python-loop rng
    draws, so million-user grids build in milliseconds.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    return tuple(
        {
            "mixes": assign_mixes(
                seed, mix_weights, start, min(chunk, n_users - start)
            ),
            "workload_seeds": list(
                range(workload_seed_base + start,
                      workload_seed_base + min(start + chunk, n_users))
            ),
            "capacity_gb": capacity_gb,
            "days": days,
            "build": build,
        }
        for start in range(0, n_users, chunk)
    )


def ftl_population_observables(params: dict, seed: int) -> dict:
    """End-of-life observables of one population chunk at FTL fidelity.

    The page-level sibling of :func:`population_batch_observables`: the
    same params (``mixes``/``workload_seeds`` parallel per-device lists,
    ``capacity_gb``, ``days``) and the same per-device identity
    convention, but each device is replayed through the page-mapped FTL
    (:func:`repro.ftl.replay.replay` on the analytic chip fast path)
    instead of the epoch-level lifetime model.  Devices are independent
    and each is a pure function of its own ``(mix, days, capacity_gb,
    workload_seed)``, so any chunking of a population produces
    bit-identical columns.

    Columns (device order): ``wear`` (mean PEC-over-rated across live
    blocks -- the digest input), ``max_wear``, and int64 activity
    counters ``gc_erases``, ``gc_migrations``, ``wl_migrations``,
    ``host_writes``, ``retired_blocks``.
    """
    from repro.ftl.replay import FtlReplayConfig, replay

    mixes = list(params["mixes"])
    seeds = list(params["workload_seeds"])
    if len(mixes) != len(seeds):
        raise ValueError("mixes and workload_seeds must be parallel lists")
    results = [
        replay(
            FtlReplayConfig(
                mix=mix,
                days=int(params["days"]),
                capacity_gb=float(params["capacity_gb"]),
                seed=int(ws),
            )
        )
        for mix, ws in zip(mixes, seeds)
    ]
    return {
        "wear": np.array([r.mean_wear for r in results], dtype=np.float64),
        "max_wear": np.array([r.max_wear for r in results], dtype=np.float64),
        "gc_erases": np.array([r.stats.gc_erases for r in results], dtype=np.int64),
        "gc_migrations": np.array(
            [r.stats.gc_migrations for r in results], dtype=np.int64
        ),
        "wl_migrations": np.array(
            [r.stats.wl_migrations for r in results], dtype=np.int64
        ),
        "host_writes": np.array(
            [r.stats.host_writes for r in results], dtype=np.int64
        ),
        "retired_blocks": np.array(
            [r.retired_blocks for r in results], dtype=np.int64
        ),
    }


def ftl_population_point(params: dict, seed: int) -> list[float]:
    """Per-device mean wear of one FTL-fidelity population chunk.

    Same params and identity as :func:`ftl_population_observables`;
    returns just the ``wear`` column as a list (the sweep-point shape
    ``run_sweep`` caches for scalar grids).
    """
    return ftl_population_observables(params, seed)["wear"].tolist()


def sensitivity_batch_point(params: dict, seed: int) -> list[dict]:
    """One PLC-PEC row of the A6 grid: every WAF column in one batch.

    The endurance-table override is global state, so only devices sharing
    a ``plc_pec`` can batch together; WAF varies per device (the one
    spec field :func:`repro.sim.batch.run_lifetime_batch` allows to
    differ).  Returns one :func:`sensitivity_point`-shaped dict per WAF,
    in ``params["wafs"]`` order.
    """
    from repro.flash.cell import CellTechnology
    from repro.flash.reliability import ENDURANCE_TABLE
    from repro.sim.baselines import build_sos, build_tlc_baseline
    from repro.sim.batch import SummaryBatch, run_lifetime_batch

    capacity = params["capacity_gb"]
    wafs = list(params["wafs"])
    volumes = MobileWorkload(
        WorkloadConfig(
            mix=params["mix"], days=params["days"], seed=params["workload_seed"]
        )
    ).daily_volume_arrays()
    original = ENDURANCE_TABLE[CellTechnology.PLC]
    ENDURANCE_TABLE[CellTechnology.PLC] = dataclasses.replace(
        original, rated_pec=params["plc_pec"]
    )
    try:
        builds = []
        for waf in wafs:
            build = build_sos(capacity)
            for part in build.device.partitions.values():
                part.spec = dataclasses.replace(part.spec, waf=waf)
            builds.append(build)
        results = run_lifetime_batch(
            builds, SummaryBatch.from_volume_arrays([volumes] * len(wafs))
        )
        tlc = build_tlc_baseline(capacity)
        out = []
        for waf, build, result in zip(wafs, builds, results):
            capacity_fraction = result.final.capacity_gb / capacity
            out.append(
                {
                    "plc_pec": params["plc_pec"],
                    "waf": waf,
                    "usable": result.final.spare_quality >= 0.85
                    and capacity_fraction >= 0.75,
                    "capacity_fraction": capacity_fraction,
                    "sys_wear": result.final.sys_wear_fraction,
                    "quality": result.final.spare_quality,
                    "carbon_ok": build.intensity_kg_per_gb < tlc.intensity_kg_per_gb,
                }
            )
        return out
    finally:
        ENDURANCE_TABLE[CellTechnology.PLC] = original
