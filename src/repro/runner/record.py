"""Self-describing framed records: magic + length + CRC32C + payload.

A bare pickle on disk cannot tell a reader that it is damaged: a torn
tail often *still unpickles* into a wrong-but-plausible object, and a
bit flip in a float buffer unpickles into a silently different value.
The frame closes that hole -- every persisted record is::

    offset  size  field
    0       4     magic  b"RPR1"
    4       8     payload length, uint64 little-endian
    12      4     CRC32C of the payload, uint32 little-endian
    16      n     payload bytes (a pickle, for the result cache)

so a reader *detects* damage (wrong magic, short/long file, checksum
mismatch) instead of deserializing it.  CRC32C (Castagnoli) detects
every single-bit flip and every burst up to 32 bits -- the torn-write
and bit-rot shapes the chaos suite injects -- and the hardware-backed
``crc32c`` package is used when present, with a table-driven software
fallback otherwise (records here are small: digests and point values,
not data pages).

:func:`unframe_record` raises :class:`RecordError` with a machine-
readable ``reason`` tag; callers quarantine on it, they never guess.
"""

from __future__ import annotations

import struct

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "RecordError",
    "crc32c",
    "frame_record",
    "unframe_record",
]

MAGIC = b"RPR1"

_HEADER = struct.Struct("<4sQI")
HEADER_SIZE = _HEADER.size  # 16 bytes


class RecordError(ValueError):
    """A framed record failed validation.

    ``reason`` is a stable tag (``truncated-header``, ``bad-magic``,
    ``length-mismatch``, ``crc-mismatch``) for counters and quarantine
    file naming; the message adds human detail.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


def _make_table() -> list[int]:
    # reflected Castagnoli polynomial, the iSCSI/ext4 metadata CRC
    poly = 0x82F63B78
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


try:  # hardware/SIMD implementation when the wheel is available
    from crc32c import crc32c as _crc32c_native  # type: ignore[import-not-found]
except ImportError:
    _crc32c_native = None

_TABLE = _make_table() if _crc32c_native is None else None


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, continuing from ``crc``."""
    if _crc32c_native is not None:
        return _crc32c_native(data, crc)
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def frame_record(payload: bytes) -> bytes:
    """Wrap ``payload`` in the self-describing header."""
    return _HEADER.pack(MAGIC, len(payload), crc32c(payload)) + payload


def unframe_record(data: bytes) -> bytes:
    """Validate a framed record and return its payload.

    Raises :class:`RecordError` on any damage; never returns bytes the
    checksum did not vouch for.
    """
    if len(data) < HEADER_SIZE:
        raise RecordError(
            "truncated-header", f"{len(data)} byte(s) < header size {HEADER_SIZE}"
        )
    magic, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise RecordError("bad-magic", f"got {magic!r}, want {MAGIC!r}")
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise RecordError(
            "length-mismatch", f"header says {length} byte(s), file has {len(payload)}"
        )
    actual = crc32c(payload)
    if actual != crc:
        raise RecordError("crc-mismatch", f"header {crc:#010x}, payload {actual:#010x}")
    return payload
