"""Deliberately misbehaving point functions for fault-tolerance tests.

Worker processes unpickle point functions by module reference, so the
crash/flake/hang functions the fault-tolerance tests fan out must live
at module scope in an importable module (the test tree has no package
``__init__``).  Each is driven entirely by its ``params`` so the same
function can play a healthy point and a faulty one in one grid.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = ["crash_point", "flaky_point", "sleepy_point"]


def crash_point(params: dict, seed: int) -> dict:
    """Die without ceremony when ``params["crash"]`` is truthy.

    ``os._exit`` skips interpreter teardown entirely -- the worker
    vanishes mid-task exactly like a segfault or an OOM kill, which is
    what makes the executor raise ``BrokenProcessPool``.  Non-crashing
    points return a small verifiable payload.

    ``params["crash_times"]`` (with a ``scratch`` directory, like
    :func:`flaky_point`) crashes the first N attempts and then
    succeeds -- the recoverable-crash shape the gateway's retry budget
    is meant to absorb.
    """
    if params.get("crash"):
        os._exit(13)
    if params.get("crash_times"):
        scratch = Path(params["scratch"])
        name = f"crashes-{params['index']}"
        attempts = len(list(scratch.glob(f"{name}-*")))
        (scratch / f"{name}-{attempts}").touch()
        if attempts < params["crash_times"]:
            os._exit(13)
    return {"index": params["index"], "seed": seed}


def flaky_point(params: dict, seed: int) -> dict:
    """Raise on the first ``params["fail_times"]`` calls, then succeed.

    Attempt count is shared across processes via marker files in
    ``params["scratch"]``, so retries land on whichever worker is free.
    """
    scratch = Path(params["scratch"])
    marker = scratch / f"attempts-{params['index']}"
    attempts = len(list(scratch.glob(f"{marker.name}-*")))
    (scratch / f"{marker.name}-{attempts}").touch()
    if attempts < params.get("fail_times", 0):
        raise RuntimeError(f"flaky point {params['index']}: attempt {attempts} fails")
    return {"index": params["index"], "attempts": attempts + 1, "seed": seed}


def sleepy_point(params: dict, seed: int) -> dict:
    """Sleep ``params["sleep_s"]`` seconds, then return."""
    time.sleep(params.get("sleep_s", 0.0))
    return {"index": params["index"], "seed": seed}
