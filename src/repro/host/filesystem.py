"""A minimal extent-based file system tolerant of capacity variance.

The host half of the paper's co-design (Figure 2): files map to logical
page extents; the block layer beneath routes logical pages to device
streams.  §4.3 requires the file system to "tolerate capacity-variance"
-- the device may shrink as worn blocks retire -- so capacity here is a
*quota observed at allocation time*, re-queried from the device on every
operation, rather than a constant.

The file system does not store payload bytes itself; it allocates LPNs
and delegates I/O to a :class:`~repro.host.block_layer.BlockLayer`-like
object (anything with ``write_page``/``read_page``/``trim_page``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from .files import FileAttributes, FileKind, FileRecord

__all__ = ["FileSystem", "FsFullError"]


class FsFullError(Exception):
    """Raised when an allocation exceeds the device's current capacity."""


class FileSystem:
    """Flat namespace of files over a logical-page block device.

    Parameters
    ----------
    block_layer:
        Object providing ``write_page(lpn, payload, file)``,
        ``read_page(lpn)``, ``trim_page(lpn)``, ``page_bytes`` and
        ``capacity_pages()``.
    """

    def __init__(self, block_layer) -> None:
        self.block_layer = block_layer
        self.files: dict[int, FileRecord] = {}
        self._by_path: dict[str, int] = {}
        self._next_file_id = 1
        self._next_lpn = 0
        self._free_lpns: list[int] = []
        self.now_years = 0.0

    # -- time -----------------------------------------------------------------

    def advance_time(self, now_years: float) -> None:
        """Advance the host clock (monotonic)."""
        if now_years < self.now_years:
            raise ValueError("time cannot move backwards")
        self.now_years = now_years

    # -- namespace --------------------------------------------------------------

    def create(
        self,
        path: str,
        kind: FileKind,
        size_bytes: int,
        attributes: FileAttributes | None = None,
        content: Callable[[int], bytes] | None = None,
    ) -> FileRecord:
        """Create a file and write its content.

        Parameters
        ----------
        path:
            Unique file path.
        kind:
            File kind (drives default placement).
        size_bytes:
            Logical size; rounded up to whole pages for allocation.
        attributes:
            Initial attributes; defaults to creation at the current time.
        content:
            Optional generator mapping page ordinal -> payload bytes.
            Defaults to zero-filled pages.
        """
        if path in self._by_path:
            raise FileExistsError(path)
        page_bytes = self.block_layer.page_bytes
        npages = max(1, -(-size_bytes // page_bytes))
        self._check_capacity(npages)
        if attributes is None:
            attributes = FileAttributes(
                created_years=self.now_years, last_access_years=self.now_years
            )
        record = FileRecord(
            file_id=self._next_file_id,
            path=path,
            kind=kind,
            size_bytes=size_bytes,
            attributes=attributes,
        )
        self._next_file_id += 1
        try:
            for ordinal in range(npages):
                lpn = self._alloc_lpn()
                record.extents.append(lpn)
                payload = content(ordinal) if content is not None else b""
                self.block_layer.write_page(lpn, payload, record)
        except Exception:
            # transactional create: release any pages already written so
            # a device-level failure (e.g. partition exhaustion) does not
            # leak orphaned extents
            for lpn in record.extents:
                self.block_layer.trim_page(lpn)
                self._free_lpns.append(lpn)
            raise
        self.files[record.file_id] = record
        self._by_path[path] = record.file_id
        return record

    def lookup(self, path: str) -> FileRecord:
        """File record by path; raises ``FileNotFoundError``."""
        file_id = self._by_path.get(path)
        if file_id is None:
            raise FileNotFoundError(path)
        return self.files[file_id]

    def delete(self, path: str) -> None:
        """Delete a file, trimming its pages on the device."""
        record = self.lookup(path)
        for lpn in record.extents:
            self.block_layer.trim_page(lpn)
            self._free_lpns.append(lpn)
        record.extents.clear()
        record.deleted = True
        del self._by_path[path]
        del self.files[record.file_id]

    def live_files(self) -> Iterable[FileRecord]:
        """All current (non-deleted) files."""
        return self.files.values()

    # -- I/O ----------------------------------------------------------------------

    def read_file(self, path: str) -> list[bytes]:
        """Read every page of a file (as decoded payloads)."""
        record = self.lookup(path)
        record.touch(self.now_years)
        return [self.block_layer.read_page(lpn) for lpn in record.extents]

    def overwrite_page(self, path: str, ordinal: int, payload: bytes) -> None:
        """Rewrite one page of a file in place (logical update)."""
        record = self.lookup(path)
        if not 0 <= ordinal < len(record.extents):
            raise IndexError(f"page {ordinal} out of range for {path}")
        record.mark_modified(self.now_years)
        self.block_layer.write_page(record.extents[ordinal], payload, record)

    # -- capacity ----------------------------------------------------------------

    def used_pages(self) -> int:
        """Pages currently allocated to live files."""
        return sum(len(r.extents) for r in self.files.values())

    def capacity_pages(self) -> int:
        """Device capacity in pages, re-queried (capacity variance)."""
        return self.block_layer.capacity_pages()

    def free_pages(self) -> int:
        """Pages available for new allocations right now."""
        return max(0, self.capacity_pages() - self.used_pages())

    def utilization(self) -> float:
        """Fraction of current device capacity in use."""
        cap = self.capacity_pages()
        return self.used_pages() / cap if cap else 1.0

    def over_capacity_pages(self) -> int:
        """Pages by which live data exceeds (shrunken) capacity; >=0.

        Nonzero after device capacity loss -- the trigger for §4.5's
        auto-delete/trim fallback.
        """
        return max(0, self.used_pages() - self.capacity_pages())

    # -- internals ------------------------------------------------------------------

    def _alloc_lpn(self) -> int:
        if self._free_lpns:
            return self._free_lpns.pop()
        lpn = self._next_lpn
        self._next_lpn += 1
        return lpn

    def _check_capacity(self, npages: int) -> None:
        if self.used_pages() + npages > self.capacity_pages():
            raise FsFullError(
                f"allocation of {npages} pages exceeds capacity "
                f"({self.used_pages()}/{self.capacity_pages()} used)"
            )
