"""Data-reduction baselines: inline compression and chunk deduplication.

The §5 comparison point: enterprise storage saves capacity with
compression/dedup, but on personal devices the savings are small because
media bytes (the majority) are already compressed.  SOS's density gain
is orthogonal and larger.

Implementations are intentionally standard:

* compression -- zlib (DEFLATE) per chunk, the common inline-compression
  proxy (cf. Zuck et al., INFLOW '14);
* deduplication -- fixed-size chunk SHA-256 fingerprints, counting each
  unique chunk once (cf. Yen et al.'s mobile dedup study).
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass

__all__ = ["ReductionReport", "compress_savings", "dedup_savings", "analyze"]

_CHUNK = 4096


@dataclass(frozen=True, slots=True)
class ReductionReport:
    """Capacity savings of the reduction baselines on a corpus."""

    total_bytes: int
    compressed_bytes: int
    unique_bytes: int

    @property
    def compression_savings(self) -> float:
        """Fraction of capacity saved by inline compression."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.total_bytes

    @property
    def dedup_savings(self) -> float:
        """Fraction of capacity saved by chunk deduplication."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes


def compress_savings(data: bytes, level: int = 1) -> float:
    """Fractional size reduction of one buffer under DEFLATE."""
    if not data:
        return 0.0
    compressed = sum(
        len(zlib.compress(data[i:i + _CHUNK], level))
        for i in range(0, len(data), _CHUNK)
    )
    return max(0.0, 1.0 - compressed / len(data))


def dedup_savings(buffers: list[bytes]) -> float:
    """Fractional reduction from deduplicating fixed-size chunks."""
    total = 0
    seen: set[bytes] = set()
    unique = 0
    for data in buffers:
        for i in range(0, len(data), _CHUNK):
            chunk = data[i:i + _CHUNK]
            total += len(chunk)
            digest = hashlib.sha256(chunk).digest()
            if digest not in seen:
                seen.add(digest)
                unique += len(chunk)
    if total == 0:
        return 0.0
    return 1.0 - unique / total


def analyze(buffers: list[bytes], level: int = 1) -> ReductionReport:
    """Full reduction analysis (compression + dedup) of a corpus."""
    total = sum(len(b) for b in buffers)
    compressed = 0
    seen: set[bytes] = set()
    unique = 0
    for data in buffers:
        for i in range(0, len(data), _CHUNK):
            chunk = data[i:i + _CHUNK]
            compressed += len(zlib.compress(chunk, level))
            digest = hashlib.sha256(chunk).digest()
            if digest not in seen:
                seen.add(digest)
                unique += len(chunk)
    return ReductionReport(
        total_bytes=total,
        compressed_bytes=min(compressed, total),
        unique_bytes=unique,
    )
