"""UFS-style logical-unit frontend with power-loss semantics.

§4.3: "the UFS mobile storage device standard, used in many Android
phones, already supports optional LUNs with varying reliability during
power failures as well as dynamic device capacity to extend device
lifetime".  This module models exactly those two hooks, showing SOS
needs no new device standard:

* **LUNs** partition the logical space; each is provisioned from one
  underlying stream and carries a ``reliable_writes`` attribute.  On a
  reliable LUN an acknowledged write is durable across power loss (the
  device flushes through to flash before acking); on a normal LUN,
  recently acknowledged writes may still sit in the device's volatile
  write buffer and vanish on a power cut;
* **dynamic capacity**: a LUN's reported capacity re-queries the
  underlying stream, so worn-block retirement surfaces to the host as
  shrinking LUN capacity, which is how §4.3's capacity variance reaches
  an unmodified UFS host stack.

SOS maps SYS to a reliable LUN and SPARE to a normal, write-buffered
LUN -- losing a few seconds of freshly demoted media on power loss is
exactly the kind of degradation the SPARE contract already permits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ftl.ftl import Ftl

__all__ = ["LunConfig", "LunDescriptor", "UfsDevice", "UfsError"]

#: Device-side volatile write buffer depth (pages) for non-reliable LUNs.
WRITE_BUFFER_PAGES = 8


class UfsError(Exception):
    """Raised on UFS protocol violations."""


@dataclass(frozen=True, slots=True)
class LunConfig:
    """Provisioning-time configuration of one logical unit."""

    lun_id: int
    name: str
    stream: str
    reliable_writes: bool
    bootable: bool = False


@dataclass(frozen=True, slots=True)
class LunDescriptor:
    """Host-visible LUN state (b_provisioning-style descriptor)."""

    lun_id: int
    name: str
    reliable_writes: bool
    bootable: bool
    #: current capacity in logical pages -- dynamic (§4.3)
    capacity_pages: int
    used_pages: int


class UfsDevice:
    """A UFS-like frontend over the stream FTL.

    Parameters
    ----------
    ftl:
        Backing FTL whose streams the LUNs map onto.
    luns:
        LUN configurations (stream names must exist in the FTL).
    """

    def __init__(self, ftl: Ftl, luns: list[LunConfig]) -> None:
        streams = set(ftl.stream_names())
        for lun in luns:
            if lun.stream not in streams:
                raise ValueError(f"LUN {lun.lun_id} references unknown stream "
                                 f"{lun.stream!r}")
        if len({lun.lun_id for lun in luns}) != len(luns):
            raise ValueError("duplicate LUN ids")
        self.ftl = ftl
        self._luns = {lun.lun_id: lun for lun in luns}
        #: per-LUN volatile write buffer: lpn -> payload (non-reliable only)
        self._write_buffer: dict[int, dict[int, bytes]] = {
            lun.lun_id: {} for lun in luns
        }
        self._lun_pages: dict[int, set[int]] = {lun.lun_id: set() for lun in luns}

    # -- descriptors -------------------------------------------------------------

    def describe(self, lun_id: int) -> LunDescriptor:
        """Current descriptor of a LUN (capacity re-queried: dynamic)."""
        lun = self._require(lun_id)
        return LunDescriptor(
            lun_id=lun.lun_id,
            name=lun.name,
            reliable_writes=lun.reliable_writes,
            bootable=lun.bootable,
            capacity_pages=self.ftl.stream_capacity_pages(lun.stream),
            used_pages=len(self._lun_pages[lun_id]),
        )

    def luns(self) -> list[LunDescriptor]:
        """Descriptors of all LUNs."""
        return [self.describe(lun_id) for lun_id in sorted(self._luns)]

    # -- data path ----------------------------------------------------------------

    def write(self, lun_id: int, lpn: int, payload: bytes) -> None:
        """Write one logical page to a LUN.

        Reliable LUNs flush straight through to flash before returning.
        Normal LUNs buffer the write; it reaches flash when the buffer
        spills or on an explicit :meth:`sync`.
        """
        lun = self._require(lun_id)
        self._lun_pages[lun_id].add(lpn)
        if lun.reliable_writes:
            self.ftl.write(lpn, payload, lun.stream)
            return
        buffer = self._write_buffer[lun_id]
        buffer[lpn] = bytes(payload)
        if len(buffer) > WRITE_BUFFER_PAGES:
            self._spill(lun, buffer)

    def read(self, lun_id: int, lpn: int) -> bytes:
        """Read one logical page (buffer hits served from the buffer)."""
        lun = self._require(lun_id)
        if lpn not in self._lun_pages[lun_id]:
            raise UfsError(f"LUN {lun_id} has no page {lpn}")
        buffered = self._write_buffer[lun_id].get(lpn)
        if buffered is not None:
            return buffered
        return self.ftl.read(lpn).payload

    def sync(self, lun_id: int | None = None) -> int:
        """Flush buffered writes to flash; returns pages flushed."""
        flushed = 0
        for current_id, lun in self._luns.items():
            if lun_id is not None and current_id != lun_id:
                continue
            buffer = self._write_buffer[current_id]
            flushed += len(buffer)
            self._spill(lun, buffer)
        return flushed

    def trim(self, lun_id: int, lpn: int) -> None:
        """Discard one logical page."""
        self._require(lun_id)
        self._lun_pages[lun_id].discard(lpn)
        self._write_buffer[lun_id].pop(lpn, None)
        if self.ftl.page_map.is_mapped(lpn):
            self.ftl.trim(lpn)

    # -- power loss ------------------------------------------------------------------

    def power_cut(self) -> dict[int, int]:
        """Sudden power loss: volatile buffers vanish.

        Returns pages lost per LUN.  Reliable LUNs always report zero --
        their writes were acked only after reaching flash.  Pages lost
        from normal LUNs that were never flushed disappear entirely.
        """
        lost: dict[int, int] = {}
        for lun_id, buffer in self._write_buffer.items():
            lost[lun_id] = len(buffer)
            for lpn in buffer:
                if not self.ftl.page_map.is_mapped(lpn):
                    self._lun_pages[lun_id].discard(lpn)
            buffer.clear()
        return lost

    # -- internals ----------------------------------------------------------------------

    def _require(self, lun_id: int) -> LunConfig:
        lun = self._luns.get(lun_id)
        if lun is None:
            raise UfsError(f"no such LUN {lun_id}")
        return lun

    def _spill(self, lun: LunConfig, buffer: dict[int, bytes]) -> None:
        for lpn, payload in buffer.items():
            self.ftl.write(lpn, payload, lun.stream)
        buffer.clear()
