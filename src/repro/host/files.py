"""File model: kinds, metadata, and classifier-visible attributes.

§4.2/§4.4 of the paper classify files along two axes -- system
functionality and user preference -- using "file attributes, as well as
known keywords in content" and visual traits for media.  This module
defines the file-level record both the file system and the classifier
operate on.  Attribute names mirror the feature families in Khan et al.
(USENIX Security '21), the study the paper's 79%-accuracy figure cites:
recency, access history, file type, duplication, sharing provenance, and
content sensitivity markers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = ["FileKind", "FileAttributes", "FileRecord", "MEDIA_KINDS", "SYSTEM_KINDS"]


class FileKind(enum.Enum):
    """Coarse file type, the first classification axis."""

    OS_SYSTEM = "os_system"          # kernel, firmware, system libs
    APP_EXECUTABLE = "app_executable"
    APP_METADATA = "app_metadata"    # preferences, caches, SQLite DBs
    DOCUMENT = "document"
    PHOTO = "photo"
    VIDEO = "video"
    AUDIO = "audio"
    DOWNLOAD = "download"
    MESSAGE_MEDIA = "message_media"  # media received via messaging apps


#: Media kinds -- the bulk of personal data ("media files comprise over
#: half of mobile storage data", §4.2).
MEDIA_KINDS = frozenset(
    {FileKind.PHOTO, FileKind.VIDEO, FileKind.AUDIO, FileKind.MESSAGE_MEDIA}
)

#: Kinds that are always SYS regardless of the learned model (§4.4:
#: "OS files are easily identifiable as critical to device operation").
SYSTEM_KINDS = frozenset(
    {FileKind.OS_SYSTEM, FileKind.APP_EXECUTABLE, FileKind.APP_METADATA}
)


@dataclass(frozen=True, slots=True)
class FileAttributes:
    """Classifier-visible attributes of one file.

    All times are simulation years; counters are lifetime totals.
    """

    created_years: float = 0.0
    last_access_years: float = 0.0
    access_count: int = 0
    modify_count: int = 0
    #: received from another user (messaging/social provenance)
    shared_from_other: bool = False
    #: user explicitly favorited / starred
    user_favorite: bool = False
    #: detected faces of frequent contacts / family (visual significance)
    has_known_faces: bool = False
    #: screenshot or ephemeral capture
    is_screenshot: bool = False
    #: near-duplicates elsewhere on the device
    duplicate_count: int = 0
    #: a cloud copy exists (enables §4.3 repair)
    cloud_backed: bool = False
    #: fraction of content flagged sensitive by keyword/content scan
    sensitivity_score: float = 0.0


@dataclass(slots=True)
class FileRecord:
    """One file known to the host file system."""

    file_id: int
    path: str
    kind: FileKind
    size_bytes: int
    attributes: FileAttributes = field(default_factory=FileAttributes)
    #: LPNs backing the file, in order
    extents: list[int] = field(default_factory=list)
    deleted: bool = False

    @property
    def is_media(self) -> bool:
        """Whether the file is a media file."""
        return self.kind in MEDIA_KINDS

    @property
    def is_system(self) -> bool:
        """Whether the file is unconditionally critical (SYS)."""
        return self.kind in SYSTEM_KINDS

    def touch(self, now_years: float) -> None:
        """Record a read access."""
        self.attributes = replace(
            self.attributes,
            last_access_years=now_years,
            access_count=self.attributes.access_count + 1,
        )

    def mark_modified(self, now_years: float) -> None:
        """Record a write/update."""
        self.attributes = replace(
            self.attributes,
            last_access_years=now_years,
            modify_count=self.attributes.modify_count + 1,
        )

    def age_years(self, now_years: float) -> float:
        """Time since creation."""
        return max(0.0, now_years - self.attributes.created_years)

    def idle_years(self, now_years: float) -> float:
        """Time since last access."""
        return max(0.0, now_years - self.attributes.last_access_years)
