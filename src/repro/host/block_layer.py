"""Host block layer: routes logical pages to device streams with hints.

Figure 2's middle box.  The block layer owns the default placement rule
("new file data will first be written to high-endurance pseudo-QLC
memory", §4.4) and carries per-write classification hints from host to
device -- the "LBA hints" of §4.3.  Re-placement decisions made later by
the classifier daemon go through :meth:`relocate`.
"""

from __future__ import annotations

from repro.ftl.ftl import Ftl

from .files import FileRecord
from .hints import Placement

__all__ = ["BlockLayer"]


class BlockLayer:
    """Logical-page I/O between the file system and the FTL.

    Parameters
    ----------
    ftl:
        Device FTL with (at least) ``sys_stream`` and ``spare_stream``.
    sys_stream, spare_stream:
        Stream names for the two partitions.
    """

    def __init__(self, ftl: Ftl, sys_stream: str = "sys", spare_stream: str = "spare") -> None:
        self.ftl = ftl
        self.sys_stream = sys_stream
        self.spare_stream = spare_stream
        #: sticky placement decisions by LPN (set by the daemon)
        self._placement: dict[int, Placement] = {}
        # the device-visible logical page size is the smaller of the two
        # partitions' payload capacities so data can move freely between them
        self.page_bytes = min(
            ftl.logical_page_bytes(sys_stream), ftl.logical_page_bytes(spare_stream)
        )

    # -- placement -----------------------------------------------------------

    def placement_of(self, lpn: int) -> Placement:
        """Current placement decision for an LPN (default SYS)."""
        return self._placement.get(lpn, Placement.SYS)

    def stream_for(self, placement: Placement) -> str:
        """Stream name implementing a placement."""
        return self.sys_stream if placement is Placement.SYS else self.spare_stream

    # -- I/O --------------------------------------------------------------------

    def write_page(self, lpn: int, payload: bytes, file: FileRecord | None = None) -> None:
        """Write a page, honouring its sticky placement (default SYS)."""
        placement = self.placement_of(lpn)
        self.ftl.write(lpn, payload, self.stream_for(placement))

    def read_page(self, lpn: int) -> bytes:
        """Read a page's decoded payload (may carry residual errors)."""
        return self.ftl.read(lpn).payload

    def read_page_audited(self, lpn: int):
        """Read with full ECC audit info (for the scrubber)."""
        return self.ftl.read(lpn)

    def trim_page(self, lpn: int) -> None:
        """Host discard of a page."""
        self._placement.pop(lpn, None)
        self.ftl.trim(lpn)

    def relocate(self, lpn: int, placement: Placement) -> None:
        """Move an LPN to the partition implementing ``placement``.

        No-op when already there.  The relocation reads through the
        current partition's ECC and re-encodes with the target's, so a
        SPARE->SYS rescue also refreshes/strengthens protection.
        """
        if self.placement_of(lpn) is placement:
            return
        self._placement[lpn] = placement
        if self.ftl.page_map.is_mapped(lpn):
            self.ftl.relocate(lpn, self.stream_for(placement))

    # -- capacity -----------------------------------------------------------------

    def capacity_pages(self) -> int:
        """Current total capacity in logical pages (capacity variance)."""
        return self.ftl.stream_capacity_pages(self.sys_stream) + self.ftl.stream_capacity_pages(
            self.spare_stream
        )
