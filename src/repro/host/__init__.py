"""Host substrate: file model, capacity-variant file system, block layer.

The host half of Figure 2: a flat file system allocating logical-page
extents, a block layer routing pages to device streams, and the hint
channel carrying classification decisions to the device.
"""

from .block_layer import BlockLayer
from .files import MEDIA_KINDS, SYSTEM_KINDS, FileAttributes, FileKind, FileRecord
from .filesystem import FileSystem, FsFullError
from .hints import Placement, PlacementHint
from .reduction import ReductionReport, analyze, compress_savings, dedup_savings
from .ufs import LunConfig, LunDescriptor, UfsDevice, UfsError

__all__ = [
    "BlockLayer",
    "MEDIA_KINDS",
    "SYSTEM_KINDS",
    "FileAttributes",
    "FileKind",
    "FileRecord",
    "FileSystem",
    "FsFullError",
    "Placement",
    "PlacementHint",
    "ReductionReport",
    "analyze",
    "compress_savings",
    "dedup_savings",
    "LunConfig",
    "LunDescriptor",
    "UfsDevice",
    "UfsError",
]
