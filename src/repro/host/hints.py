"""Host-to-device placement hints.

§4.3: "classification information is sent to the storage device for each
stored data block ... using LBA hints from the host."  We model the hint
channel as a small enum (which partition) plus a structured record the
classifier daemon emits per file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Placement", "PlacementHint"]


class Placement(enum.Enum):
    """Which physical partition should hold the data."""

    SYS = "sys"      # critical: pseudo-QLC, strong ECC, wear-leveled
    SPARE = "spare"  # degradable: PLC, weak/no ECC, no wear leveling


@dataclass(frozen=True, slots=True)
class PlacementHint:
    """One classification decision flowing host -> device.

    Attributes
    ----------
    file_id:
        Host file the hint concerns.
    placement:
        Target partition.
    confidence:
        Classifier confidence in [0, 1]; the device may ignore
        low-confidence demotions (conservative policy, §4.2).
    """

    file_id: int
    placement: Placement
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
