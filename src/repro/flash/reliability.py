"""Endurance and reliability parameter tables for NAND technologies.

The paper's argument rests on published *relative* endurance figures
(§2.2, §4.1):

* early SLC endured ~100K program/erase cycles (PEC);
* QLC endures ~1K PEC;
* PLC endurance is expected to be ~6-10x below TLC and ~2x below QLC.

We encode a single parameter table consistent with those ratios and with
the broader literature (MLC ~10K, TLC ~3K).  All lifetime experiments pull
their constants from here so the reproduction cannot silently diverge from
the paper's premises.

Pseudo-modes recover endurance: operating a cell below its native density
widens voltage margins (see :class:`repro.flash.cell.CellMode`), so a
pseudo-QLC block on PLC silicon behaves approximately like native QLC.
We model pseudo-mode endurance as the native endurance of the *operating*
density, capped by a silicon-quality factor of the underlying technology.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cell import CellMode, CellTechnology

__all__ = [
    "EnduranceSpec",
    "ENDURANCE_TABLE",
    "endurance_pec",
    "RETENTION_SPEC_YEARS",
    "retention_years",
]


@dataclass(frozen=True, slots=True)
class EnduranceSpec:
    """Endurance and baseline error parameters for one native technology.

    Attributes
    ----------
    rated_pec:
        Program/erase cycles the technology is rated for at nominal
        retention (the wear-out point used by warranties).
    baseline_rber:
        Raw bit error rate of a freshly written page on pristine silicon.
    rber_growth:
        Exponent base controlling how RBER grows with wear; see
        :mod:`repro.flash.error_model`.
    """

    rated_pec: int
    baseline_rber: float
    rber_growth: float


#: Native endurance table.  Ratios follow §2.2/§4.1 of the paper:
#: SLC 100K, QLC 1K, PLC = QLC/2 = 500 = TLC/6 (within the 6-10x band).
ENDURANCE_TABLE: dict[CellTechnology, EnduranceSpec] = {
    CellTechnology.SLC: EnduranceSpec(rated_pec=100_000, baseline_rber=1e-8, rber_growth=2.0),
    CellTechnology.MLC: EnduranceSpec(rated_pec=10_000, baseline_rber=1e-7, rber_growth=2.2),
    CellTechnology.TLC: EnduranceSpec(rated_pec=3_000, baseline_rber=1e-6, rber_growth=2.4),
    CellTechnology.QLC: EnduranceSpec(rated_pec=1_000, baseline_rber=5e-6, rber_growth=2.6),
    CellTechnology.PLC: EnduranceSpec(rated_pec=500, baseline_rber=2e-5, rber_growth=2.8),
}

#: Silicon-quality derating applied when a dense technology is operated in a
#: pseudo mode.  A pseudo-QLC block on PLC silicon does not *quite* reach
#: native-QLC endurance because the underlying cells are smaller and noisier.
_PSEUDO_QUALITY_FACTOR = 0.9

#: Nominal retention (years until retention errors dominate at rated PEC)
#: per *operating* density.  Denser operating points leak into adjacent
#: levels sooner.  JEDEC consumer rating is 1 year at rated endurance.
RETENTION_SPEC_YEARS: dict[int, float] = {1: 10.0, 2: 6.0, 3: 3.0, 4: 1.5, 5: 0.75}


def endurance_pec(mode: CellMode) -> int:
    """Rated PEC for a cell technology operated in ``mode``.

    Native modes read straight from :data:`ENDURANCE_TABLE`.  Pseudo modes
    take the native endurance of the operating density, derated by
    :data:`_PSEUDO_QUALITY_FACTOR` for the denser underlying silicon.
    """
    native = ENDURANCE_TABLE[mode.technology].rated_pec
    if not mode.is_pseudo:
        return native
    operating_native = ENDURANCE_TABLE[CellTechnology(mode.operating_bits)].rated_pec
    return int(operating_native * _PSEUDO_QUALITY_FACTOR)


def retention_years(mode: CellMode) -> float:
    """Nominal data-retention horizon (years) for the operating density."""
    return RETENTION_SPEC_YEARS[mode.operating_bits]
