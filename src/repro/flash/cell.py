"""NAND flash cell technologies and pseudo-density operating modes.

A physical cell is manufactured as a particular technology (SLC..PLC) and
stores ``bits_per_cell`` bits by dividing its threshold-voltage window into
``2**bits_per_cell`` levels.  Denser cells squeeze more levels into the same
window, which shrinks the margin between adjacent levels and therefore
reduces endurance and raises the raw bit error rate (RBER).

The paper's §4.3 additionally requires *pseudo-modes*: a dense cell
(e.g. PLC) may be **operated** at a lower density (pseudo-QLC, pseudo-TLC,
pSLC).  Operating a dense cell at fewer bits per cell widens the per-level
voltage margin, which recovers much of the endurance lost to density --
this is how SOS "resuscitates" worn PLC blocks as pseudo-TLC, and why the
SYS partition uses pseudo-QLC ("stored conservatively ... with decreased
density") rather than native QLC silicon.

The key abstraction is :class:`CellMode`, which pairs the manufactured
technology with the operating density.  Endurance and error behaviour are
functions of *both*: wear accrues on the physical cell, margins come from
the operating mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CellTechnology",
    "CellMode",
    "native_mode",
    "pseudo_mode",
]


class CellTechnology(enum.Enum):
    """Manufactured NAND cell technology (bits the silicon was built for)."""

    SLC = 1
    MLC = 2
    TLC = 3
    QLC = 4
    PLC = 5

    @property
    def bits_per_cell(self) -> int:
        """Native storage density in bits per physical cell."""
        return self.value

    @property
    def levels(self) -> int:
        """Number of distinguishable threshold-voltage levels."""
        return 2 ** self.value

    def density_gain_over(self, other: "CellTechnology") -> float:
        """Fractional density improvement of ``self`` relative to ``other``.

        Example: ``PLC.density_gain_over(TLC)`` is ``(5-3)/3 == 0.666...``,
        the paper's "66%" (§4.1).
        """
        return (self.bits_per_cell - other.bits_per_cell) / other.bits_per_cell

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class CellMode:
    """A physical cell technology operated at a (possibly reduced) density.

    Attributes
    ----------
    technology:
        The manufactured cell type.  Wear-out physics belong to this.
    operating_bits:
        Bits per cell actually programmed.  Must not exceed the native
        density.  When lower, the mode is a *pseudo* mode (pseudo-QLC on
        PLC silicon, etc.) with wider voltage margins.
    """

    technology: CellTechnology
    operating_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.operating_bits <= self.technology.bits_per_cell:
            raise ValueError(
                f"operating_bits={self.operating_bits} invalid for "
                f"{self.technology.name} (native {self.technology.bits_per_cell})"
            )

    @property
    def is_pseudo(self) -> bool:
        """True when the cell is operated below its native density."""
        return self.operating_bits < self.technology.bits_per_cell

    @property
    def operating_levels(self) -> int:
        """Voltage levels actually used by this mode."""
        return 2**self.operating_bits

    @property
    def margin_factor(self) -> float:
        """Relative per-level voltage margin versus native operation.

        The native window holds ``2**native_bits`` levels; a pseudo mode
        spreads ``2**operating_bits`` levels over the same window, so each
        level enjoys ``2**(native-operating)`` times the margin.  Error and
        endurance models scale with this.
        """
        return float(2 ** (self.technology.bits_per_cell - self.operating_bits))

    @property
    def name(self) -> str:
        """Human-readable mode name, e.g. ``PLC`` or ``pQLC(PLC)``."""
        if not self.is_pseudo:
            return self.technology.name
        pseudo = CellTechnology(self.operating_bits).name
        return f"p{pseudo}({self.technology.name})"

    def capacity_fraction(self) -> float:
        """Fraction of native capacity delivered by this mode.

        pseudo-QLC on PLC silicon delivers 4/5 of the native PLC capacity.
        """
        return self.operating_bits / self.technology.bits_per_cell

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def native_mode(technology: CellTechnology) -> CellMode:
    """The full-density operating mode for ``technology``."""
    return CellMode(technology, technology.bits_per_cell)


def pseudo_mode(technology: CellTechnology, operating_bits: int) -> CellMode:
    """A reduced-density operating mode of ``technology``.

    Raises ``ValueError`` if ``operating_bits`` is not strictly below the
    native density (use :func:`native_mode` for full density).
    """
    if operating_bits >= technology.bits_per_cell:
        raise ValueError(
            f"pseudo mode requires operating_bits < {technology.bits_per_cell}"
        )
    return CellMode(technology, operating_bits)
