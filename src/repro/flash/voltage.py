"""Threshold-voltage distribution model: RBER from first principles.

§2.1-§2.2 describe the physics our empirical
:class:`~repro.flash.error_model.ErrorModel` abstracts: cells are charged
to one of ``2^bits`` threshold-voltage levels inside a fixed window;
"cells can store more bits using more precise, slower programming which
differentiates between smaller voltage level ranges"; wear and retention
widen and shift the per-level charge distributions until neighbours
overlap and reads misclassify.

This module derives the raw bit error rate from that picture directly:

* levels are Gaussians, evenly spaced in a normalized [0, 1] window;
* programming noise sets the fresh sigma; wear adds variance (oxide
  damage) and retention shifts distributions downward (charge leakage)
  while widening them;
* a read misclassifies when the cell's voltage crosses the midpoint
  between adjacent levels; with Gray coding, one level misread costs one
  bit flip out of ``bits`` stored.

It exists to *validate* the empirical model: the test suite checks both
models agree on every qualitative ordering the experiments rely on
(denser is worse, pseudo-modes relieve, wear and retention hurt).
"""

from __future__ import annotations

import math

from .cell import CellMode

__all__ = ["VoltageModel"]

#: Fresh programming-noise sigma as a fraction of the full window.
_SIGMA_FRESH = 0.010
#: Additional sigma (window fraction) at rated wear.
_SIGMA_WEAR = 0.012
#: Mean downward drift (window fraction) per retention year, amplified
#: by wear (damaged oxide leaks faster).
_DRIFT_PER_YEAR = 0.004
#: Program precision improves for lower densities (slower ISPP with
#: finer steps is *possible*, but pseudo modes reuse the native pulse),
#: so sigma is technology-fixed while spacing is mode-dependent.


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class VoltageModel:
    """Gaussian threshold-voltage model for one operating mode.

    Parameters
    ----------
    mode:
        Cell technology + operating density.
    rated_pec:
        Wear normalization (defaults to the mode's table rating when
        used through :meth:`rber`); exposed for calibration studies.
    """

    def __init__(self, mode: CellMode, rated_pec: int | None = None) -> None:
        from .reliability import endurance_pec

        self.mode = mode
        self.levels = mode.operating_levels
        self.spacing = 1.0 / (self.levels - 1) if self.levels > 1 else 1.0
        self.rated_pec = rated_pec if rated_pec is not None else endurance_pec(mode)

    def sigma(self, pec: float) -> float:
        """Per-level voltage sigma at a given wear (window fraction)."""
        if pec < 0:
            raise ValueError("pec must be non-negative")
        return _SIGMA_FRESH + _SIGMA_WEAR * (pec / self.rated_pec)

    def drift(self, pec: float, years: float) -> float:
        """Mean retention drift of a level at given wear/age."""
        if years < 0:
            raise ValueError("years must be non-negative")
        return _DRIFT_PER_YEAR * years * (1.0 + pec / self.rated_pec)

    def level_error_prob(self, pec: float, years: float = 0.0) -> float:
        """Probability a cell is read at a neighbouring level.

        The cell's distribution N(mu - drift, sigma^2) is compared to the
        read thresholds at mu +- spacing/2; an interior level can err in
        both directions.
        """
        sigma = self.sigma(pec)
        drift = self.drift(pec, years)
        half = self.spacing / 2.0
        # downward crossing (drift moves the mean toward the lower threshold)
        p_down = _phi((-half + drift) / sigma)
        # upward crossing
        p_up = 1.0 - _phi((half + drift) / sigma)
        interior_fraction = max(0.0, (self.levels - 2) / self.levels)
        edge_fraction = 1.0 - interior_fraction
        # edge levels can only err inward; approximate with the larger side
        p_edge = max(p_down, p_up)
        return interior_fraction * (p_down + p_up) + edge_fraction * p_edge

    def rber(self, pec: float, years: float = 0.0) -> float:
        """Raw bit error rate: one misread level costs ~1 bit of ``bits``
        under Gray coding."""
        bits = self.mode.operating_bits
        return min(0.5, self.level_error_prob(pec, years) / bits)
