"""NAND operation latency model.

§4.5 ("Performance") argues PLC's slower access is acceptable because
SPARE holds low-priority data "mostly accessed using large sequential
reads", and that "error tolerance for degraded data ... can further
reduce read times".  Testing that requires a latency model:

* **program** time grows steeply with operating bits per cell -- each
  extra bit doubles the number of target levels the incremental-step-
  pulse-programming (ISPP) loop must discriminate;
* **read** time grows with the number of sensing levels
  (``2^bits - 1`` reference comparisons worst-case);
* **read retry**: when a page fails hard-decision ECC, the controller
  re-reads with shifted reference voltages several times (and finally a
  soft-sensing pass) -- each retry adds a full sense latency.  Error-
  tolerant reads skip retries entirely: whatever the first sense returns
  is good enough, which is exactly the §4.5 latency win;
* **erase** is roughly density-independent.

Values are calibrated to public datasheet ranges (SLC ~25 us reads /
~200 us programs; QLC ~120 us reads / ~2 ms programs) and extrapolated
one step for PLC; experiments rely on the *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cell import CellMode

__all__ = ["TimingModel", "OperationTimes"]

#: Base sense latency per reference-level group (us).
_SENSE_BASE_US = 20.0
#: Extra sense cost per additional operating bit (levels double per bit).
_SENSE_PER_BIT_US = {1: 5.0, 2: 15.0, 3: 40.0, 4: 95.0, 5: 210.0}
#: ISPP program time by operating bits (us).
_PROGRAM_US = {1: 200.0, 2: 600.0, 3: 1200.0, 4: 2200.0, 5: 4200.0}
#: Block erase time (us), density-independent to first order.
_ERASE_US = 3500.0
#: Data transfer over the channel per 4 KB page (us).
_TRANSFER_US = 10.0


@dataclass(frozen=True, slots=True)
class OperationTimes:
    """Latencies (microseconds) for one operating mode."""

    read_us: float
    program_us: float
    erase_us: float

    def sequential_read_mbps(self, page_bytes: int, queue_depth: int = 4) -> float:
        """Sustained sequential read bandwidth (MB/s) at a queue depth.

        Sequential streams pipeline sensing across planes/dies; queue
        depth approximates that overlap.
        """
        effective_us = self.read_us / queue_depth + _TRANSFER_US
        return page_bytes / effective_us  # bytes/us == MB/s


class TimingModel:
    """Latency calculator for a cell operating mode.

    Parameters
    ----------
    mode:
        Cell technology + operating density.
    """

    def __init__(self, mode: CellMode) -> None:
        self.mode = mode
        bits = mode.operating_bits
        self._read_us = _SENSE_BASE_US + _SENSE_PER_BIT_US[bits]
        self._program_us = _PROGRAM_US[bits]

    def times(self) -> OperationTimes:
        """Nominal (retry-free) operation latencies."""
        return OperationTimes(
            read_us=self._read_us, program_us=self._program_us, erase_us=_ERASE_US
        )

    def read_with_retries(self, retries: int) -> float:
        """Read latency including ``retries`` re-sense passes (us).

        Each retry is a full sense with shifted reference voltages; the
        final soft-sensing pass (when ``retries >= 3``) costs 2x a sense.
        """
        if retries < 0:
            raise ValueError("retries must be non-negative")
        total = self._read_us * (1 + retries)
        if retries >= 3:
            total += self._read_us  # soft-sensing surcharge
        return total

    def expected_read_us(
        self, page_failure_prob: float, max_retries: int = 4, error_tolerant: bool = False
    ) -> float:
        """Expected read latency given the page's hard-decode failure rate.

        Parameters
        ----------
        page_failure_prob:
            Probability the initial hard-decision decode fails.
        max_retries:
            Retry budget before returning best-effort data.
        error_tolerant:
            When True (SPARE semantics, §4.5) the first sense is always
            accepted -- the application tolerates the errors -- so the
            expected latency is simply the nominal read time.
        """
        if not 0.0 <= page_failure_prob <= 1.0:
            raise ValueError("page_failure_prob must be a probability")
        if error_tolerant:
            return self._read_us
        # retries succeed with the same (approximately independent)
        # probability; truncated geometric expectation
        expected = 0.0
        p_continue = 1.0
        for attempt in range(max_retries + 1):
            p_stop = (1.0 - page_failure_prob) if attempt < max_retries else 1.0
            expected += p_continue * p_stop * self.read_with_retries(attempt)
            p_continue *= 1.0 - p_stop
        return expected
