"""NAND flash substrate: cells, geometry, error physics, blocks, chips.

This package simulates the storage medium the paper's design manipulates
(§2.1-§2.2): multi-level cells with density-dependent endurance, erase
blocks with sequential-program constraints, and an analytic raw-bit-error
model covering wear, retention, and read disturb.
"""

from .block import Block, PageState, ProgramError
from .cell import CellMode, CellTechnology, native_mode, pseudo_mode
from .chip import FlashChip, PhysicalAddress
from .error_model import ErrorModel, RberBreakdown
from .geometry import MOBILE_GEOMETRY, SMALL_GEOMETRY, Geometry
from .timing import OperationTimes, TimingModel
from .voltage import VoltageModel
from .reliability import (
    ENDURANCE_TABLE,
    RETENTION_SPEC_YEARS,
    EnduranceSpec,
    endurance_pec,
    retention_years,
)

__all__ = [
    "Block",
    "PageState",
    "ProgramError",
    "CellMode",
    "CellTechnology",
    "native_mode",
    "pseudo_mode",
    "FlashChip",
    "PhysicalAddress",
    "ErrorModel",
    "RberBreakdown",
    "Geometry",
    "SMALL_GEOMETRY",
    "MOBILE_GEOMETRY",
    "ENDURANCE_TABLE",
    "RETENTION_SPEC_YEARS",
    "EnduranceSpec",
    "endurance_pec",
    "retention_years",
    "OperationTimes",
    "TimingModel",
    "VoltageModel",
]
