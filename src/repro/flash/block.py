"""Bit-exact erase-block simulation.

A :class:`Block` stores real page payloads and injects bit errors on read
according to the analytic :class:`~repro.flash.error_model.ErrorModel`, so
that approximate-storage experiments (E6, A1) observe genuine corrupted
bytes rather than summary statistics.

Blocks follow NAND programming constraints from §2.1:

* pages within a block must be programmed sequentially (no rewrite without
  erase);
* erase wipes the whole block and increments the block's PEC counter;
* a block operated in a pseudo mode exposes proportionally fewer bytes.

A block whose PEC exceeds its mode's rated endurance does not refuse
writes -- real flash does not either -- but its RBER keeps climbing, which
is exactly the degradation SOS exploits and guards against.

Two representations coexist per page:

* **bit-exact** -- :meth:`Block.program`/:meth:`Block.read` materialize and
  corrupt real page bytes (the seed behaviour, unchanged);
* **analytic** -- :meth:`Block.program_analytic`/:meth:`Block.read_analytic`
  keep every piece of wear/retention/read-disturb book-keeping (and the
  same sequential-programming rules) but never allocate payload bytes or
  consume the corruption RNG; the read path returns the page's RBER so
  callers can accrue expected errors instead of injecting them.  Valid
  only for content-independent protection (no codec, no parity) -- the
  FTL enforces that.

Per-page metadata (written-at time, reads since write, PEC at write) lives
in flat numpy arrays either way, so analytic batch reads
(:meth:`Block.read_analytic_many`) evaluate a whole block's RBER in one
vectorized :meth:`~repro.flash.error_model.ErrorModel.rber_many` call.

Chip-wide per-block state (PEC, retirement, usable pages, last write time)
lives in a shared :class:`BlockArrays` owned by the chip; ``Block.pec`` and
``Block.retired`` are array-backed properties, so both direct attribute
writes (tests do ``block.pec = 100_000``) and the vectorized GC victim
selector observe the same numbers with no mirroring step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cell import CellMode
from .error_model import ErrorModel
from .geometry import Geometry

__all__ = ["Block", "BlockArrays", "PageArrays", "PageState", "ProgramError"]


class ProgramError(Exception):
    """Raised on violations of NAND programming rules."""


class BlockArrays:
    """Shared per-block state columns for one chip's blocks.

    One row per block; every field the GC victim selector and wear
    leveler score on, kept incrementally up to date by the owning
    :class:`Block`'s operations (program/erase/retire/reconfigure) so
    victim selection is a masked argmin over these arrays instead of
    per-candidate Python attribute walks.
    """

    __slots__ = ("pec", "rated_pec", "usable_pages", "retired", "last_write_years")

    def __init__(self, n_blocks: int) -> None:
        self.pec = np.zeros(n_blocks, dtype=np.int64)
        self.rated_pec = np.ones(n_blocks, dtype=np.int64)
        self.usable_pages = np.zeros(n_blocks, dtype=np.int64)
        self.retired = np.zeros(n_blocks, dtype=bool)
        #: newest programmed page's write time per block; 0.0 when empty.
        #: Maintained on program/erase, equal to
        #: :meth:`Block.last_write_time_years` because pages program
        #: sequentially under a monotonic clock.
        self.last_write_years = np.zeros(n_blocks, dtype=np.float64)


class PageArrays:
    """Chip-wide per-page metadata columns, one row per *native* page.

    Blocks operate on numpy views of their window, so single-block code
    is unchanged while chip-level batch operations (analytic reads that
    scatter across many blocks) gather and scatter on the flat arrays
    directly -- no per-block Python dispatch on the hot path.  Pseudo
    modes simply never touch the tail rows of their window.
    """

    __slots__ = ("written_at", "reads", "pec_at_write", "programmed")

    def __init__(self, n_pages: int) -> None:
        self.written_at = np.zeros(n_pages, dtype=np.float64)
        self.reads = np.zeros(n_pages, dtype=np.int64)
        self.pec_at_write = np.zeros(n_pages, dtype=np.int64)
        self.programmed = np.zeros(n_pages, dtype=bool)


class PageState:
    """Live book-keeping view of a single physical page.

    ``data`` reads and writes the stored payload in place (fault-injection
    tests corrupt pages by assigning it); the remaining fields mirror the
    block's per-page metadata arrays.
    """

    __slots__ = ("_block", "_page_index")

    def __init__(self, block: Block, page_index: int) -> None:
        self._block = block
        self._page_index = page_index

    @property
    def data(self) -> np.ndarray | None:
        return self._block._data[self._page_index]

    @data.setter
    def data(self, value: np.ndarray | None) -> None:
        self._block._data[self._page_index] = value

    @property
    def written_at_years(self) -> float:
        return float(self._block._written_at[self._page_index])

    @property
    def reads_since_write(self) -> int:
        return int(self._block._reads[self._page_index])

    @property
    def pec_at_write(self) -> int:
        """PEC of the block at the moment this page was programmed."""
        return int(self._block._pec_at_write[self._page_index])


@dataclass(slots=True)
class _BlockStats:
    programs: int = 0
    reads: int = 0
    injected_bit_errors: int = 0
    #: analytic-path accrual: sum over reads of RBER x page bits
    expected_bit_errors: float = 0.0


class Block:
    """One erase block with real page payloads and stochastic bit errors.

    Parameters
    ----------
    geometry:
        Chip geometry (page size / pages per block at native density).
    mode:
        Operating :class:`CellMode`.  Page payload capacity scales with
        ``mode.capacity_fraction()``.
    rng:
        Source of randomness for error injection.  Deterministic when
        seeded by the caller.
    arrays:
        Shared :class:`BlockArrays` this block's row lives in (the chip
        passes its own); standalone blocks allocate a private 1-row set.
    index:
        This block's row in ``arrays``.
    """

    def __init__(
        self,
        geometry: Geometry,
        mode: CellMode,
        rng: np.random.Generator,
        arrays: BlockArrays | None = None,
        index: int = 0,
        pages: PageArrays | None = None,
    ) -> None:
        self.geometry = geometry
        self._rng = rng
        self._arrays = arrays if arrays is not None else BlockArrays(1)
        self._index = index if arrays is not None else 0
        self.stats = _BlockStats()
        self._mode = mode
        self._error_model = ErrorModel(mode)
        n_pages = geometry.pages_per_block
        self._data: list[np.ndarray | None] = [None] * n_pages
        # per-page metadata: views into the chip's shared PageArrays (or
        # a private single-block set), so block-local updates and chip
        # batch operations observe one store
        page_arrays = pages if pages is not None else PageArrays(n_pages)
        lo = self._index * n_pages if pages is not None else 0
        self._written_at = page_arrays.written_at[lo: lo + n_pages]
        self._reads = page_arrays.reads[lo: lo + n_pages]
        self._pec_at_write = page_arrays.pec_at_write[lo: lo + n_pages]
        self._programmed = page_arrays.programmed[lo: lo + n_pages]
        self._next_page = 0
        i = self._index
        self._arrays.pec[i] = 0
        self._arrays.retired[i] = False
        self._arrays.rated_pec[i] = self._error_model.rated_pec
        self._arrays.usable_pages[i] = self._usable_pages_for(mode)
        self._arrays.last_write_years[i] = 0.0

    def _usable_pages_for(self, mode: CellMode) -> int:
        return int(self.geometry.pages_per_block * mode.capacity_fraction())

    # -- shared-array-backed state ----------------------------------------

    @property
    def pec(self) -> int:
        """Accrued program/erase cycles."""
        return int(self._arrays.pec[self._index])

    @pec.setter
    def pec(self, value: int) -> None:
        self._arrays.pec[self._index] = value

    @property
    def retired(self) -> bool:
        """Whether the block has been taken out of service."""
        return bool(self._arrays.retired[self._index])

    @retired.setter
    def retired(self, value: bool) -> None:
        self._arrays.retired[self._index] = value

    # -- mode management -------------------------------------------------

    @property
    def mode(self) -> CellMode:
        """Current operating mode of the block."""
        return self._mode

    def reconfigure(self, mode: CellMode) -> None:
        """Switch the block's operating density (§4.3 resuscitation).

        The block must be erased first; density changes mid-data are not
        physically meaningful.  Accrued PEC carries over -- wear lives in
        the silicon, not the mode.
        """
        if self._programmed.any():
            raise ProgramError("cannot reconfigure a block holding data; erase first")
        if mode.technology is not self._mode.technology:
            raise ProgramError("cannot change manufactured technology of a block")
        self._mode = mode
        self._error_model = ErrorModel(mode)
        self._arrays.rated_pec[self._index] = self._error_model.rated_pec
        self._arrays.usable_pages[self._index] = self._usable_pages_for(mode)

    @property
    def page_capacity_bytes(self) -> int:
        """Bytes per page (independent of operating mode)."""
        return self.geometry.page_size_bytes

    @property
    def usable_pages(self) -> int:
        """Pages exposed at the current operating density.

        A wordline stores one page per operating bit (LSB/CSB/MSB/...), so
        a pseudo mode exposes ``operating_bits / native_bits`` of the
        native page count -- same page size, fewer pages.
        """
        return int(self._arrays.usable_pages[self._index])

    @property
    def error_model(self) -> ErrorModel:
        """Analytic RBER model for the current operating mode."""
        return self._error_model

    @property
    def rated_pec(self) -> int:
        """Rated endurance of the current operating mode."""
        return self._error_model.rated_pec

    @property
    def wear_ratio(self) -> float:
        """PEC consumed as a fraction of the current mode's rating."""
        return self.pec / self._error_model.rated_pec

    # -- NAND operations -------------------------------------------------

    def erase(self) -> None:
        """Erase the block, wiping all pages and incrementing PEC."""
        if self.retired:
            raise ProgramError("block is retired")
        self._arrays.pec[self._index] += 1
        self._data = [None] * self.geometry.pages_per_block
        self._written_at.fill(0.0)
        self._reads.fill(0)
        self._pec_at_write.fill(0)
        self._programmed.fill(False)
        self._next_page = 0
        self._arrays.last_write_years[self._index] = 0.0

    def _check_programmable(self, page_index: int) -> None:
        if self.retired:
            raise ProgramError("block is retired")
        if page_index != self._next_page:
            raise ProgramError(
                f"out-of-order program: expected page {self._next_page}, got {page_index}"
            )
        if page_index >= self.usable_pages:
            raise ProgramError(
                f"page {page_index} beyond usable range "
                f"({self.usable_pages} pages in mode {self._mode.name})"
            )

    def _record_program(self, page_index: int) -> None:
        self._written_at[page_index] = self._now_years
        self._reads[page_index] = 0
        self._pec_at_write[page_index] = self.pec
        self._programmed[page_index] = True
        self._next_page += 1
        self.stats.programs += 1
        self._arrays.last_write_years[self._index] = self._now_years

    def program(self, page_index: int, data: bytes) -> None:
        """Program one page.  Pages must be written in order, once each."""
        self._check_programmable(page_index)
        if len(data) > self.page_capacity_bytes:
            raise ProgramError(
                f"payload {len(data)}B exceeds page capacity "
                f"{self.page_capacity_bytes}B in mode {self._mode.name}"
            )
        self._data[page_index] = np.frombuffer(
            data.ljust(self.page_capacity_bytes, b"\x00"), dtype=np.uint8
        ).copy()
        self._record_program(page_index)

    def program_analytic(self, page_index: int) -> None:
        """Program one page without materializing payload bytes.

        Same ordering/capacity rules and wear book-keeping as
        :meth:`program`; the page is marked programmed but holds no data
        (reads must go through :meth:`read_analytic`).
        """
        self._check_programmable(page_index)
        self._record_program(page_index)

    def program_analytic_many(self, count: int) -> None:
        """Program the next ``count`` pages analytically in one step.

        Equivalent to ``count`` sequential :meth:`program_analytic`
        calls (pages are always programmed in order, so the batch form
        needs no page indices); per-page metadata updates collapse to
        array slice assignments.
        """
        if count <= 0:
            return
        if self.retired:
            raise ProgramError("block is retired")
        lo = self._next_page
        if lo + count > self.usable_pages:
            raise ProgramError(
                f"programming {count} pages from page {lo} exceeds usable range "
                f"({self.usable_pages} pages in mode {self._mode.name})"
            )
        self._written_at[lo: lo + count] = self._now_years
        self._reads[lo: lo + count] = 0
        self._pec_at_write[lo: lo + count] = self.pec
        self._programmed[lo: lo + count] = True
        self._next_page += count
        self.stats.programs += count
        self._arrays.last_write_years[self._index] = self._now_years

    def is_programmed(self, page_index: int) -> bool:
        """Whether the page has been programmed since the last erase."""
        return bool(self._programmed[page_index])

    @property
    def free_pages(self) -> int:
        """Pages still programmable before the next erase."""
        return self.usable_pages - self._next_page

    def read(self, page_index: int, now_years: float | None = None) -> bytes:
        """Read a page, injecting bit errors per the block's error model.

        Parameters
        ----------
        page_index:
            Page to read.
        now_years:
            Simulation time of the read; defaults to the block clock set
            via :meth:`advance_time`.
        """
        data = self._data[page_index]
        if data is None:
            raise ProgramError(f"page {page_index} is not programmed")
        now = self._now_years if now_years is None else now_years
        age = max(0.0, now - float(self._written_at[page_index]))
        rber = self._error_model.rber(
            pec=self.pec,
            years_since_write=age,
            reads_since_write=int(self._reads[page_index]),
        )
        self._reads[page_index] += 1
        self.stats.reads += 1
        return self._corrupt(data, rber)

    def read_analytic(self, page_index: int, now_years: float | None = None) -> float:
        """Read a page analytically: no bytes, no RNG; returns its RBER.

        Performs the same read book-keeping as :meth:`read` (read-disturb
        counter, block stats) and accrues ``rber x page bits`` into
        ``stats.expected_bit_errors`` in lieu of injected errors.
        """
        if not self._programmed[page_index]:
            raise ProgramError(f"page {page_index} is not programmed")
        now = self._now_years if now_years is None else now_years
        age = max(0.0, now - float(self._written_at[page_index]))
        rber = self._error_model.rber(
            pec=self.pec,
            years_since_write=age,
            reads_since_write=int(self._reads[page_index]),
        )
        self._reads[page_index] += 1
        self.stats.reads += 1
        self.stats.expected_bit_errors += rber * self.page_capacity_bytes * 8
        return rber

    def read_analytic_many(
        self, page_indices: np.ndarray, now_years: float | None = None
    ) -> np.ndarray:
        """Vectorized :meth:`read_analytic` over many pages of this block.

        One :meth:`~repro.flash.error_model.ErrorModel.rber_many` call
        evaluates every page's RBER; read-disturb counters and stats
        accrue in bulk.  Used by analytic GC migration, where a victim's
        whole live set is read at once.
        """
        idx = np.asarray(page_indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=np.float64)
        if not self._programmed[idx].all():
            raise ProgramError("read_analytic_many on unprogrammed page(s)")
        now = self._now_years if now_years is None else now_years
        ages = np.maximum(0.0, now - self._written_at[idx])
        rbers = self._error_model.rber_many(
            float(self.pec), ages, self._reads[idx].astype(np.float64)
        )
        # np.add.at: duplicate page indices (one page read twice in a
        # batch) must bump the read-disturb counter once per occurrence.
        # Their RBERs all use the pre-batch count -- an ulp-level
        # difference in expected_bit_errors vs sequential reads, never
        # in any mapping, wear, or FtlStats observable.
        np.add.at(self._reads, idx, 1)
        self.stats.reads += idx.size
        self.stats.expected_bit_errors += float(rbers.sum()) * self.page_capacity_bytes * 8
        return rbers

    def read_clean(self, page_index: int) -> bytes:
        """Read a page without error injection (oracle view for tests)."""
        data = self._data[page_index]
        if data is None:
            raise ProgramError(f"page {page_index} is not programmed")
        return data.tobytes()

    def rber_now(self, page_index: int, now_years: float | None = None) -> float:
        """Predicted RBER for a page at the current stress point."""
        if not self._programmed[page_index]:
            raise ProgramError(f"page {page_index} is not programmed")
        now = self._now_years if now_years is None else now_years
        age = max(0.0, now - float(self._written_at[page_index]))
        return self._error_model.rber(self.pec, age, int(self._reads[page_index]))

    def retire(self) -> None:
        """Mark the block unusable (worn out); §4.3 capacity variance."""
        self.retired = True

    def page_info(self, page_index: int) -> PageState:
        """Live book-keeping view of one page (written time, read count)."""
        return PageState(self, page_index)

    def last_write_time_years(self) -> float:
        """Simulation time of the newest programmed page (0.0 if empty)."""
        if not self._programmed.any():
            return 0.0
        return float(self._written_at[self._programmed].max())

    def oldest_write_time_years(self) -> float:
        """Simulation time of the oldest programmed page (0.0 if empty)."""
        if not self._programmed.any():
            return 0.0
        return float(self._written_at[self._programmed].min())

    # -- time ------------------------------------------------------------

    _now_years: float = 0.0

    def advance_time(self, now_years: float) -> None:
        """Move the block clock forward (retention errors accumulate)."""
        if now_years < self._now_years:
            raise ValueError("time cannot move backwards")
        self._now_years = now_years

    # -- internals ---------------------------------------------------------

    def _corrupt(self, data: np.ndarray, rber: float) -> bytes:
        """Flip each stored bit independently with probability ``rber``."""
        nbits = data.size * 8
        nerrors = int(self._rng.binomial(nbits, rber))
        if nerrors == 0:
            return data.tobytes()
        noisy = data.copy()
        positions = self._rng.integers(0, nbits, size=nerrors)
        for pos in np.unique(positions):
            noisy[pos >> 3] ^= np.uint8(1 << (pos & 7))
        self.stats.injected_bit_errors += int(np.unique(positions).size)
        return noisy.tobytes()
