"""Bit-exact erase-block simulation.

A :class:`Block` stores real page payloads and injects bit errors on read
according to the analytic :class:`~repro.flash.error_model.ErrorModel`, so
that approximate-storage experiments (E6, A1) observe genuine corrupted
bytes rather than summary statistics.

Blocks follow NAND programming constraints from §2.1:

* pages within a block must be programmed sequentially (no rewrite without
  erase);
* erase wipes the whole block and increments the block's PEC counter;
* a block operated in a pseudo mode exposes proportionally fewer bytes.

A block whose PEC exceeds its mode's rated endurance does not refuse
writes -- real flash does not either -- but its RBER keeps climbing, which
is exactly the degradation SOS exploits and guards against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cell import CellMode
from .error_model import ErrorModel
from .geometry import Geometry

__all__ = ["Block", "PageState", "ProgramError"]


class ProgramError(Exception):
    """Raised on violations of NAND programming rules."""


@dataclass(slots=True)
class PageState:
    """Book-keeping for a single physical page."""

    data: np.ndarray | None = None
    written_at_years: float = 0.0
    reads_since_write: int = 0
    #: PEC of the block at the moment this page was programmed.
    pec_at_write: int = 0


@dataclass(slots=True)
class _BlockStats:
    programs: int = 0
    reads: int = 0
    injected_bit_errors: int = 0


class Block:
    """One erase block with real page payloads and stochastic bit errors.

    Parameters
    ----------
    geometry:
        Chip geometry (page size / pages per block at native density).
    mode:
        Operating :class:`CellMode`.  Page payload capacity scales with
        ``mode.capacity_fraction()``.
    rng:
        Source of randomness for error injection.  Deterministic when
        seeded by the caller.
    """

    def __init__(self, geometry: Geometry, mode: CellMode, rng: np.random.Generator) -> None:
        self.geometry = geometry
        self._rng = rng
        self.pec = 0
        self.retired = False
        self.stats = _BlockStats()
        self._mode = mode
        self._error_model = ErrorModel(mode)
        self._pages: list[PageState] = [PageState() for _ in range(geometry.pages_per_block)]
        self._next_page = 0

    # -- mode management -------------------------------------------------

    @property
    def mode(self) -> CellMode:
        """Current operating mode of the block."""
        return self._mode

    def reconfigure(self, mode: CellMode) -> None:
        """Switch the block's operating density (§4.3 resuscitation).

        The block must be erased first; density changes mid-data are not
        physically meaningful.  Accrued PEC carries over -- wear lives in
        the silicon, not the mode.
        """
        if any(p.data is not None for p in self._pages):
            raise ProgramError("cannot reconfigure a block holding data; erase first")
        if mode.technology is not self._mode.technology:
            raise ProgramError("cannot change manufactured technology of a block")
        self._mode = mode
        self._error_model = ErrorModel(mode)

    @property
    def page_capacity_bytes(self) -> int:
        """Bytes per page (independent of operating mode)."""
        return self.geometry.page_size_bytes

    @property
    def usable_pages(self) -> int:
        """Pages exposed at the current operating density.

        A wordline stores one page per operating bit (LSB/CSB/MSB/...), so
        a pseudo mode exposes ``operating_bits / native_bits`` of the
        native page count -- same page size, fewer pages.
        """
        return int(self.geometry.pages_per_block * self._mode.capacity_fraction())

    @property
    def rated_pec(self) -> int:
        """Rated endurance of the current operating mode."""
        return self._error_model.rated_pec

    @property
    def wear_ratio(self) -> float:
        """PEC consumed as a fraction of the current mode's rating."""
        return self.pec / self._error_model.rated_pec

    # -- NAND operations -------------------------------------------------

    def erase(self) -> None:
        """Erase the block, wiping all pages and incrementing PEC."""
        if self.retired:
            raise ProgramError("block is retired")
        self.pec += 1
        self._pages = [PageState() for _ in range(self.geometry.pages_per_block)]
        self._next_page = 0

    def program(self, page_index: int, data: bytes) -> None:
        """Program one page.  Pages must be written in order, once each."""
        if self.retired:
            raise ProgramError("block is retired")
        if page_index != self._next_page:
            raise ProgramError(
                f"out-of-order program: expected page {self._next_page}, got {page_index}"
            )
        if page_index >= self.usable_pages:
            raise ProgramError(
                f"page {page_index} beyond usable range "
                f"({self.usable_pages} pages in mode {self._mode.name})"
            )
        if len(data) > self.page_capacity_bytes:
            raise ProgramError(
                f"payload {len(data)}B exceeds page capacity "
                f"{self.page_capacity_bytes}B in mode {self._mode.name}"
            )
        page = self._pages[page_index]
        page.data = np.frombuffer(data.ljust(self.page_capacity_bytes, b"\x00"), dtype=np.uint8).copy()
        page.written_at_years = self._now_years
        page.reads_since_write = 0
        page.pec_at_write = self.pec
        self._next_page += 1
        self.stats.programs += 1

    def is_programmed(self, page_index: int) -> bool:
        """Whether the page currently holds data."""
        return self._pages[page_index].data is not None

    @property
    def free_pages(self) -> int:
        """Pages still programmable before the next erase."""
        return self.usable_pages - self._next_page

    def read(self, page_index: int, now_years: float | None = None) -> bytes:
        """Read a page, injecting bit errors per the block's error model.

        Parameters
        ----------
        page_index:
            Page to read.
        now_years:
            Simulation time of the read; defaults to the block clock set
            via :meth:`advance_time`.
        """
        page = self._pages[page_index]
        if page.data is None:
            raise ProgramError(f"page {page_index} is not programmed")
        now = self._now_years if now_years is None else now_years
        age = max(0.0, now - page.written_at_years)
        rber = self._error_model.rber(
            pec=self.pec, years_since_write=age, reads_since_write=page.reads_since_write
        )
        page.reads_since_write += 1
        self.stats.reads += 1
        return self._corrupt(page.data, rber)

    def read_clean(self, page_index: int) -> bytes:
        """Read a page without error injection (oracle view for tests)."""
        page = self._pages[page_index]
        if page.data is None:
            raise ProgramError(f"page {page_index} is not programmed")
        return page.data.tobytes()

    def rber_now(self, page_index: int, now_years: float | None = None) -> float:
        """Predicted RBER for a page at the current stress point."""
        page = self._pages[page_index]
        if page.data is None:
            raise ProgramError(f"page {page_index} is not programmed")
        now = self._now_years if now_years is None else now_years
        age = max(0.0, now - page.written_at_years)
        return self._error_model.rber(self.pec, age, page.reads_since_write)

    def retire(self) -> None:
        """Mark the block unusable (worn out); §4.3 capacity variance."""
        self.retired = True

    def page_info(self, page_index: int) -> PageState:
        """Book-keeping for one page (written time, read count)."""
        return self._pages[page_index]

    def last_write_time_years(self) -> float:
        """Simulation time of the newest programmed page (0.0 if empty)."""
        times = [p.written_at_years for p in self._pages if p.data is not None]
        return max(times) if times else 0.0

    def oldest_write_time_years(self) -> float:
        """Simulation time of the oldest programmed page (0.0 if empty)."""
        times = [p.written_at_years for p in self._pages if p.data is not None]
        return min(times) if times else 0.0

    # -- time ------------------------------------------------------------

    _now_years: float = 0.0

    def advance_time(self, now_years: float) -> None:
        """Move the block clock forward (retention errors accumulate)."""
        if now_years < self._now_years:
            raise ValueError("time cannot move backwards")
        self._now_years = now_years

    # -- internals ---------------------------------------------------------

    def _corrupt(self, data: np.ndarray, rber: float) -> bytes:
        """Flip each stored bit independently with probability ``rber``."""
        nbits = data.size * 8
        nerrors = int(self._rng.binomial(nbits, rber))
        if nerrors == 0:
            return data.tobytes()
        noisy = data.copy()
        positions = self._rng.integers(0, nbits, size=nerrors)
        for pos in np.unique(positions):
            noisy[pos >> 3] ^= np.uint8(1 << (pos & 7))
        self.stats.injected_bit_errors += int(np.unique(positions).size)
        return noisy.tobytes()
