"""Bit-exact flash chip: an addressable collection of erase blocks.

The chip exposes physical (block, page) addressing plus the management
hooks SOS needs: per-block operating-mode reconfiguration, retirement,
and a shared retention clock.  Logical addressing, allocation, and
garbage collection live above this layer in :mod:`repro.ftl`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .block import Block, BlockArrays, PageArrays, ProgramError
from .cell import CellMode, CellTechnology, native_mode
from .geometry import Geometry

__all__ = ["FlashChip", "PhysicalAddress"]


PhysicalAddress = tuple[int, int]
"""(block_index, page_index) pair addressing one physical page."""


class FlashChip:
    """A simulated NAND chip of homogeneous manufactured technology.

    Parameters
    ----------
    geometry:
        Physical shape of the chip.
    technology:
        Manufactured cell technology of every block.
    mode:
        Initial operating mode for all blocks; defaults to native density.
    seed:
        Seed for the chip-wide error-injection RNG.
    """

    def __init__(
        self,
        geometry: Geometry,
        technology: CellTechnology,
        mode: CellMode | None = None,
        seed: int = 0,
    ) -> None:
        if mode is None:
            mode = native_mode(technology)
        if mode.technology is not technology:
            raise ValueError("mode technology must match chip technology")
        self.geometry = geometry
        self.technology = technology
        self._rng = np.random.default_rng(seed)
        #: shared per-block state columns (PEC, retirement, wear inputs);
        #: the vectorized GC victim selector reads these directly
        self.arrays = BlockArrays(geometry.total_blocks)
        #: shared per-page metadata columns; blocks hold views into these
        self.pages = PageArrays(geometry.total_pages)
        self.blocks: list[Block] = [
            Block(
                geometry, mode, self._rng,
                arrays=self.arrays, index=i, pages=self.pages,
            )
            for i in range(geometry.total_blocks)
        ]
        # per-block operating-mode ids (index into _mode_registry), kept
        # in sync by reconfigure_block; lets batched reads test mode
        # homogeneity without touching Block objects
        self._mode_registry: list[CellMode] = [mode]
        self._mode_ids = np.zeros(geometry.total_blocks, dtype=np.int64)
        self._now_years = 0.0

    # -- capacity ----------------------------------------------------------

    @property
    def now_years(self) -> float:
        """Current simulation time on the chip's retention clock."""
        return self._now_years

    def usable_capacity_bytes(self) -> int:
        """Bytes currently addressable (live blocks at their modes)."""
        return sum(
            b.page_capacity_bytes * b.usable_pages for b in self.blocks if not b.retired
        )

    def live_blocks(self) -> Iterator[tuple[int, Block]]:
        """Iterate (index, block) over non-retired blocks."""
        return ((i, b) for i, b in enumerate(self.blocks) if not b.retired)

    def retired_count(self) -> int:
        """Number of retired (worn-out) blocks."""
        return sum(1 for b in self.blocks if b.retired)

    # -- NAND operations ---------------------------------------------------

    def erase(self, block_index: int) -> None:
        """Erase one block."""
        self.blocks[block_index].erase()

    def program(self, addr: PhysicalAddress, data: bytes) -> None:
        """Program one physical page."""
        block_index, page_index = addr
        self.blocks[block_index].program(page_index, data)

    def read(self, addr: PhysicalAddress) -> bytes:
        """Read one physical page with error injection at chip time."""
        block_index, page_index = addr
        return self.blocks[block_index].read(page_index, self._now_years)

    def program_analytic(self, addr: PhysicalAddress) -> None:
        """Program one page analytically (wear book-keeping, no bytes).

        Valid only for streams whose protection is content-independent
        (no codec, no parity); the FTL gates this.
        """
        block_index, page_index = addr
        self.blocks[block_index].program_analytic(page_index)

    def read_analytic(self, addr: PhysicalAddress) -> float:
        """Read one page analytically at chip time; returns its RBER."""
        block_index, page_index = addr
        return self.blocks[block_index].read_analytic(page_index, self._now_years)

    def read_analytic_many(self, flats: np.ndarray) -> np.ndarray:
        """Batched analytic read of flattened page indices at chip time.

        The cross-block hot path: per-page metadata gathers from the
        shared :class:`PageArrays`, one vectorized RBER evaluation with
        per-block PEC broadcast from :class:`BlockArrays`, and bulk
        scatter of read-disturb counters and block stats.  When touched
        blocks span more than one operating mode (rare: mixed-density
        devices), falls back to per-block calls -- same results, just
        slower.
        """
        flats = np.asarray(flats, dtype=np.int64)
        if flats.size == 0:
            return np.zeros(0, dtype=np.float64)
        pa = self.pages
        if not pa.programmed[flats].all():
            raise ProgramError("read_analytic_many on unprogrammed page(s)")
        ppb = self.geometry.pages_per_block
        block_idx = flats // ppb
        uniq, inverse, counts = np.unique(
            block_idx, return_inverse=True, return_counts=True
        )
        mode_ids = self._mode_ids[uniq]
        if mode_ids.size > 1 and (mode_ids != mode_ids[0]).any():
            out = np.empty(flats.size, dtype=np.float64)
            pages_in = flats % ppb
            for k, b in enumerate(uniq.tolist()):
                sel = inverse == k
                out[sel] = self.blocks[b].read_analytic_many(
                    pages_in[sel], self._now_years
                )
            return out
        model = self.blocks[int(uniq[0])].error_model
        ages = np.maximum(0.0, self._now_years - pa.written_at[flats])
        rbers = model.rber_many(
            self.arrays.pec[block_idx].astype(np.float64),
            ages,
            pa.reads[flats].astype(np.float64),
        )
        np.add.at(pa.reads, flats, 1)
        page_bits = self.geometry.page_size_bytes * 8
        err_sums = np.bincount(inverse, weights=rbers)
        blocks = self.blocks
        for k, b in enumerate(uniq.tolist()):
            stats = blocks[b].stats
            stats.reads += int(counts[k])
            stats.expected_bit_errors += float(err_sums[k]) * page_bits
        return rbers

    def read_clean(self, addr: PhysicalAddress) -> bytes:
        """Oracle read without error injection (testing/repair reference)."""
        block_index, page_index = addr
        return self.blocks[block_index].read_clean(page_index)

    # -- management --------------------------------------------------------

    def reconfigure_block(self, block_index: int, mode: CellMode) -> None:
        """Change one block's operating density (must be erased & empty)."""
        self.blocks[block_index].reconfigure(mode)
        try:
            mode_id = self._mode_registry.index(mode)
        except ValueError:
            mode_id = len(self._mode_registry)
            self._mode_registry.append(mode)
        self._mode_ids[block_index] = mode_id

    def retire_block(self, block_index: int) -> None:
        """Permanently retire a worn-out block."""
        self.blocks[block_index].retire()

    def advance_time(self, now_years: float) -> None:
        """Advance the chip retention clock (monotonic)."""
        if now_years < self._now_years:
            raise ValueError("time cannot move backwards")
        self._now_years = now_years
        for block in self.blocks:
            block.advance_time(now_years)

    def mean_pec(self) -> float:
        """Average PEC over live blocks (wear summary)."""
        live = self.arrays.pec[~self.arrays.retired]
        return float(np.mean(live)) if live.size else 0.0

    def max_pec(self) -> int:
        """Maximum PEC over live blocks."""
        live = self.arrays.pec[~self.arrays.retired]
        return int(live.max()) if live.size else 0
