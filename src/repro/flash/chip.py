"""Bit-exact flash chip: an addressable collection of erase blocks.

The chip exposes physical (block, page) addressing plus the management
hooks SOS needs: per-block operating-mode reconfiguration, retirement,
and a shared retention clock.  Logical addressing, allocation, and
garbage collection live above this layer in :mod:`repro.ftl`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .block import Block
from .cell import CellMode, CellTechnology, native_mode
from .geometry import Geometry

__all__ = ["FlashChip", "PhysicalAddress"]


PhysicalAddress = tuple[int, int]
"""(block_index, page_index) pair addressing one physical page."""


class FlashChip:
    """A simulated NAND chip of homogeneous manufactured technology.

    Parameters
    ----------
    geometry:
        Physical shape of the chip.
    technology:
        Manufactured cell technology of every block.
    mode:
        Initial operating mode for all blocks; defaults to native density.
    seed:
        Seed for the chip-wide error-injection RNG.
    """

    def __init__(
        self,
        geometry: Geometry,
        technology: CellTechnology,
        mode: CellMode | None = None,
        seed: int = 0,
    ) -> None:
        if mode is None:
            mode = native_mode(technology)
        if mode.technology is not technology:
            raise ValueError("mode technology must match chip technology")
        self.geometry = geometry
        self.technology = technology
        self._rng = np.random.default_rng(seed)
        self.blocks: list[Block] = [
            Block(geometry, mode, self._rng) for _ in range(geometry.total_blocks)
        ]
        self._now_years = 0.0

    # -- capacity ----------------------------------------------------------

    @property
    def now_years(self) -> float:
        """Current simulation time on the chip's retention clock."""
        return self._now_years

    def usable_capacity_bytes(self) -> int:
        """Bytes currently addressable (live blocks at their modes)."""
        return sum(
            b.page_capacity_bytes * b.usable_pages for b in self.blocks if not b.retired
        )

    def live_blocks(self) -> Iterator[tuple[int, Block]]:
        """Iterate (index, block) over non-retired blocks."""
        return ((i, b) for i, b in enumerate(self.blocks) if not b.retired)

    def retired_count(self) -> int:
        """Number of retired (worn-out) blocks."""
        return sum(1 for b in self.blocks if b.retired)

    # -- NAND operations ---------------------------------------------------

    def erase(self, block_index: int) -> None:
        """Erase one block."""
        self.blocks[block_index].erase()

    def program(self, addr: PhysicalAddress, data: bytes) -> None:
        """Program one physical page."""
        block_index, page_index = addr
        self.blocks[block_index].program(page_index, data)

    def read(self, addr: PhysicalAddress) -> bytes:
        """Read one physical page with error injection at chip time."""
        block_index, page_index = addr
        return self.blocks[block_index].read(page_index, self._now_years)

    def read_clean(self, addr: PhysicalAddress) -> bytes:
        """Oracle read without error injection (testing/repair reference)."""
        block_index, page_index = addr
        return self.blocks[block_index].read_clean(page_index)

    # -- management --------------------------------------------------------

    def reconfigure_block(self, block_index: int, mode: CellMode) -> None:
        """Change one block's operating density (must be erased & empty)."""
        self.blocks[block_index].reconfigure(mode)

    def retire_block(self, block_index: int) -> None:
        """Permanently retire a worn-out block."""
        self.blocks[block_index].retire()

    def advance_time(self, now_years: float) -> None:
        """Advance the chip retention clock (monotonic)."""
        if now_years < self._now_years:
            raise ValueError("time cannot move backwards")
        self._now_years = now_years
        for block in self.blocks:
            block.advance_time(now_years)

    def mean_pec(self) -> float:
        """Average PEC over live blocks (wear summary)."""
        live = [b.pec for b in self.blocks if not b.retired]
        return float(np.mean(live)) if live else 0.0

    def max_pec(self) -> int:
        """Maximum PEC over live blocks."""
        live = [b.pec for b in self.blocks if not b.retired]
        return max(live) if live else 0
