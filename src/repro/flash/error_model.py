"""Raw bit error rate (RBER) model for simulated NAND flash.

§2.1/§2.2 of the paper describe three error sources that the SOS design
manipulates:

* **wear (endurance) errors** -- tunnel-oxide damage accumulates with
  program/erase cycles (PEC), growing RBER super-linearly;
* **retention errors** -- charge leaks over time after a program, growing
  roughly linearly-to-polynomially with time since write and amplified by
  wear;
* **read disturb** -- each read of a block mildly stresses its other pages.

The model below is the standard multiplicative form used by flash
simulators (cf. Sampson et al., "Approximate Storage in Solid-State
Memories"; Cai et al.'s error-characterization series):

    RBER(pec, t, reads) = base * margin^-2
                        * (1 + (pec/rated)^g)
                        * (1 + t/t_ret * (1 + pec/rated))
                        * (1 + reads/READ_DISTURB_SCALE)

where ``margin`` is the pseudo-mode voltage margin factor (wider margins
suppress errors quadratically, since both the level spacing and the noise
integration window grow), ``g`` is a technology growth exponent, and
``t_ret`` the nominal retention horizon for the operating density.

Absolute values are calibrated so that a device at its rated PEC and
rated retention sits near the UBER knee for typical ECC (RBER ~ 1e-3 for
QLC-class parts), matching published characterization data to first order.
The experiments only rely on *relative* behaviour (PLC vs QLC vs TLC,
pseudo vs native), which the structure above guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .cell import CellMode
from .reliability import ENDURANCE_TABLE, EnduranceSpec, endurance_pec, retention_years

__all__ = ["ErrorModel", "RberBreakdown", "cached_error_model"]

#: Reads to a block before read-disturb contributes ~100% extra RBER.
READ_DISTURB_SCALE = 500_000.0

#: Multiplier applied to baseline RBER so a part at rated PEC and nominal
#: retention lands near the ECC capability knee (calibration constant).
_WEAR_KNEE_MULTIPLIER = 150.0


@dataclass(frozen=True, slots=True)
class RberBreakdown:
    """Decomposition of an RBER prediction into its physical sources."""

    baseline: float
    wear_factor: float
    retention_factor: float
    read_disturb_factor: float

    @property
    def total(self) -> float:
        """Combined RBER (product of baseline and the three stress factors)."""
        return (
            self.baseline
            * self.wear_factor
            * self.retention_factor
            * self.read_disturb_factor
        )


class ErrorModel:
    """Analytic RBER model for one cell operating mode.

    Parameters
    ----------
    mode:
        Cell technology + operating density.  Pseudo modes inherit the
        underlying silicon's baseline noise but gain quadratic margin
        relief.
    """

    def __init__(self, mode: CellMode) -> None:
        self.mode = mode
        spec = ENDURANCE_TABLE[mode.technology]
        # Wider pseudo-mode margins suppress the baseline quadratically.
        self._baseline = spec.baseline_rber / (mode.margin_factor**2)
        self._growth = spec.rber_growth
        self._rated_pec = endurance_pec(mode)
        self._retention_horizon_years = retention_years(mode)

    @property
    def rated_pec(self) -> int:
        """Rated endurance of the operating mode in program/erase cycles."""
        return self._rated_pec

    @property
    def retention_horizon_years(self) -> float:
        """Nominal retention horizon of the operating density."""
        return self._retention_horizon_years

    def breakdown(
        self, pec: float, years_since_write: float = 0.0, reads_since_write: float = 0.0
    ) -> RberBreakdown:
        """Per-source RBER decomposition at a given stress point.

        Parameters
        ----------
        pec:
            Program/erase cycles the block has endured.
        years_since_write:
            Retention time of the data being read, in years.
        reads_since_write:
            Reads issued to the block since the page was written.
        """
        if pec < 0 or years_since_write < 0 or reads_since_write < 0:
            raise ValueError("stress parameters must be non-negative")
        wear_ratio = pec / self._rated_pec
        wear = 1.0 + _WEAR_KNEE_MULTIPLIER * wear_ratio**self._growth
        retention = 1.0 + (years_since_write / self._retention_horizon_years) * (
            1.0 + wear_ratio
        )
        disturb = 1.0 + reads_since_write / READ_DISTURB_SCALE
        return RberBreakdown(
            baseline=self._baseline,
            wear_factor=wear,
            retention_factor=retention,
            read_disturb_factor=disturb,
        )

    def rber(
        self, pec: float, years_since_write: float = 0.0, reads_since_write: float = 0.0
    ) -> float:
        """Raw bit error rate at the given stress point (capped at 0.5)."""
        return min(0.5, self.breakdown(pec, years_since_write, reads_since_write).total)

    def rber_many(
        self,
        pec: np.ndarray,
        years_since_write: np.ndarray | float = 0.0,
        reads_since_write: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`rber` over arrays of stress points.

        Elementwise identical to the scalar form; used by the epoch model
        to evaluate whole partitions of block groups in one call.  Unlike
        the scalar form, inputs are not validated -- callers must pass
        non-negative stress values (negative wear would silently produce
        nonsense through the power law).
        """
        pec = np.asarray(pec, dtype=float)
        years = np.asarray(years_since_write, dtype=float)
        reads = np.asarray(reads_since_write, dtype=float)
        wear_ratio = pec / self._rated_pec
        wear = 1.0 + _WEAR_KNEE_MULTIPLIER * wear_ratio**self._growth
        retention = 1.0 + (years / self._retention_horizon_years) * (1.0 + wear_ratio)
        disturb = 1.0 + reads / READ_DISTURB_SCALE
        return np.minimum(0.5, self._baseline * wear * retention * disturb)

    def pec_for_rber(
        self, target_rber: float, years_since_write: float = 0.0
    ) -> float:
        """Invert the wear axis: PEC at which RBER reaches ``target_rber``.

        Used to answer "how many cycles until this block can no longer be
        protected by ECC of strength t" -- the effective lifetime question
        at the heart of §4.2.  Solved by bisection (the model is monotone
        in ``pec``).  Returns ``inf`` if the target is unreachable below
        100x rated endurance; 0.0 if already exceeded at zero wear.
        """
        if target_rber <= 0:
            raise ValueError("target_rber must be positive")
        if self.rber(0, years_since_write) >= target_rber:
            return 0.0
        lo, hi = 0.0, float(self._rated_pec) * 100.0
        if self.rber(hi, years_since_write) < target_rber:
            return float("inf")
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.rber(mid, years_since_write) < target_rber:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


@lru_cache(maxsize=64)
def _cached_model(
    mode: CellMode, spec: EnduranceSpec, rated_pec: int, retention: float
) -> ErrorModel:
    return ErrorModel(mode)


def cached_error_model(mode: CellMode) -> ErrorModel:
    """Shared :class:`ErrorModel` instance for ``mode``.

    An ``ErrorModel`` snapshots the endurance/retention tables at
    construction, and experiments (A6) temporarily override those tables,
    so the cache key includes every table value the model reads -- a
    table override transparently yields a different cached instance.
    """
    return _cached_model(
        mode, ENDURANCE_TABLE[mode.technology], endurance_pec(mode), retention_years(mode)
    )
