"""Physical geometry of a simulated NAND flash device.

Mirrors the layout described in the paper's §2.1: data is read/written in
*pages* (typically 4-16 KB), erased in *blocks* (groups of pages, 256 KB -
4 MB), and blocks are grouped into planes and dies.  The geometry object is
shared by the bit-exact chip simulator and the epoch-level lifetime model
so both agree on capacities.

Page capacity scales with the *operating* bits per cell: a block of
``cells_per_page`` cells holds ``operating_bits`` logical pages' worth of
bits per physical wordline.  We model this the standard way -- a physical
page stores ``page_size_bytes`` at native density, and a pseudo mode
delivers ``operating_bits / native_bits`` of that.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Geometry", "SMALL_GEOMETRY", "MOBILE_GEOMETRY"]


@dataclass(frozen=True, slots=True)
class Geometry:
    """Shape of one simulated flash chip at native density.

    Attributes
    ----------
    page_size_bytes:
        Bytes per physical page at native density.
    pages_per_block:
        Pages per erase block.
    blocks_per_plane:
        Erase blocks per plane.
    planes_per_die:
        Planes per die (parallelism unit; ignored for timing here).
    dies:
        Dies per chip.
    """

    page_size_bytes: int = 4096
    pages_per_block: int = 64
    blocks_per_plane: int = 256
    planes_per_die: int = 2
    dies: int = 1

    def __post_init__(self) -> None:
        for field in (
            "page_size_bytes",
            "pages_per_block",
            "blocks_per_plane",
            "planes_per_die",
            "dies",
        ):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")

    @property
    def total_blocks(self) -> int:
        """Total erase blocks in the chip."""
        return self.blocks_per_plane * self.planes_per_die * self.dies

    @property
    def block_size_bytes(self) -> int:
        """Bytes per erase block at native density."""
        return self.page_size_bytes * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        """Raw chip capacity in bytes at native density."""
        return self.block_size_bytes * self.total_blocks

    @property
    def total_pages(self) -> int:
        """Total physical pages in the chip."""
        return self.pages_per_block * self.total_blocks


#: Tiny geometry for bit-exact unit tests (256 KB).
SMALL_GEOMETRY = Geometry(
    page_size_bytes=512, pages_per_block=8, blocks_per_plane=32, planes_per_die=2, dies=1
)

#: Mobile-like geometry used by the lifetime simulator (scaled down from a
#: real 128 GB UFS part to keep simulations fast; capacities in experiments
#: are expressed per-GB so the scale factor cancels).
MOBILE_GEOMETRY = Geometry(
    page_size_bytes=4096, pages_per_block=64, blocks_per_plane=512, planes_per_die=2, dies=2
)
