"""Auto-delete predictor: which files would the user delete?

§4.3/§4.5: "SOS relies on auto-delete data classifiers, which can predict
user file deletion decisions with high accuracy (e.g., 79%)" [Khan et
al.].  When PLC wear forces capacity trimming, SOS deletes (or recommends
deleting) the files the user is most likely to discard anyway, freeing
~3% of capacity before resuming normal degradation.

The predictor is a second logistic model over the same feature space,
trained against the corpus's ``user_would_delete`` label, exposing a
*ranking* so the trim policy can free exactly the space it needs starting
from the most-expendable files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.files import FileRecord

from .corpus import LabelledFile
from .features import extract_features, feature_matrix
from .logistic import LogisticRegression

__all__ = ["AutoDeletePredictor", "AutoDeleteMetrics", "train_auto_delete"]


@dataclass(frozen=True, slots=True)
class AutoDeleteMetrics:
    """Held-out evaluation of the auto-delete predictor."""

    accuracy: float
    precision: float
    recall: float


class AutoDeletePredictor:
    """Ranks files by predicted deletability."""

    def __init__(self, model: LogisticRegression) -> None:
        self.model = model

    def p_delete(self, record: FileRecord, now_years: float) -> float:
        """Model probability the user would delete this file."""
        features = extract_features(record, now_years).reshape(1, -1)
        return float(self.model.predict_proba(features)[0])

    def rank_for_deletion(
        self, records: list[FileRecord], now_years: float
    ) -> list[tuple[FileRecord, float]]:
        """Files sorted most-deletable first, excluding system files."""
        candidates = [r for r in records if not r.is_system]
        if not candidates:
            return []
        X = feature_matrix(candidates, now_years)
        probs = self.model.predict_proba(X)
        ranked = sorted(zip(candidates, probs), key=lambda item: -item[1])
        return [(r, float(p)) for r, p in ranked]

    def evaluate(self, test_set: list[LabelledFile], now_years: float) -> AutoDeleteMetrics:
        """Accuracy/precision/recall against ``user_would_delete`` labels."""
        if not test_set:
            raise ValueError("empty test set")
        X = feature_matrix([f.record for f in test_set], now_years)
        y = np.array([int(f.user_would_delete) for f in test_set])
        pred = self.model.predict(X)
        accuracy = float(np.mean(pred == y))
        tp = int(np.sum((pred == 1) & (y == 1)))
        fp = int(np.sum((pred == 1) & (y == 0)))
        fn = int(np.sum((pred == 0) & (y == 1)))
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return AutoDeleteMetrics(accuracy=accuracy, precision=precision, recall=recall)


def train_auto_delete(
    corpus: list[LabelledFile],
    now_years: float,
    train_fraction: float = 0.7,
    seed: int = 0,
) -> tuple[AutoDeletePredictor, AutoDeleteMetrics]:
    """Train the deletion predictor and evaluate on the held-out split."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(corpus))
    split = int(len(corpus) * train_fraction)
    train = [corpus[i] for i in order[:split]]
    test = [corpus[i] for i in order[split:]]
    X = feature_matrix([f.record for f in train], now_years)
    y = np.array([int(f.user_would_delete) for f in train])
    model = LogisticRegression().fit(X, y)
    predictor = AutoDeletePredictor(model)
    return predictor, predictor.evaluate(test, now_years)
