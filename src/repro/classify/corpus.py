"""Synthetic labelled file corpus with a generative user-value model.

The paper trains its classifier on "data collected from a large pool of
previously scanned users files" with expert labels for system data and
user-preference labels for personal data (§4.4).  We have no such pool,
so we substitute a generative model whose structure follows the studies
the paper cites:

* file-kind mix follows mobile storage composition (media > half of all
  bytes -- Ji et al., Yen et al.);
* each user file carries a latent *value* in [0, 1] drawn from a
  kind-dependent distribution, shifted by provenance signals (favorites
  and known faces raise value; screenshots, shared-in media, duplicates,
  and long idle times lower it);
* observable attributes are emitted *noisily* from the latent value, so
  no classifier can be perfect -- which lets us check the paper's cited
  79% accuracy operating point [Khan et al.] rather than trivially
  exceeding it;
* ground-truth labels: ``critical`` (belongs on SYS) and
  ``user_would_delete`` (the auto-delete target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.files import FileAttributes, FileKind, FileRecord, SYSTEM_KINDS

__all__ = ["LabelledFile", "CorpusConfig", "generate_corpus"]


@dataclass(frozen=True, slots=True)
class LabelledFile:
    """One corpus entry: a file plus its ground-truth labels."""

    record: FileRecord
    critical: bool
    user_would_delete: bool
    latent_value: float


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Knobs for corpus generation.

    Attributes
    ----------
    n_files:
        Corpus size.
    now_years:
        Observation time (files are created in ``[0, now_years]``).
    critical_value_threshold:
        Latent value above which a user file is ground-truth critical.
    delete_value_threshold:
        Latent value below which the user would delete the file.
    label_noise:
        Probability a ground-truth label is flipped (annotator/user
        inconsistency; keeps the achievable ceiling below 100%).
    """

    n_files: int = 5000
    now_years: float = 2.0
    critical_value_threshold: float = 0.65
    delete_value_threshold: float = 0.30
    label_noise: float = 0.08


#: File-count mix for personal devices.  Media dominates counts and bytes
#: (§4.2 "media files comprise over half of mobile storage data").
_KIND_WEIGHTS: dict[FileKind, float] = {
    FileKind.OS_SYSTEM: 0.06,
    FileKind.APP_EXECUTABLE: 0.07,
    FileKind.APP_METADATA: 0.12,
    FileKind.DOCUMENT: 0.08,
    FileKind.PHOTO: 0.34,
    FileKind.VIDEO: 0.10,
    FileKind.AUDIO: 0.06,
    FileKind.DOWNLOAD: 0.05,
    FileKind.MESSAGE_MEDIA: 0.12,
}

#: Mean latent value by kind (system kinds are handled separately).
_KIND_VALUE_MEAN: dict[FileKind, float] = {
    FileKind.DOCUMENT: 0.62,
    FileKind.PHOTO: 0.45,
    FileKind.VIDEO: 0.42,
    FileKind.AUDIO: 0.38,
    FileKind.DOWNLOAD: 0.25,
    FileKind.MESSAGE_MEDIA: 0.30,
}

#: Typical file sizes (log-normal mean bytes) by kind.
_KIND_SIZE_MEAN: dict[FileKind, float] = {
    FileKind.OS_SYSTEM: 2e6,
    FileKind.APP_EXECUTABLE: 3e7,
    FileKind.APP_METADATA: 5e5,
    FileKind.DOCUMENT: 3e5,
    FileKind.PHOTO: 3e6,
    FileKind.VIDEO: 8e7,
    FileKind.AUDIO: 6e6,
    FileKind.DOWNLOAD: 1e7,
    FileKind.MESSAGE_MEDIA: 1.5e6,
}


def _sample_kind(rng: np.random.Generator) -> FileKind:
    kinds = list(_KIND_WEIGHTS)
    weights = np.array([_KIND_WEIGHTS[k] for k in kinds])
    return kinds[rng.choice(len(kinds), p=weights / weights.sum())]


def _sample_user_file(
    rng: np.random.Generator, kind: FileKind, config: CorpusConfig
) -> tuple[FileAttributes, float]:
    """Sample (attributes, latent_value) for a non-system file."""
    value = float(np.clip(rng.normal(_KIND_VALUE_MEAN[kind], 0.22), 0.0, 1.0))

    favorite = rng.random() < 0.25 * value
    known_faces = kind in (FileKind.PHOTO, FileKind.VIDEO) and rng.random() < (
        0.15 + 0.55 * value
    )
    screenshot = kind is FileKind.PHOTO and rng.random() < (0.35 * (1.0 - value))
    shared = kind is FileKind.MESSAGE_MEDIA or rng.random() < 0.25 * (1.0 - value)
    duplicates = int(rng.poisson(2.0 * (1.0 - value)))
    # valued files are accessed more and more recently
    created = float(rng.uniform(0.0, config.now_years))
    age = config.now_years - created
    idle = float(np.clip(rng.exponential(0.1 + age * (1.0 - value)), 0.0, age))
    access_count = int(rng.poisson(1.0 + 25.0 * value * (age + 0.1)))
    modify_count = int(rng.poisson(0.5 if kind is not FileKind.DOCUMENT else 3.0 * value))
    sensitivity = float(np.clip(rng.beta(1.2, 8.0) + 0.35 * value * rng.random(), 0.0, 1.0))
    # favorites/faces feed back into value: explicit signals mean more
    value = float(np.clip(value + 0.15 * favorite + 0.12 * known_faces
                          - 0.10 * screenshot - 0.05 * min(duplicates, 3), 0.0, 1.0))
    attrs = FileAttributes(
        created_years=created,
        last_access_years=config.now_years - idle,
        access_count=access_count,
        modify_count=modify_count,
        shared_from_other=shared,
        user_favorite=favorite,
        has_known_faces=known_faces,
        is_screenshot=screenshot,
        duplicate_count=duplicates,
        cloud_backed=rng.random() < 0.6,
        sensitivity_score=sensitivity,
    )
    return attrs, value


def generate_corpus(
    config: CorpusConfig | None = None, seed: int = 0
) -> list[LabelledFile]:
    """Generate a labelled corpus of ``config.n_files`` files."""
    config = config or CorpusConfig()
    rng = np.random.default_rng(seed)
    corpus: list[LabelledFile] = []
    for file_id in range(1, config.n_files + 1):
        kind = _sample_kind(rng)
        size = int(rng.lognormal(np.log(_KIND_SIZE_MEAN[kind]), 0.8))
        if kind in SYSTEM_KINDS:
            created = float(rng.uniform(0.0, config.now_years))
            attrs = FileAttributes(
                created_years=created,
                last_access_years=config.now_years - float(rng.exponential(0.02)),
                access_count=int(rng.poisson(200)),
                modify_count=int(rng.poisson(5)),
                cloud_backed=False,
            )
            value = 1.0
            critical = True
            would_delete = False
        else:
            attrs, value = _sample_user_file(rng, kind, config)
            critical = value >= config.critical_value_threshold
            would_delete = value <= config.delete_value_threshold
            if rng.random() < config.label_noise:
                critical = not critical
            if rng.random() < config.label_noise:
                would_delete = not would_delete
        record = FileRecord(
            file_id=file_id,
            path=f"/data/{kind.value}/{file_id:06d}",
            kind=kind,
            size_bytes=size,
            attributes=attrs,
        )
        corpus.append(
            LabelledFile(
                record=record,
                critical=critical,
                user_would_delete=would_delete,
                latent_value=value,
            )
        )
    return corpus
