"""Gaussian Naive Bayes classifier, from scratch (numpy only).

Per-class Gaussian likelihoods over each feature with variance smoothing.
Naive Bayes is the lightweight option for an on-device daemon: training
is a single pass and prediction is a handful of vector ops, befitting the
"privileged system daemon ... periodic review" deployment of §4.4.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Binary/multiclass Gaussian NB with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self._theta: np.ndarray | None = None  # class means
        self._var: np.ndarray | None = None  # class variances
        self._log_prior: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        """Fit per-class Gaussians.  Returns self."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n_samples, n_features) aligned with y")
        self.classes_ = np.unique(y)
        n_classes, n_features = self.classes_.size, X.shape[1]
        self._theta = np.zeros((n_classes, n_features))
        self._var = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for idx, cls in enumerate(self.classes_):
            rows = X[y == cls]
            if rows.shape[0] == 0:
                raise ValueError(f"class {cls} has no samples")
            self._theta[idx] = rows.mean(axis=0)
            self._var[idx] = rows.var(axis=0) + eps
            priors[idx] = rows.shape[0] / X.shape[0]
        self._log_prior = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self._theta is None:
            raise RuntimeError("fit() must be called first")
        X = np.asarray(X, dtype=np.float64)
        jll = []
        for idx in range(self.classes_.size):  # type: ignore[union-attr]
            diff = X - self._theta[idx]
            log_like = -0.5 * np.sum(
                np.log(2.0 * np.pi * self._var[idx]) + diff**2 / self._var[idx], axis=1
            )
            jll.append(self._log_prior[idx] + log_like)  # type: ignore[index]
        return np.stack(jll, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class membership probabilities, rows sum to 1."""
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        jll = self._joint_log_likelihood(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(jll, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on (X, y)."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
