"""FileClassifier: the machine-driven data classification of §4.4.

Wraps a trained model behind the decision SOS actually needs: *which
partition should this file live on, and with what confidence?*  Two rules
from the paper sit above the learned model:

* system-functionality files are SYS unconditionally ("OS files are
  easily identifiable as critical", §4.4);
* demotion to SPARE is **conservative**: a file moves to SPARE only when
  the model's P(critical) falls below ``demote_threshold`` ("erring on
  the side of caution", §4.3) -- raising the threshold trades density
  gain for safety, the A3 ablation axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.files import FileRecord
from repro.host.hints import Placement, PlacementHint

from .corpus import LabelledFile
from .features import extract_features, feature_matrix
from .logistic import LogisticRegression
from .naive_bayes import GaussianNaiveBayes

__all__ = ["FileClassifier", "ClassifierMetrics", "train_classifier"]


@dataclass(frozen=True, slots=True)
class ClassifierMetrics:
    """Held-out evaluation of a trained classifier."""

    accuracy: float
    precision_critical: float
    recall_critical: float
    #: fraction of truly-critical files the policy would demote to SPARE
    critical_demotion_rate: float
    #: fraction of all files demoted to SPARE (density-gain proxy)
    spare_fraction: float


class FileClassifier:
    """Placement decisions from a trained criticality model.

    Parameters
    ----------
    model:
        Trained binary model with ``predict_proba`` returning P(critical).
    demote_threshold:
        Demote to SPARE only when P(critical) < this.  Low values are
        conservative (few demotions); the paper wants most low-value media
        demoted while critical data stays safe.
    """

    def __init__(
        self,
        model: LogisticRegression | GaussianNaiveBayes,
        demote_threshold: float = 0.35,
    ) -> None:
        if not 0.0 < demote_threshold < 1.0:
            raise ValueError("demote_threshold must be in (0, 1)")
        self.model = model
        self.demote_threshold = demote_threshold

    def p_critical(self, record: FileRecord, now_years: float) -> float:
        """Model probability that a file is critical."""
        features = extract_features(record, now_years).reshape(1, -1)
        if isinstance(self.model, LogisticRegression):
            return float(self.model.predict_proba(features)[0])
        probs = self.model.predict_proba(features)[0]
        # classes_ sorted ascending; critical encoded as 1
        critical_idx = int(np.where(self.model.classes_ == 1)[0][0])
        return float(probs[critical_idx])

    def classify(self, record: FileRecord, now_years: float) -> PlacementHint:
        """Placement hint for one file (rule layer + learned model)."""
        if record.is_system:
            return PlacementHint(record.file_id, Placement.SYS, confidence=1.0)
        p_crit = self.p_critical(record, now_years)
        if p_crit < self.demote_threshold:
            return PlacementHint(record.file_id, Placement.SPARE, confidence=1.0 - p_crit)
        return PlacementHint(record.file_id, Placement.SYS, confidence=p_crit)

    def classify_many(
        self, records: list[FileRecord], now_years: float
    ) -> list[PlacementHint]:
        """Placement hints for a batch of files."""
        return [self.classify(r, now_years) for r in records]

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, test_set: list[LabelledFile], now_years: float) -> ClassifierMetrics:
        """Held-out metrics against ground-truth criticality labels."""
        if not test_set:
            raise ValueError("empty test set")
        X = feature_matrix([f.record for f in test_set], now_years)
        y = np.array([int(f.critical) for f in test_set])
        if isinstance(self.model, LogisticRegression):
            p = self.model.predict_proba(X)
        else:
            probs = self.model.predict_proba(X)
            critical_idx = int(np.where(self.model.classes_ == 1)[0][0])
            p = probs[:, critical_idx]
        pred = (p >= 0.5).astype(int)
        accuracy = float(np.mean(pred == y))
        tp = int(np.sum((pred == 1) & (y == 1)))
        fp = int(np.sum((pred == 1) & (y == 0)))
        fn = int(np.sum((pred == 0) & (y == 1)))
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        demote = p < self.demote_threshold
        system = np.array([f.record.is_system for f in test_set])
        demote = demote & ~system  # rule layer protects system files
        critical_demotions = float(np.sum(demote & (y == 1)) / max(1, np.sum(y == 1)))
        return ClassifierMetrics(
            accuracy=accuracy,
            precision_critical=precision,
            recall_critical=recall,
            critical_demotion_rate=critical_demotions,
            spare_fraction=float(np.mean(demote)),
        )


def train_classifier(
    corpus: list[LabelledFile],
    now_years: float,
    kind: str = "logistic",
    demote_threshold: float = 0.35,
    train_fraction: float = 0.7,
    seed: int = 0,
) -> tuple[FileClassifier, ClassifierMetrics]:
    """Train a classifier on a corpus and evaluate on the held-out split.

    Parameters
    ----------
    corpus:
        Labelled files (see :func:`repro.classify.corpus.generate_corpus`).
    now_years:
        Feature-extraction observation time.
    kind:
        ``"logistic"`` or ``"naive_bayes"``.
    demote_threshold:
        Conservativeness of the SPARE demotion rule.
    train_fraction:
        Train/test split fraction.
    seed:
        Split shuffling seed.
    """
    if kind not in ("logistic", "naive_bayes"):
        raise ValueError(f"unknown classifier kind {kind!r}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(corpus))
    split = int(len(corpus) * train_fraction)
    train = [corpus[i] for i in order[:split]]
    test = [corpus[i] for i in order[split:]]
    X = feature_matrix([f.record for f in train], now_years)
    y = np.array([int(f.critical) for f in train])
    model: LogisticRegression | GaussianNaiveBayes
    if kind == "logistic":
        model = LogisticRegression().fit(X, y)
    else:
        model = GaussianNaiveBayes().fit(X, y)
    classifier = FileClassifier(model, demote_threshold=demote_threshold)
    metrics = classifier.evaluate(test, now_years)
    return classifier, metrics
