"""Machine-driven data classification (§4.4).

A synthetic labelled corpus stands in for the paper's scanned-user-files
training pool; Gaussian Naive Bayes and logistic regression (both from
scratch) learn criticality; :class:`FileClassifier` adds the rule layer
and conservative demotion threshold; :class:`AutoDeletePredictor`
reproduces the 79%-accuracy deletion-prediction operating point.
"""

from .auto_delete import AutoDeleteMetrics, AutoDeletePredictor, train_auto_delete
from .classifier import ClassifierMetrics, FileClassifier, train_classifier
from .corpus import CorpusConfig, LabelledFile, generate_corpus
from .drift import DriftConfig, drift_corpus
from .features import FEATURE_NAMES, extract_features, feature_matrix
from .logistic import LogisticRegression
from .naive_bayes import GaussianNaiveBayes

__all__ = [
    "AutoDeleteMetrics",
    "AutoDeletePredictor",
    "train_auto_delete",
    "ClassifierMetrics",
    "FileClassifier",
    "train_classifier",
    "CorpusConfig",
    "DriftConfig",
    "drift_corpus",
    "LabelledFile",
    "generate_corpus",
    "FEATURE_NAMES",
    "extract_features",
    "feature_matrix",
    "LogisticRegression",
    "GaussianNaiveBayes",
]
