"""User-preference drift and periodic re-evaluation (§4.4).

"We plan to periodically re-evaluate user preferences as these tend to
change over time" [Khan et al., Ramokapane et al.].  A file's value is
not static: yesterday's throwaway shot becomes treasured after a loss;
a favorited document stops mattering when its project ends.

The drift model evolves each file's latent value with a mean-reverting
random walk and re-emits the observable attributes from the new value
(a valued file keeps being accessed; a devalued one goes idle).  The A5
ablation compares classify-once-at-creation against periodic
re-evaluation under this drift.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.host.files import FileAttributes, SYSTEM_KINDS

from .corpus import CorpusConfig, LabelledFile

__all__ = ["DriftConfig", "drift_corpus"]


@dataclasses.dataclass(frozen=True, slots=True)
class DriftConfig:
    """Latent-value drift parameters.

    Attributes
    ----------
    volatility:
        Stddev of the annual value innovation.
    reversion:
        Pull toward the long-run mean per year (0..1).
    long_run_mean:
        Value files drift toward absent user signals.
    """

    volatility: float = 0.18
    reversion: float = 0.10
    long_run_mean: float = 0.40


def _drift_value(value: float, dt_years: float, config: DriftConfig,
                 rng: np.random.Generator) -> float:
    pulled = value + config.reversion * dt_years * (config.long_run_mean - value)
    noisy = pulled + rng.normal(0.0, config.volatility * np.sqrt(dt_years))
    return float(np.clip(noisy, 0.0, 1.0))


def _reemit_attributes(
    attrs: FileAttributes, value: float, now: float, dt_years: float,
    rng: np.random.Generator,
) -> FileAttributes:
    """Update observable attributes to reflect the (new) latent value."""
    # valued files keep being accessed; devalued ones go idle
    new_accesses = int(rng.poisson(30.0 * value * dt_years))
    last_access = now if new_accesses > 0 else attrs.last_access_years
    favorite = attrs.user_favorite
    if rng.random() < 0.4 * dt_years:
        favorite = value > 0.6  # favorites tracked to current value
    return dataclasses.replace(
        attrs,
        access_count=attrs.access_count + new_accesses,
        last_access_years=last_access,
        user_favorite=favorite,
    )


def drift_corpus(
    corpus: list[LabelledFile],
    dt_years: float,
    config: DriftConfig | None = None,
    corpus_config: CorpusConfig | None = None,
    seed: int = 0,
) -> list[LabelledFile]:
    """Evolve a corpus ``dt_years`` forward; returns a new corpus.

    Latent values random-walk (system files stay pinned at value 1),
    attributes are re-emitted, and ground-truth labels are recomputed
    from the corpus config's thresholds.
    """
    config = config or DriftConfig()
    corpus_config = corpus_config or CorpusConfig()
    rng = np.random.default_rng(seed)
    now = corpus_config.now_years + dt_years
    out: list[LabelledFile] = []
    for item in corpus:
        if item.record.kind in SYSTEM_KINDS:
            out.append(item)
            continue
        value = _drift_value(item.latent_value, dt_years, config, rng)
        record = dataclasses.replace(
            item.record,
            attributes=_reemit_attributes(
                item.record.attributes, value, now, dt_years, rng
            ),
            extents=list(item.record.extents),
        )
        out.append(
            LabelledFile(
                record=record,
                critical=value >= corpus_config.critical_value_threshold,
                user_would_delete=value <= corpus_config.delete_value_threshold,
                latent_value=value,
            )
        )
    return out
