"""Feature extraction for file classification.

Turns a :class:`~repro.host.files.FileRecord` into a fixed-length numeric
vector covering the attribute families §4.4 names: file type, recency and
access history, provenance (shared / screenshot / duplicates), explicit
user signals (favorites), content markers (sensitivity, known faces), and
size.  The same vector feeds both learners so they are comparable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.host.files import FileKind, FileRecord

__all__ = ["FEATURE_NAMES", "extract_features", "feature_matrix"]

_KIND_ORDER = list(FileKind)

FEATURE_NAMES: list[str] = [
    "age_years",
    "idle_years",
    "log_access_count",
    "log_modify_count",
    "shared_from_other",
    "user_favorite",
    "has_known_faces",
    "is_screenshot",
    "log_duplicate_count",
    "cloud_backed",
    "sensitivity_score",
    "log_size",
] + [f"kind_{kind.value}" for kind in _KIND_ORDER]


def extract_features(record: FileRecord, now_years: float) -> np.ndarray:
    """Feature vector for one file at simulation time ``now_years``."""
    attrs = record.attributes
    base = [
        record.age_years(now_years),
        record.idle_years(now_years),
        math.log1p(attrs.access_count),
        math.log1p(attrs.modify_count),
        float(attrs.shared_from_other),
        float(attrs.user_favorite),
        float(attrs.has_known_faces),
        float(attrs.is_screenshot),
        math.log1p(attrs.duplicate_count),
        float(attrs.cloud_backed),
        attrs.sensitivity_score,
        math.log1p(record.size_bytes),
    ]
    kind_onehot = [1.0 if record.kind is kind else 0.0 for kind in _KIND_ORDER]
    return np.array(base + kind_onehot, dtype=np.float64)


def feature_matrix(records: list[FileRecord], now_years: float) -> np.ndarray:
    """Stacked feature matrix, one row per record."""
    if not records:
        return np.empty((0, len(FEATURE_NAMES)))
    return np.stack([extract_features(r, now_years) for r in records])
