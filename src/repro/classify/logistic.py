"""L2-regularized logistic regression, from scratch (numpy only).

Trained by full-batch gradient descent with feature standardization and a
fixed iteration budget -- deterministic given the data.  Logistic
regression is the "heavier" of the two learners and provides calibrated
confidence scores, which SOS's conservative placement thresholds (§4.2)
consume directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Parameters
    ----------
    l2:
        Regularization strength (0 disables).
    lr:
        Gradient-descent learning rate.
    n_iter:
        Full-batch iterations.
    """

    def __init__(self, l2: float = 1e-3, lr: float = 0.5, n_iter: int = 500) -> None:
        self.l2 = l2
        self.lr = lr
        self.n_iter = n_iter
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * z))  # numerically stable

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        assert self._mu is not None and self._sigma is not None
        return (X - self._mu) / self._sigma

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on binary labels (0/1 or bool).  Returns self."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0.0] = 1.0
        Xs = self._standardize(X)
        n, d = Xs.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            p = self._sigmoid(Xs @ w + b)
            err = p - y
            grad_w = Xs.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(label == 1) per row."""
        if self.weights_ is None:
            raise RuntimeError("fit() must be called first")
        Xs = self._standardize(np.asarray(X, dtype=np.float64))
        return self._sigmoid(Xs @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at a decision threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy at threshold 0.5."""
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=np.int64)))
