"""Deterministic FTL workload replay: the high-fidelity device driver.

Bridges the mobile workload generator to the page-level FTL so that a
*device-accurate* simulation (real GC, wear leveling, per-block PEC) can
stand in for the epoch-level lifetime model when an experiment needs
page-granularity answers (§4.3 mechanisms: write amplification from GC,
wear spread under leveling).

The replay is **scale-free**: daily workload volumes are expressed as a
fraction of the *logical* device capacity and mapped onto a small
simulated chip, so the wear trajectory (PEC as a fraction of rated
endurance) tracks what the full-size device would see while the page
count stays small enough to replay thousands of devices.

Everything is deterministic in ``(config)``: the workload volumes come
from the seeded :class:`~repro.workloads.mobile.MobileWorkload`, the
LPN choices from a dedicated PCG64 stream, and reads/trims consult only
the (deterministic) mapping state -- never page contents.  That last
property is what makes the analytic chip fast path a drop-in: replaying
the same config with ``analytic=True`` and ``analytic=False`` performs
the identical operation sequence and lands the identical
:class:`~repro.ftl.ftl.FtlStats` (pinned by the equivalence suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry

from .ftl import Ftl, FtlStats
from .gc import GcPolicy
from .streams import StreamConfig

__all__ = ["FtlReplayConfig", "FtlReplayResult", "build_replay_ftl", "replay"]

#: Single data stream name used by the replay device.
STREAM = "data"


@dataclass(frozen=True, slots=True)
class FtlReplayConfig:
    """One replayed device.

    Attributes
    ----------
    mix:
        User-intensity mix key (``USER_MIXES``).
    days:
        Service days to replay.
    capacity_gb:
        Logical capacity the workload volumes are scaled against (the
        *modeled* device size; the simulated chip is much smaller).
    seed:
        Workload + op-stream + chip seed (one per device).
    analytic:
        Run eligible streams on the analytic chip fast path (no byte
        materialization).  The replay only uses transparent protection,
        so this toggles the whole device.
    vectorized_gc:
        Use the masked-argmin GC victim selector.
    page_size_bytes / pages_per_block / blocks:
        Simulated chip shape (default ~6 MB physical).
    utilization:
        Logical pages as a fraction of physical data pages; the rest is
        GC headroom (over-provisioning).
    protection:
        Protection level of the data stream.  ``NONE`` (default) is
        analytic-eligible; ``WEAK``/``STRONG`` force the bit-exact path
        regardless of ``analytic``.
    gc_policy:
        Victim-selection policy.
    wl_period_days:
        Run one static wear-leveling pass every this many days.
    """

    mix: str = "typical"
    days: int = 90
    capacity_gb: float = 64.0
    seed: int = 0
    analytic: bool = True
    vectorized_gc: bool = True
    page_size_bytes: int = 2048
    pages_per_block: int = 32
    blocks: int = 96
    utilization: float = 0.85
    protection: ProtectionLevel = ProtectionLevel.NONE
    gc_policy: GcPolicy = GcPolicy.GREEDY
    wl_period_days: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        if self.blocks < 4:
            raise ValueError("need at least 4 blocks for GC headroom")
        if self.wl_period_days <= 0:
            raise ValueError("wl_period_days must be positive")

    @property
    def logical_pages(self) -> int:
        """Host-visible logical page count."""
        return int(self.blocks * self.pages_per_block * self.utilization)


@dataclass(slots=True)
class FtlReplayResult:
    """Outcome of one device replay."""

    stats: FtlStats
    #: mean / max PEC-over-rated across non-retired blocks
    mean_wear: float = 0.0
    max_wear: float = 0.0
    #: host-level operations performed (writes + reads + trims)
    host_ops: int = 0
    wall_s: float = 0.0
    retired_blocks: int = 0

    @property
    def ops_per_s(self) -> float:
        """Replay throughput in host operations per wall second."""
        return self.host_ops / self.wall_s if self.wall_s > 0 else 0.0


def build_replay_ftl(config: FtlReplayConfig) -> Ftl:
    """Construct the simulated device for one replay config."""
    geometry = Geometry(
        page_size_bytes=config.page_size_bytes,
        pages_per_block=config.pages_per_block,
        blocks_per_plane=config.blocks,
        planes_per_die=1,
        dies=1,
    )
    technology = CellTechnology.TLC
    mode = native_mode(technology)
    chip = FlashChip(geometry, technology, mode, seed=config.seed)
    stream = StreamConfig(
        name=STREAM,
        mode=mode,
        protection=POLICIES[config.protection],
        gc_policy=config.gc_policy,
    )
    return Ftl(
        chip,
        [stream],
        {STREAM: list(range(geometry.total_blocks))},
        analytic=config.analytic,
        vectorized_gc=config.vectorized_gc,
    )


def _daily_op_counts(config: FtlReplayConfig) -> dict[str, np.ndarray]:
    """Per-day write/read/trim op counts scaled to the logical space.

    A day that writes ``g`` GB against a ``capacity_gb`` device touches
    ``g / capacity_gb`` of the logical space; the same fraction of the
    replay device's logical pages is written.  Volumes come from the
    seeded workload generator, so the counts are a pure function of
    ``(mix, days, seed, capacity_gb, chip shape)``.
    """
    from repro.workloads.mobile import MobileWorkload, WorkloadConfig

    volumes = MobileWorkload(
        WorkloadConfig(mix=config.mix, days=config.days, seed=config.seed)
    ).daily_volume_arrays()
    pages = config.logical_pages
    scale = pages / config.capacity_gb

    def count(gb: np.ndarray) -> np.ndarray:
        return np.minimum(np.ceil(gb * scale), pages).astype(np.int64)

    return {
        "writes": count(
            volumes["new_media_gb"] + volumes["new_other_gb"] + volumes["overwrite_gb"]
        ),
        "reads": count(volumes["read_gb"]),
        "trims": count(volumes["delete_gb"]),
    }


def replay(config: FtlReplayConfig) -> FtlReplayResult:
    """Replay one device's workload through the page-level FTL.

    Prefills the logical space (a device in service is full of data,
    which is what makes GC work for its living), then steps day by day:
    overwrites to uniform LPNs, reads to mapped LPNs, trims, a daily
    retention-clock tick, and a weekly wear-leveling pass.
    """
    ftl = build_replay_ftl(config)
    counts = _daily_op_counts(config)
    pages = config.logical_pages
    rng = np.random.default_rng(config.seed + 1)
    batched = ftl.stream(STREAM).analytic

    t0 = time.perf_counter()
    ops = 0
    if batched:
        ftl.write_many(np.arange(pages, dtype=np.int64), STREAM)
        ops += pages
    else:
        for lpn in range(pages):
            ftl.write(lpn, b"", STREAM)
            ops += 1
    for day in range(config.days):
        writes = rng.integers(0, pages, int(counts["writes"][day]))
        reads = rng.integers(0, pages, int(counts["reads"][day]))
        trims = rng.integers(0, pages, int(counts["trims"][day]))
        if batched:
            ftl.write_many(writes, STREAM)
            ops += writes.size
            ops += ftl.read_many(reads, STREAM)
            ops += ftl.trim_many(trims)
        else:
            for lpn in writes.tolist():
                ftl.write(lpn, b"", STREAM)
                ops += 1
            for lpn in reads.tolist():
                # trimmed LPNs are skipped deterministically: mapping
                # state is a pure function of the op stream, never of
                # page bytes, so both fidelities skip the same reads
                if ftl.page_map.is_mapped(lpn):
                    ftl.read(lpn)
                    ops += 1
            for lpn in trims.tolist():
                if ftl.page_map.is_mapped(lpn):
                    ftl.trim(lpn)
                    ops += 1
        ftl.chip.advance_time((day + 1) / 365.25)
        if (day + 1) % config.wl_period_days == 0:
            ftl.run_wear_leveling(STREAM)
    wall = time.perf_counter() - t0

    arrays = ftl.chip.arrays
    live = ~arrays.retired
    wear = arrays.pec[live] / arrays.rated_pec[live]
    return FtlReplayResult(
        stats=ftl.stats,
        mean_wear=float(wear.mean()) if wear.size else 0.0,
        max_wear=float(wear.max()) if wear.size else 0.0,
        host_ops=ops,
        wall_s=wall,
        retired_blocks=int(arrays.retired.sum()),
    )
