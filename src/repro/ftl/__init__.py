"""Flash translation layer substrate.

Page-mapped L2P, garbage collection, (toggleable) static wear leveling,
bad-block retirement with density resuscitation, and multi-stream/zone
partitioning -- the device-side mechanisms §4.3 of the paper manipulates.
"""

from .bad_blocks import BlockHealthPolicy, BlockVerdict, assess_block
from .ftl import Ftl, FtlStats, OutOfSpaceError
from .gc import GcPolicy, select_victim, select_victim_arrays
from .mapping import BlockUsage, DictPageMap, PageMap
from .streams import StreamConfig
from .wear_leveling import WearLeveler, WearLevelerConfig
from .zones import ZoneClass, ZonedDevice, ZoneError, ZoneInfo, ZoneState

__all__ = [
    "BlockHealthPolicy",
    "BlockVerdict",
    "assess_block",
    "Ftl",
    "FtlStats",
    "OutOfSpaceError",
    "GcPolicy",
    "select_victim",
    "select_victim_arrays",
    "BlockUsage",
    "DictPageMap",
    "PageMap",
    "StreamConfig",
    "WearLeveler",
    "WearLevelerConfig",
    "ZoneClass",
    "ZonedDevice",
    "ZoneError",
    "ZoneInfo",
    "ZoneState",
]
