"""Garbage-collection victim selection policies.

Two classic policies:

* **greedy** -- pick the block with the fewest valid pages (minimum
  migration cost now);
* **cost-benefit** -- weigh reclaimable space against migration cost and
  block "age" (time since last write), preferring cold, mostly-invalid
  blocks (Kawaguchi et al.).

SOS's SPARE partition additionally cares about *wear*: migrating data off
a block costs that block's remaining life nothing, but the destination
pays a program and the victim pays an erase.  The cost-benefit policy can
therefore be wear-weighted to prefer victims with remaining endurance.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable

import numpy as np

from repro.flash.block import Block, BlockArrays
from repro.obs import get_observer

from .mapping import PageMap

__all__ = ["GcPolicy", "select_victim", "select_victim_arrays"]


class GcPolicy(enum.Enum):
    """Victim-selection strategy."""

    GREEDY = "greedy"
    COST_BENEFIT = "cost_benefit"


def _greedy_score(block_index: int, block: Block, page_map: PageMap, now: float) -> float:
    """Lower is better: valid page count (ties broken by index upstream)."""
    return float(page_map.valid_pages(block_index))


def _cost_benefit_score(
    block_index: int, block: Block, page_map: PageMap, now: float
) -> float:
    """Lower is better: negative of the classic (benefit/cost * age) score.

    utilization u = valid/usable; benefit = (1-u), cost = (1+u) (one read
    + one write per valid page, one erase amortized); age = years since
    the block was last programmed, approximated by the oldest page write
    time.  Wear-awareness: blocks already past rated endurance are
    deprioritized by scaling age down.
    """
    usable = max(1, block.usable_pages)
    u = page_map.valid_pages(block_index) / usable
    if u >= 1.0:
        return float("inf")  # nothing to reclaim
    age = max(0.0, now - block.last_write_time_years())
    wear_penalty = 1.0 / (1.0 + max(0.0, block.wear_ratio - 1.0))
    score = ((1.0 - u) / (1.0 + u)) * (age + 1e-6) * wear_penalty
    return -score


_SCORERS: dict[GcPolicy, Callable[[int, Block, PageMap, float], float]] = {
    GcPolicy.GREEDY: _greedy_score,
    GcPolicy.COST_BENEFIT: _cost_benefit_score,
}


def select_victim(
    candidates: Iterable[tuple[int, Block]],
    page_map: PageMap,
    policy: GcPolicy,
    now_years: float = 0.0,
) -> int | None:
    """Choose a GC victim among ``candidates``; None if no block qualifies.

    Candidates should be full (no free pages) and not retired; blocks that
    are entirely valid are never chosen (no space to reclaim).  Ties are
    broken by the **lowest block index** regardless of candidate order --
    the pinned contract :func:`select_victim_arrays` reproduces with a
    sorted argmin.

    Observer interaction is one span and one count per *invocation* (never
    per candidate), and a disarmed observer skips span construction
    entirely, keeping the "observability off is free" guarantee on this
    hot path.
    """
    obs = get_observer()
    if not obs.enabled:
        best_index, _considered = _scan_candidates(
            candidates, page_map, policy, now_years
        )
        return best_index
    with obs.span("gc.select_victim"):
        best_index, considered = _scan_candidates(
            candidates, page_map, policy, now_years
        )
    obs.count("gc.candidates_considered", considered)
    return best_index


def _scan_candidates(
    candidates: Iterable[tuple[int, Block]],
    page_map: PageMap,
    policy: GcPolicy,
    now_years: float,
) -> tuple[int | None, int]:
    """Scalar victim scan: (best index, candidates considered)."""
    scorer = _SCORERS[policy]
    best_index: int | None = None
    best_score = float("inf")
    considered = 0
    for block_index, block in candidates:
        if block.retired:
            continue
        valid = page_map.valid_pages(block_index)
        if valid >= block.usable_pages:
            continue
        considered += 1
        score = scorer(block_index, block, page_map, now_years)
        if score < best_score or (
            score == best_score
            and best_index is not None
            and block_index < best_index
        ):
            best_score = score
            best_index = block_index
    return best_index, considered


def select_victim_arrays(
    candidate_indices: np.ndarray,
    page_map: PageMap,
    policy: GcPolicy,
    now_years: float,
    block_arrays: BlockArrays,
) -> int | None:
    """Vectorized :func:`select_victim`: a masked argmin over state arrays.

    ``candidate_indices`` are block indices (any order); eligibility,
    scores, and the winner come from ``block_arrays`` (maintained by the
    chip on every program/erase/retire) and the page map's valid-count
    column -- no per-candidate Python calls.  Scores are computed with
    the exact floating-point operation sequence of the scalar scorers,
    elementwise, so the chosen victim is identical per invocation
    (including lowest-index tie-breaking: candidates are sorted and
    ``argmin`` returns the first minimum).
    """
    idx = np.asarray(candidate_indices, dtype=np.int64)
    obs = get_observer()
    if not obs.enabled:
        return _argmin_victim(idx, page_map, policy, now_years, block_arrays)[0]
    with obs.span("gc.select_victim"):
        best, considered = _argmin_victim(
            idx, page_map, policy, now_years, block_arrays
        )
    obs.count("gc.candidates_considered", considered)
    return best


def _argmin_victim(
    idx: np.ndarray,
    page_map: PageMap,
    policy: GcPolicy,
    now_years: float,
    arrays: BlockArrays,
) -> tuple[int | None, int]:
    if idx.size == 0:
        return None, 0
    idx = np.sort(idx)
    valid = page_map.valid_counts(idx)
    usable = arrays.usable_pages[idx]
    eligible = ~arrays.retired[idx] & (valid < usable)
    considered = int(eligible.sum())
    if not considered:
        return None, 0
    if policy is GcPolicy.GREEDY:
        scores = valid.astype(np.float64)
    else:
        # mirror _cost_benefit_score's op order exactly (IEEE elementwise)
        u = valid / np.maximum(1, usable)
        age = np.maximum(0.0, now_years - arrays.last_write_years[idx])
        wear_ratio = arrays.pec[idx] / arrays.rated_pec[idx]
        wear_penalty = 1.0 / (1.0 + np.maximum(0.0, wear_ratio - 1.0))
        scores = -(((1.0 - u) / (1.0 + u)) * (age + 1e-6) * wear_penalty)
    scores = np.where(eligible, scores, np.inf)
    return int(idx[np.argmin(scores)]), considered
