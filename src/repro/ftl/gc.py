"""Garbage-collection victim selection policies.

Two classic policies:

* **greedy** -- pick the block with the fewest valid pages (minimum
  migration cost now);
* **cost-benefit** -- weigh reclaimable space against migration cost and
  block "age" (time since last write), preferring cold, mostly-invalid
  blocks (Kawaguchi et al.).

SOS's SPARE partition additionally cares about *wear*: migrating data off
a block costs that block's remaining life nothing, but the destination
pays a program and the victim pays an erase.  The cost-benefit policy can
therefore be wear-weighted to prefer victims with remaining endurance.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable

from repro.flash.block import Block
from repro.obs import get_observer

from .mapping import PageMap

__all__ = ["GcPolicy", "select_victim"]


class GcPolicy(enum.Enum):
    """Victim-selection strategy."""

    GREEDY = "greedy"
    COST_BENEFIT = "cost_benefit"


def _greedy_score(block_index: int, block: Block, page_map: PageMap, now: float) -> float:
    """Lower is better: valid page count (ties broken by index upstream)."""
    return float(page_map.valid_pages(block_index))


def _cost_benefit_score(
    block_index: int, block: Block, page_map: PageMap, now: float
) -> float:
    """Lower is better: negative of the classic (benefit/cost * age) score.

    utilization u = valid/usable; benefit = (1-u), cost = (1+u) (one read
    + one write per valid page, one erase amortized); age = years since
    the block was last programmed, approximated by the oldest page write
    time.  Wear-awareness: blocks already past rated endurance are
    deprioritized by scaling age down.
    """
    usable = max(1, block.usable_pages)
    u = page_map.valid_pages(block_index) / usable
    if u >= 1.0:
        return float("inf")  # nothing to reclaim
    age = max(0.0, now - block.last_write_time_years())
    wear_penalty = 1.0 / (1.0 + max(0.0, block.wear_ratio - 1.0))
    score = ((1.0 - u) / (1.0 + u)) * (age + 1e-6) * wear_penalty
    return -score


_SCORERS: dict[GcPolicy, Callable[[int, Block, PageMap, float], float]] = {
    GcPolicy.GREEDY: _greedy_score,
    GcPolicy.COST_BENEFIT: _cost_benefit_score,
}


def select_victim(
    candidates: Iterable[tuple[int, Block]],
    page_map: PageMap,
    policy: GcPolicy,
    now_years: float = 0.0,
) -> int | None:
    """Choose a GC victim among ``candidates``; None if no block qualifies.

    Candidates should be full (no free pages) and not retired; blocks that
    are entirely valid are never chosen (no space to reclaim).
    """
    scorer = _SCORERS[policy]
    best_index: int | None = None
    best_score = float("inf")
    considered = 0
    with get_observer().span("gc.select_victim"):
        for block_index, block in candidates:
            if block.retired:
                continue
            valid = page_map.valid_pages(block_index)
            if valid >= block.usable_pages:
                continue
            considered += 1
            score = scorer(block_index, block, page_map, now_years)
            if score < best_score:
                best_score = score
                best_index = block_index
    get_observer().count("gc.candidates_considered", considered)
    return best_index
