"""Static wear leveling -- and the option to disable it.

Classic static wear leveling bounds the PEC spread across blocks by
periodically migrating *cold* data (long-lived valid pages) out of the
least-worn blocks so those blocks rejoin the hot write path.

§4.3 of the paper (citing Jiao et al., "Wear Leveling in SSDs Considered
Harmful") **disables** preemptive wear leveling on the SPARE partition:
every preemptive migration costs an extra program/erase on data that may
be deleted before its block would ever have worn naturally, which *reduces*
total lifetime under typical personal workloads.  Experiment E7 measures
exactly this trade-off, so the leveler is a pluggable, per-stream policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.block import Block

from .mapping import PageMap

__all__ = ["WearLevelerConfig", "WearLeveler"]


@dataclass(frozen=True, slots=True)
class WearLevelerConfig:
    """Tuning for static wear leveling.

    Attributes
    ----------
    enabled:
        Master switch (False on SOS's SPARE partition).
    pec_spread_threshold:
        Trigger a leveling migration when ``max_pec - min_pec`` among live
        blocks exceeds this.
    """

    enabled: bool = True
    pec_spread_threshold: int = 20


class WearLeveler:
    """Detects wear imbalance and nominates cold blocks for migration."""

    def __init__(self, config: WearLevelerConfig) -> None:
        self.config = config
        self.migrations_triggered = 0

    def pick_cold_victim(
        self, candidates: list[tuple[int, Block]], page_map: PageMap
    ) -> int | None:
        """Nominate the least-worn block holding valid data for forced GC.

        Returns the block index to migrate, or None when leveling is
        disabled or the wear spread is within threshold.  The caller
        migrates the victim's valid pages to the hot write path; the freed
        low-PEC block then absorbs future hot writes, equalizing wear.
        """
        if not self.config.enabled:
            return None
        live = [(i, b) for i, b in candidates if not b.retired]
        if len(live) < 2:
            return None
        pecs = [b.pec for _, b in live]
        if max(pecs) - min(pecs) <= self.config.pec_spread_threshold:
            return None
        # coldest = least-worn block that still holds valid data
        holders = [(i, b) for i, b in live if page_map.valid_pages(i) > 0]
        if not holders:
            return None
        victim_index, _ = min(holders, key=lambda item: item[1].pec)
        self.migrations_triggered += 1
        return victim_index
