"""Stream (zone) configuration: physically partitioned block sets.

§4.3: "the device can manage data cooperatively with the host OS through
SSD-specific abstractions, such as multi-stream or zoned interfaces,
where the host is responsible for placing data blocks in relevant
streams/zones with different management policies."

A :class:`StreamConfig` bundles everything that differs between SOS's SYS
and SPARE partitions: operating cell mode, ECC protection, GC policy,
wear-leveling switch, and block-health thresholds.  The FTL assigns each
stream a disjoint set of physical blocks (the paper's "two physically
separate sets of flash blocks").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecc.policy import ProtectionPolicy
from repro.flash.cell import CellMode

from .bad_blocks import BlockHealthPolicy
from .gc import GcPolicy
from .wear_leveling import WearLevelerConfig

__all__ = ["StreamConfig"]


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """Management policy for one stream/zone.

    Attributes
    ----------
    name:
        Stream identifier (e.g. ``"sys"``, ``"spare"``).
    mode:
        Operating cell mode for the stream's blocks.
    protection:
        ECC policy applied to every page written to the stream.
    gc_policy:
        Victim-selection strategy for intra-stream garbage collection.
    wear_leveling:
        Static wear-leveling configuration (disabled on SPARE).
    health:
        Retirement/resuscitation thresholds.
    gc_free_block_threshold:
        Run GC when the stream's free-block pool drops to this size.
    """

    name: str
    mode: CellMode
    protection: ProtectionPolicy
    gc_policy: GcPolicy = GcPolicy.GREEDY
    wear_leveling: WearLevelerConfig = field(default_factory=WearLevelerConfig)
    health: BlockHealthPolicy | None = None
    gc_free_block_threshold: int = 2
