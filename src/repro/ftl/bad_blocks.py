"""Worn-block handling: retirement and density resuscitation.

§4.3 of the paper proposes two fates for a block that can no longer
reliably store data at its operating density:

* **retire** it, shrinking device capacity (capacity variance, exposed to
  a tolerant host file system);
* **resuscitate** it at a reduced density (e.g. worn PLC reborn as
  pseudo-TLC), trading capacity for renewed margin, citing FlexFS-style
  reduced-density reuse.

A block is deemed unreliable when its *predicted* end-of-retention RBER
exceeds what the partition's ECC can correct (for protected partitions)
or a quality-driven RBER ceiling (for approximate partitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.block import Block
from repro.flash.cell import CellMode
from repro.flash.error_model import ErrorModel

__all__ = [
    "BlockHealthPolicy",
    "BlockVerdict",
    "assess_block",
    "infant_mortality_deaths",
]


@dataclass(frozen=True, slots=True)
class BlockHealthPolicy:
    """Thresholds for declaring a block unreliable at its current mode.

    Attributes
    ----------
    max_rber:
        RBER ceiling the partition tolerates (derived from ECC strength or
        acceptable quality loss).
    retention_horizon_years:
        Data must stay below ``max_rber`` for this long after a write.
    resuscitation_modes:
        Decreasing-density fallback ladder to try before retiring, e.g.
        ``[pseudo_mode(PLC, 3), pseudo_mode(PLC, 1)]``.  Empty = retire
        immediately.
    """

    max_rber: float
    retention_horizon_years: float
    resuscitation_modes: tuple[CellMode, ...] = ()


@dataclass(frozen=True, slots=True)
class BlockVerdict:
    """Assessment outcome for one block."""

    healthy: bool
    #: mode to reconfigure to, if resuscitation is recommended
    resuscitate_to: CellMode | None = None
    #: True when the block should be retired outright
    retire: bool = False


def _mode_is_reliable(mode: CellMode, pec: int, policy: BlockHealthPolicy) -> bool:
    """Whether a block at ``pec`` can hold data for the retention horizon."""
    model = ErrorModel(mode)
    predicted = model.rber(pec=pec, years_since_write=policy.retention_horizon_years)
    return predicted <= policy.max_rber


def assess_block(block: Block, policy: BlockHealthPolicy) -> BlockVerdict:
    """Decide whether a block is healthy, resuscitable, or worn out.

    The assessment uses the block's accrued PEC and the *predicted* RBER at
    the policy's retention horizon -- i.e. "if I write data here today,
    will it still be readable at the end of the horizon?", which is the
    question an allocation-time health check must answer.
    """
    if block.retired:
        return BlockVerdict(healthy=False, retire=True)
    if _mode_is_reliable(block.mode, block.pec, policy):
        return BlockVerdict(healthy=True)
    for mode in policy.resuscitation_modes:
        if mode.operating_bits >= block.mode.operating_bits:
            continue  # only consider strictly lower densities
        if _mode_is_reliable(mode, block.pec, policy):
            return BlockVerdict(healthy=False, resuscitate_to=mode)
    return BlockVerdict(healthy=False, retire=True)


def infant_mortality_deaths(
    n_units: int, rate: float, rng: np.random.Generator
) -> list[int]:
    """Sample which of ``n_units`` blocks die in infancy.

    Real flash failure populations are not uniform wear-out: "The Dirty
    Secret of SSDs" reports failures clustered in early life (latent
    manufacturing defects) on top of the wear-driven tail.  Each unit
    dies independently with probability ``rate``; callers (the fault
    planner) schedule *when* inside the infant window.

    Consumes exactly one ``rng.random(n_units)`` draw, so plan
    generation stays reproducible as other fault classes are added.
    """
    if n_units <= 0:
        return []
    draws = rng.random(n_units)
    if rate <= 0.0:
        return []
    return [int(i) for i in np.flatnonzero(draws < rate)]
