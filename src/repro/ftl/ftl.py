"""Page-mapped flash translation layer over a bit-exact flash chip.

The FTL owns the chip and exposes logical-page reads/writes routed to
named streams, implementing the device half of the paper's co-design:

* per-stream physical block partitions with independent cell modes, ECC,
  GC, and wear-leveling policies (§4.2-§4.3);
* garbage collection with pluggable victim selection;
* optional static wear leveling (disabled on SPARE);
* allocation-time block health checks with retirement (capacity variance)
  and density resuscitation (§4.3);
* error propagation through GC: migrating approximate data re-encodes
  whatever was read, so uncorrected errors accumulate across moves --
  the physical mechanism behind gradual degradation.

Data written through a stream is encoded with the stream's protection
policy; reads decode and report corrected/uncorrectable counts so callers
(the SOS scrubber, the media layer) can observe degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.page_codec import PageCodec, PageReadResult
from repro.flash.chip import FlashChip
from repro.flash.timing import TimingModel
from repro.obs import get_observer

from .bad_blocks import assess_block
from .gc import select_victim, select_victim_arrays
from .mapping import PageMap
from .streams import StreamConfig
from .wear_leveling import WearLeveler

__all__ = ["Ftl", "FtlStats", "OutOfSpaceError"]


class OutOfSpaceError(Exception):
    """Raised when a stream cannot reclaim enough space for a write."""


@dataclass(slots=True)
class FtlStats:
    """Cumulative FTL activity counters."""

    host_writes: int = 0
    host_reads: int = 0
    gc_migrations: int = 0
    gc_erases: int = 0
    wl_migrations: int = 0
    blocks_retired: int = 0
    blocks_resuscitated: int = 0
    corrected_bits: int = 0
    uncorrectable_codewords: int = 0
    parity_recoveries: int = 0
    #: cumulative device-time spent in NAND operations (microseconds)
    read_time_us: float = 0.0
    program_time_us: float = 0.0
    erase_time_us: float = 0.0


class _Stream:
    """Runtime state for one configured stream."""

    def __init__(self, config: StreamConfig, block_indices: list[int], page_size: int) -> None:
        self.config = config
        self.blocks = list(block_indices)
        #: sorted block indices as an array: the vectorized GC victim
        #: selector's candidate universe (sorted => argmin tie-breaks on
        #: lowest block index, matching the scalar oracle)
        self.block_arr = np.sort(np.asarray(block_indices, dtype=np.int64))
        self.codec = PageCodec(config.protection, page_size)
        self.free: list[int] = list(block_indices)
        self.open_block: int | None = None
        self.leveler = WearLeveler(config.wear_leveling)
        self.timing = TimingModel(config.mode)
        #: §4.2 "additional redundancy (e.g., parity)": reserve the last
        #: page of each block for an XOR of the block's data pages
        self.parity_enabled = config.protection.block_parity
        self._parity_acc = bytearray(page_size)
        #: set by the Ftl: True when this stream runs the analytic chip
        #: fast path (transparent codec, no parity, Ftl(analytic=True))
        self.analytic = False

    def reset_parity(self) -> None:
        """Clear the running parity accumulator (new open block)."""
        self._parity_acc = bytearray(len(self._parity_acc))

    def accumulate_parity(self, encoded: bytes) -> None:
        """Fold one programmed page into the running parity."""
        for i, b in enumerate(encoded):
            self._parity_acc[i] ^= b

    def parity_bytes(self) -> bytes:
        """Current parity page contents."""
        return bytes(self._parity_acc)

    @property
    def name(self) -> str:
        return self.config.name


class Ftl:
    """Flash translation layer managing a chip partitioned into streams.

    Parameters
    ----------
    chip:
        The flash chip to manage.  Blocks named in ``stream_blocks`` are
        reconfigured to their stream's operating mode at construction.
    streams:
        Stream configurations.
    stream_blocks:
        Disjoint physical block index lists, one per stream, covering any
        subset of the chip.
    analytic:
        Opt into the analytic chip fast path for eligible streams.  A
        stream is eligible when its protection never inspects page
        content: a transparent codec (``ProtectionLevel.NONE``) and no
        block parity.  Eligible streams skip byte materialization and
        error-injection RNG entirely (expected bit errors accrue
        analytically on the blocks); BCH/Hamming- or parity-protected
        streams always keep the bit-exact path, even under
        ``analytic=True``.  ``FtlStats`` is pinned identical between the
        two paths on eligible streams -- reads just return empty
        payloads.
    vectorized_gc:
        Select GC victims with the masked-argmin array selector
        (:func:`repro.ftl.gc.select_victim_arrays`).  ``False`` keeps
        the per-candidate scalar scan as a test oracle; both choose the
        identical victim on every invocation.
    """

    def __init__(
        self,
        chip: FlashChip,
        streams: list[StreamConfig],
        stream_blocks: dict[str, list[int]],
        *,
        analytic: bool = False,
        vectorized_gc: bool = True,
    ) -> None:
        if {s.name for s in streams} != set(stream_blocks):
            raise ValueError("streams and stream_blocks must name the same streams")
        claimed: set[int] = set()
        for name, indices in stream_blocks.items():
            overlap = claimed.intersection(indices)
            if overlap:
                raise ValueError(f"blocks {sorted(overlap)} assigned to multiple streams")
            claimed.update(indices)
        self.chip = chip
        self.page_map = PageMap(chip.geometry.total_blocks, chip.geometry.pages_per_block)
        self.stats = FtlStats()
        self.analytic = analytic
        self.vectorized_gc = vectorized_gc
        self._streams: dict[str, _Stream] = {}
        self._lpn_stream: dict[int, str] = {}
        for config in streams:
            indices = stream_blocks[config.name]
            for block_index in indices:
                if chip.blocks[block_index].mode != config.mode:
                    chip.reconfigure_block(block_index, config.mode)
            stream = _Stream(config, indices, chip.geometry.page_size_bytes)
            stream.analytic = (
                analytic and stream.codec.transparent and not stream.parity_enabled
            )
            self._streams[config.name] = stream

    # -- capacity / introspection -------------------------------------------

    def stream(self, name: str) -> _Stream:
        """Runtime state of a stream (read-only use expected)."""
        return self._streams[name]

    def stream_names(self) -> list[str]:
        """Configured stream names."""
        return list(self._streams)

    def logical_page_bytes(self, stream_name: str) -> int:
        """Usable payload bytes per logical page in a stream."""
        return self._streams[stream_name].codec.payload_bytes

    def stream_of(self, lpn: int) -> str | None:
        """Which stream currently holds an LPN."""
        return self._lpn_stream.get(lpn)

    def stream_capacity_pages(self, stream_name: str) -> int:
        """Host-visible data pages a stream can hold (excl. retired
        blocks and per-block parity reservations)."""
        stream = self._streams[stream_name]
        reserved = 1 if stream.parity_enabled else 0
        return sum(
            max(0, self.chip.blocks[i].usable_pages - reserved)
            for i in stream.blocks
            if not self.chip.blocks[i].retired
        )

    def stream_live_pages(self, stream_name: str) -> int:
        """Live (mapped) logical pages currently in a stream."""
        return sum(1 for lpn, s in self._lpn_stream.items() if s == stream_name)

    # -- host operations -------------------------------------------------------

    def write(self, lpn: int, payload: bytes, stream_name: str) -> None:
        """Write one logical page's payload into a stream.

        Overwrites relocate: if the LPN previously lived in another
        stream, the old copy is invalidated there.
        """
        stream = self._streams[stream_name]
        if len(payload) > stream.codec.payload_bytes:
            raise ValueError(
                f"payload {len(payload)}B exceeds stream '{stream_name}' "
                f"logical page size {stream.codec.payload_bytes}B"
            )
        if stream.analytic:
            addr = self._allocate_page(stream)
            self.chip.program_analytic(addr)
            self.stats.program_time_us += stream.timing.times().program_us
        else:
            encoded = stream.codec.encode(payload)
            addr = self._allocate_page(stream)
            self._program(stream, addr, encoded)
        self.page_map.record_write(lpn, addr)
        self._lpn_stream[lpn] = stream_name
        self.stats.host_writes += 1

    def read(self, lpn: int) -> PageReadResult:
        """Read and decode one logical page.

        On an uncorrectable result in a parity-protected stream, attempts
        block-parity reconstruction (§4.2's SYS redundancy) before
        returning.
        """
        addr = self.page_map.lookup(lpn)
        if addr is None:
            raise KeyError(f"LPN {lpn} is not mapped")
        stream = self._streams[self._lpn_stream[lpn]]
        if stream.analytic:
            # transparent codec: the decode would report 0 corrections and
            # 0 uncorrectable words whatever the bytes were, so the stats
            # trajectory matches the bit-exact path exactly; only the
            # payload (which analytic streams never materialize) is empty
            self.chip.read_analytic(addr)
            self.stats.read_time_us += stream.timing.times().read_us
            result = PageReadResult(
                payload=b"", corrected_bits=0, uncorrectable_codewords=0
            )
        else:
            raw = self.chip.read(addr)
            self.stats.read_time_us += stream.timing.times().read_us
            result = stream.codec.decode(raw)
            if result.uncorrectable_codewords > 0 and stream.parity_enabled:
                recovered = self._parity_reconstruct(stream, addr)
                if recovered is not None and recovered.uncorrectable_codewords == 0:
                    self.stats.parity_recoveries += 1
                    result = recovered
        self.stats.host_reads += 1
        self.stats.corrected_bits += result.corrected_bits
        self.stats.uncorrectable_codewords += result.uncorrectable_codewords
        return result

    def trim(self, lpn: int) -> None:
        """Invalidate an LPN (host delete)."""
        self.page_map.invalidate(lpn)
        self._lpn_stream.pop(lpn, None)

    # -- batched host operations (vectorized hot path) ---------------------

    def write_many(self, lpns, stream_name: str) -> None:
        """Write many logical pages with empty payloads, in order.

        Equivalent to ``write(lpn, b"", stream_name)`` per LPN.  On an
        analytic stream the batch is the vectorized hot path: writes are
        split into open-block-sized runs, each run programs its pages
        and updates the page map in a handful of array operations, and
        GC/wear bookkeeping happens at exactly the block boundaries the
        scalar sequence would hit -- so mapping state, wear, GC victims,
        and ``FtlStats`` are identical to the scalar loop (NAND time
        counters are integer-valued microseconds, so ``n`` equal float
        adds equal one ``n``-scaled add exactly).  Non-analytic streams
        fall back to the scalar loop.
        """
        stream = self._streams[stream_name]
        arr = np.asarray(lpns, dtype=np.int64)
        if not stream.analytic:
            for lpn in arr.tolist():
                self.write(lpn, b"", stream_name)
            return
        times = stream.timing.times()
        pos = 0
        while pos < arr.size:
            if (
                stream.open_block is None
                or self.chip.blocks[stream.open_block].free_pages <= 0
            ):
                self._seal_parity(stream)
                self._open_new_block(stream)
            block = self.chip.blocks[stream.open_block]  # type: ignore[index]
            run = min(block.free_pages, arr.size - pos)
            start_page = block.usable_pages - block.free_pages
            block.program_analytic_many(run)
            self.stats.program_time_us += times.program_us * run
            self.page_map.record_writes(
                arr[pos: pos + run], stream.open_block, start_page
            )
            pos += run
        self._lpn_stream.update(dict.fromkeys(arr.tolist(), stream_name))
        self.stats.host_writes += int(arr.size)

    def read_many(self, lpns, stream_name: str) -> int:
        """Read many logical pages, skipping unmapped LPNs; returns reads.

        Equivalent to ``read(lpn)`` for every *mapped* LPN in order.
        Every mapped LPN must currently live in ``stream_name`` (batch
        callers own their placement; this is not checked per LPN).  On
        an analytic stream the mapped set resolves to physical pages in
        one lookup and each touched block evaluates its RBERs in a
        single vectorized call.
        """
        stream = self._streams[stream_name]
        arr = np.asarray(lpns, dtype=np.int64)
        if not stream.analytic:
            count = 0
            for lpn in arr.tolist():
                if self.page_map.is_mapped(lpn):
                    self.read(lpn)
                    count += 1
            return count
        mapped = arr[self.page_map.is_mapped_many(arr)]
        if mapped.size:
            self.chip.read_analytic_many(self.page_map.lookup_flat_many(mapped))
            self.stats.read_time_us += stream.timing.times().read_us * int(mapped.size)
        self.stats.host_reads += int(mapped.size)
        return int(mapped.size)

    def trim_many(self, lpns) -> int:
        """Invalidate many LPNs; returns how many were actually mapped."""
        freed = self.page_map.invalidate_many(np.asarray(lpns, dtype=np.int64))
        for lpn in freed.tolist():
            self._lpn_stream.pop(lpn, None)
        return int(freed.size)

    def relocate(self, lpn: int, target_stream: str) -> PageReadResult:
        """Move an LPN's current payload to another stream (SOS placement).

        Reads through the source stream's codec and rewrites through the
        target's; returns the read result so callers can audit quality.
        """
        result = self.read(lpn)
        payload = result.payload[: self._streams[target_stream].codec.payload_bytes]
        self.write(lpn, payload, target_stream)
        return result

    # -- maintenance ------------------------------------------------------------

    def run_wear_leveling(self, stream_name: str) -> int:
        """One wear-leveling pass; returns pages migrated."""
        stream = self._streams[stream_name]
        # include free blocks: their wear counts toward the spread even
        # though only data-holding blocks can be nominated for migration
        candidates = [
            (i, self.chip.blocks[i]) for i in stream.blocks if i != stream.open_block
        ]
        victim = stream.leveler.pick_cold_victim(candidates, self.page_map)
        if victim is None:
            return 0
        migrated = self._migrate_block(stream, victim)
        self.stats.wl_migrations += migrated
        return migrated

    def check_stream_health(self, stream_name: str) -> None:
        """Assess free blocks; retire or resuscitate unreliable ones.

        The open block is assessed too: writing fresh data onto a worn
        block defeats the point of a rescue, so an unhealthy open block
        is abandoned (its remaining pages are wasted; GC reclaims the
        block once its live pages migrate away).
        """
        stream = self._streams[stream_name]
        policy = stream.config.health
        if policy is None:
            return
        if stream.open_block is not None:
            verdict = assess_block(self.chip.blocks[stream.open_block], policy)
            if not verdict.healthy:
                stream.open_block = None
        obs = get_observer()
        for block_index in list(stream.free):
            block = self.chip.blocks[block_index]
            verdict = assess_block(block, policy)
            if verdict.healthy:
                continue
            if verdict.resuscitate_to is not None:
                if block.free_pages != block.usable_pages:
                    block.erase()
                self.chip.reconfigure_block(block_index, verdict.resuscitate_to)
                self.stats.blocks_resuscitated += 1
                obs.event(
                    "block_resuscitated", t=self.chip.now_years,
                    stream=stream_name, block=block_index,
                    bits=verdict.resuscitate_to.operating_bits,
                )
            elif verdict.retire:
                stream.free.remove(block_index)
                self.chip.retire_block(block_index)
                self.stats.blocks_retired += 1
                obs.event(
                    "block_retired", t=self.chip.now_years,
                    stream=stream_name, block=block_index, reason="wear",
                )

    def force_retire(self, stream_name: str, block_index: int) -> bool:
        """Retire one specific block outright (fault injection path).

        Models an infant-mortality death: the block is lost regardless of
        its assessed health.  Live pages are migrated to the stream's
        write path first, so data survives the block -- the §4.3 contract
        is that media failure degrades capacity, not integrity, for
        protected data.  Returns False when the block is already retired.
        """
        stream = self._streams[stream_name]
        if block_index not in stream.blocks:
            raise ValueError(f"block {block_index} is not in stream '{stream_name}'")
        block = self.chip.blocks[block_index]
        if block.retired:
            return False
        if stream.open_block == block_index:
            stream.open_block = None
        if block_index in stream.free:
            stream.free.remove(block_index)
        elif any(True for _ in self.page_map.live_lpns(block_index)):
            # rescue live data onto the write path (appends victim to the
            # free list as a side effect; pull it back out before retiring)
            self._migrate_block(stream, block_index)
            stream.free.remove(block_index)
        else:
            self.page_map.on_erase(block_index)
        self.chip.retire_block(block_index)
        self.stats.blocks_retired += 1
        get_observer().event(
            "block_retired", t=self.chip.now_years, stream=stream_name,
            block=block_index, reason="fault",
        )
        return True

    # -- internals ---------------------------------------------------------------

    def _allocate_page(self, stream: _Stream, during_gc: bool = False) -> tuple[int, int]:
        """Next programmable page in the stream's open block.

        Parity-protected streams reserve each block's last page; when the
        open block reaches it, the parity page is sealed in and a new
        block is opened.
        """
        reserved = 1 if stream.parity_enabled else 0
        block = None if stream.open_block is None else self.chip.blocks[stream.open_block]
        if block is None or block.free_pages <= reserved:
            self._seal_parity(stream)
            self._open_new_block(stream, during_gc)
            block = self.chip.blocks[stream.open_block]  # type: ignore[index]
        page_index = block.usable_pages - block.free_pages
        return (stream.open_block, page_index)  # type: ignore[return-value]

    def _program(self, stream: _Stream, addr: tuple[int, int], encoded: bytes) -> None:
        """Program an encoded page, maintaining parity and timing."""
        self.chip.program(addr, encoded)
        self.stats.program_time_us += stream.timing.times().program_us
        if stream.parity_enabled:
            page_size = self.chip.geometry.page_size_bytes
            stream.accumulate_parity(encoded.ljust(page_size, b"\x00"))

    def _seal_parity(self, stream: _Stream) -> None:
        """Write the parity page into the open block's reserved slot."""
        if not stream.parity_enabled or stream.open_block is None:
            return
        block = self.chip.blocks[stream.open_block]
        if block.free_pages != 1:
            return  # partially written block: parity stays unsealed
        page_index = block.usable_pages - 1
        self.chip.program((stream.open_block, page_index), stream.parity_bytes())
        self.stats.program_time_us += stream.timing.times().program_us

    def _parity_reconstruct(self, stream: _Stream, addr: tuple[int, int]):
        """Rebuild one page from the XOR of its block's other pages.

        Returns the decoded reconstruction, or None when the block's
        parity page is not sealed (open block) or pages are missing.
        """
        block_index, failed_page = addr
        block = self.chip.blocks[block_index]
        parity_index = block.usable_pages - 1
        if not block.is_programmed(parity_index):
            return None
        page_size = self.chip.geometry.page_size_bytes
        acc = bytearray(page_size)
        for page in range(block.usable_pages):
            if page == failed_page:
                continue
            if not block.is_programmed(page):
                return None
            data = self.chip.read((block_index, page))
            self.stats.read_time_us += stream.timing.times().read_us
            for i, byte in enumerate(data):
                acc[i] ^= byte
        return stream.codec.decode(bytes(acc))

    def _open_new_block(self, stream: _Stream, during_gc: bool = False) -> None:
        if not during_gc and len(stream.free) <= stream.config.gc_free_block_threshold:
            self._garbage_collect(stream)
        if not stream.free:
            raise OutOfSpaceError(f"stream '{stream.name}' has no free blocks")
        block_index = stream.free.pop(0)
        block = self.chip.blocks[block_index]
        if block.free_pages != block.usable_pages:
            block.erase()
            self.page_map.on_erase(block_index)
            self.stats.erase_time_us += stream.timing.times().erase_us
        stream.open_block = block_index
        stream.reset_parity()

    def _garbage_collect(self, stream: _Stream) -> None:
        """Reclaim blocks until the free pool exceeds its threshold."""
        with get_observer().span("ftl.gc"):
            self._garbage_collect_inner(stream)

    def _garbage_collect_inner(self, stream: _Stream) -> None:
        target = stream.config.gc_free_block_threshold + 1
        attempts = 0
        while len(stream.free) < target and attempts < len(stream.blocks):
            attempts += 1
            victim = self._select_gc_victim(stream)
            if victim is None:
                break
            self._migrate_block(stream, victim)
            self.stats.gc_erases += 1

    def _select_gc_victim(self, stream: _Stream) -> int | None:
        """One victim choice among the stream's closed blocks.

        The vectorized path masks the stream's (sorted) block array by
        open/free/retired status and reduces to an argmin over the shared
        chip state arrays; the scalar path rebuilds the per-candidate
        list and scans it -- kept as the equivalence oracle.  Both return
        the identical victim (ties to the lowest block index).
        """
        if self.vectorized_gc:
            blocks = stream.block_arr
            mask = ~self.chip.arrays.retired[blocks]
            if stream.open_block is not None:
                mask &= blocks != stream.open_block
            if stream.free:
                # block_arr is sorted, and the free pool is tiny: probe
                # each free block's slot instead of a full isin sweep
                free = np.asarray(stream.free, dtype=np.int64)
                slots = np.searchsorted(blocks, free)
                hit = (slots < blocks.size) & (blocks[np.minimum(slots, blocks.size - 1)] == free)
                mask[slots[hit]] = False
            return select_victim_arrays(
                blocks[mask],
                self.page_map,
                stream.config.gc_policy,
                self.chip.now_years,
                self.chip.arrays,
            )
        # candidates: closed blocks (full or abandoned part-written)
        candidates = [
            (i, self.chip.blocks[i])
            for i in stream.blocks
            if i != stream.open_block
            and i not in stream.free
            and not self.chip.blocks[i].retired
        ]
        return select_victim(
            candidates, self.page_map, stream.config.gc_policy, self.chip.now_years
        )

    def _migrate_block(self, stream: _Stream, victim_index: int) -> int:
        """Move a block's live pages to the write path, then free it."""
        migrated = 0
        if stream.analytic:
            migrated = self._migrate_block_analytic(stream, victim_index)
        else:
            for _page_index, lpn in self.page_map.live_lpns(victim_index):
                addr = self.page_map.lookup(lpn)
                if addr is None or addr[0] != victim_index:
                    continue
                raw = self.chip.read(addr)
                self.stats.read_time_us += stream.timing.times().read_us
                result = stream.codec.decode(raw)
                encoded = stream.codec.encode(result.payload)
                new_addr = self._allocate_page(stream, during_gc=True)
                self._program(stream, new_addr, encoded)
                self.page_map.record_write(lpn, new_addr)
                migrated += 1
                self.stats.gc_migrations += 1
        victim = self.chip.blocks[victim_index]
        victim.erase()
        self.page_map.on_erase(victim_index)
        self.stats.erase_time_us += stream.timing.times().erase_us
        stream.free.append(victim_index)
        return migrated

    def _migrate_block_analytic(self, stream: _Stream, victim_index: int) -> int:
        """Analytic-mode migration: no byte materialization.

        The victim's live pages are "read" in one vectorized batch (wear
        and expected-error bookkeeping only -- migration never inspects
        content on a transparent codec), then rewritten in open-block
        runs like :meth:`write_many`.  Safe to batch the reads up front:
        destination programs go to the open block, never the victim, and
        per-page read counts are independent, so the chip-side accruals
        match the interleaved scalar order exactly (time counters are
        integer-valued microseconds -- scaled adds equal repeated adds).
        """
        pages, lpns = self.page_map.live_lpns_arrays(victim_index)
        if not lpns.size:
            return 0
        block = self.chip.blocks[victim_index]
        block.read_analytic_many(pages, self.chip.now_years)
        times = stream.timing.times()
        self.stats.read_time_us += times.read_us * int(lpns.size)
        pos = 0
        while pos < lpns.size:
            if (
                stream.open_block is None
                or self.chip.blocks[stream.open_block].free_pages <= 0
            ):
                self._seal_parity(stream)
                self._open_new_block(stream, during_gc=True)
            dest = self.chip.blocks[stream.open_block]  # type: ignore[index]
            run = min(dest.free_pages, lpns.size - pos)
            start_page = dest.usable_pages - dest.free_pages
            dest.program_analytic_many(run)
            self.stats.program_time_us += times.program_us * run
            self.page_map.record_writes(
                lpns[pos: pos + run], stream.open_block, start_page,
                assume_unique=True,
            )
            pos += run
        self.stats.gc_migrations += int(lpns.size)
        return int(lpns.size)
