"""Logical-to-physical page mapping with per-block validity tracking.

A page-mapped FTL keeps, for every logical page number (LPN), the physical
(block, page) currently holding its data, plus the reverse view garbage
collection needs: which LPN each physical page holds and whether that copy
is still live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.chip import PhysicalAddress

__all__ = ["PageMap", "BlockUsage"]


@dataclass(slots=True)
class BlockUsage:
    """Reverse-map state for one erase block."""

    #: LPN stored at each physical page; None = unwritten or invalidated.
    page_lpns: list[int | None] = field(default_factory=list)
    valid_count: int = 0

    def reset(self, pages: int) -> None:
        """Clear after erase."""
        self.page_lpns = [None] * pages
        self.valid_count = 0


class PageMap:
    """Bidirectional LPN <-> physical-page map.

    Parameters
    ----------
    total_blocks:
        Number of erase blocks managed.
    pages_per_block:
        Native pages per block (usage arrays are sized for native; pseudo
        modes simply never touch the tail entries).
    """

    def __init__(self, total_blocks: int, pages_per_block: int) -> None:
        self.pages_per_block = pages_per_block
        self._l2p: dict[int, PhysicalAddress] = {}
        self._usage = [BlockUsage() for _ in range(total_blocks)]
        for usage in self._usage:
            usage.reset(pages_per_block)

    # -- queries -------------------------------------------------------------

    def lookup(self, lpn: int) -> PhysicalAddress | None:
        """Physical address of an LPN, or None if unmapped."""
        return self._l2p.get(lpn)

    def is_mapped(self, lpn: int) -> bool:
        """Whether the LPN currently has a live physical copy."""
        return lpn in self._l2p

    def valid_pages(self, block_index: int) -> int:
        """Live pages in a block (GC cost input)."""
        return self._usage[block_index].valid_count

    def live_lpns(self, block_index: int) -> list[tuple[int, int]]:
        """(page_index, lpn) pairs for live pages of a block."""
        usage = self._usage[block_index]
        out = []
        for page_index, lpn in enumerate(usage.page_lpns):
            if lpn is not None and self._l2p.get(lpn) == (block_index, page_index):
                out.append((page_index, lpn))
        return out

    def mapped_count(self) -> int:
        """Number of live logical pages device-wide."""
        return len(self._l2p)

    def all_mapped_lpns(self) -> list[int]:
        """Sorted list of all live LPNs."""
        return sorted(self._l2p)

    # -- updates ---------------------------------------------------------------

    def record_write(self, lpn: int, addr: PhysicalAddress) -> None:
        """Point ``lpn`` at a freshly programmed page, invalidating any old copy."""
        old = self._l2p.get(lpn)
        if old is not None:
            old_block, _old_page = old
            self._usage[old_block].valid_count -= 1
        block_index, page_index = addr
        usage = self._usage[block_index]
        usage.page_lpns[page_index] = lpn
        usage.valid_count += 1
        self._l2p[lpn] = addr

    def invalidate(self, lpn: int) -> PhysicalAddress | None:
        """Drop the mapping for ``lpn`` (trim); returns the freed address."""
        addr = self._l2p.pop(lpn, None)
        if addr is not None:
            self._usage[addr[0]].valid_count -= 1
        return addr

    def on_erase(self, block_index: int) -> None:
        """Reset reverse-map state after a block erase.

        All live data must have been migrated first; erasing a block with
        valid pages is a bug in the caller.
        """
        if self._usage[block_index].valid_count != 0:
            raise RuntimeError(
                f"erasing block {block_index} with "
                f"{self._usage[block_index].valid_count} valid pages"
            )
        self._usage[block_index].reset(self.pages_per_block)
