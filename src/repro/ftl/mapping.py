"""Logical-to-physical page mapping with per-block validity tracking.

A page-mapped FTL keeps, for every logical page number (LPN), the physical
(block, page) currently holding its data, plus the reverse view garbage
collection needs: which LPN each physical page holds and whether that copy
is still live.

Two implementations live here:

* :class:`PageMap` -- the production map: flat ``int64`` arrays for both
  directions (L2P indexed by LPN, P2L indexed by flattened physical page)
  plus a per-block valid-page count array.  Every update is O(1) array
  arithmetic, and the valid-count array doubles as the input the
  vectorized GC victim selector (:func:`repro.ftl.gc.select_victim_arrays`)
  reads directly -- no per-candidate Python calls on the GC hot path.
* :class:`DictPageMap` -- the original ``dict[int, PhysicalAddress]`` +
  per-block :class:`BlockUsage` list implementation, kept verbatim as the
  semantic reference.  The hypothesis property suite drives random
  write/trim/migrate/erase sequences through both and asserts every query
  agrees; the arrays are allowed to be fast *because* the dict stays
  authoritative about what the operations mean.

Both expose the same API; ``-1`` is the array sentinel for "unmapped".
LPNs must be non-negative (the L2P array grows geometrically to cover the
largest LPN seen, so sparse-but-bounded host address spaces are fine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.chip import PhysicalAddress

__all__ = ["PageMap", "DictPageMap", "BlockUsage"]


@dataclass(slots=True)
class BlockUsage:
    """Reverse-map state for one erase block (dict reference impl)."""

    #: LPN stored at each physical page; None = unwritten or invalidated.
    page_lpns: list[int | None] = field(default_factory=list)
    valid_count: int = 0

    def reset(self, pages: int) -> None:
        """Clear after erase."""
        self.page_lpns = [None] * pages
        self.valid_count = 0


class PageMap:
    """Bidirectional LPN <-> physical-page map over flat numpy arrays.

    Parameters
    ----------
    total_blocks:
        Number of erase blocks managed.
    pages_per_block:
        Native pages per block (reverse arrays are sized for native;
        pseudo modes simply never touch the tail entries).

    Invariants (pinned against :class:`DictPageMap` by property tests):

    * ``_l2p[lpn]`` is the flattened physical index of the LPN's live
      copy, or -1;
    * ``_p2l[flat]`` is the LPN whose *live* copy sits at that physical
      page, or -1 -- stale copies are cleared eagerly on overwrite and
      trim, so :meth:`live_lpns` is a plain non-negative scan in page
      order;
    * ``_valid[block]`` counts live pages per block and ``_mapped`` the
      device-wide total, both maintained incrementally.
    """

    def __init__(self, total_blocks: int, pages_per_block: int) -> None:
        if total_blocks <= 0 or pages_per_block <= 0:
            raise ValueError("total_blocks and pages_per_block must be positive")
        self.pages_per_block = pages_per_block
        self.total_blocks = total_blocks
        n_pages = total_blocks * pages_per_block
        self._l2p = np.full(n_pages, -1, dtype=np.int64)
        self._p2l = np.full(n_pages, -1, dtype=np.int64)
        self._valid = np.zeros(total_blocks, dtype=np.int64)
        self._mapped = 0

    # -- queries -------------------------------------------------------------

    def lookup(self, lpn: int) -> PhysicalAddress | None:
        """Physical address of an LPN, or None if unmapped."""
        if lpn < 0 or lpn >= self._l2p.size:
            return None
        flat = self._l2p[lpn]
        if flat < 0:
            return None
        return (int(flat) // self.pages_per_block, int(flat) % self.pages_per_block)

    def is_mapped(self, lpn: int) -> bool:
        """Whether the LPN currently has a live physical copy."""
        return 0 <= lpn < self._l2p.size and self._l2p[lpn] >= 0

    def valid_pages(self, block_index: int) -> int:
        """Live pages in a block (GC cost input)."""
        return int(self._valid[block_index])

    def valid_counts(self, block_indices: np.ndarray) -> np.ndarray:
        """Live-page counts for many blocks at once (GC selector input)."""
        return self._valid[block_indices]

    def live_lpns(self, block_index: int) -> list[tuple[int, int]]:
        """(page_index, lpn) pairs for live pages of a block."""
        pages, lpns = self.live_lpns_arrays(block_index)
        return list(zip(pages.tolist(), lpns.tolist()))

    def live_lpns_arrays(self, block_index: int) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`live_lpns` as (pages, lpns) arrays (batch-migration input)."""
        lo = block_index * self.pages_per_block
        window = self._p2l[lo: lo + self.pages_per_block]
        pages = np.nonzero(window >= 0)[0]
        return pages, window[pages]

    def is_mapped_many(self, lpns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_mapped` over an LPN array."""
        lpns = np.asarray(lpns, dtype=np.int64)
        out = np.zeros(lpns.size, dtype=bool)
        in_range = (lpns >= 0) & (lpns < self._l2p.size)
        out[in_range] = self._l2p[lpns[in_range]] >= 0
        return out

    def lookup_flat_many(self, lpns: np.ndarray) -> np.ndarray:
        """Flattened physical indices for LPNs that must all be mapped."""
        flats = self._l2p[np.asarray(lpns, dtype=np.int64)]
        if (flats < 0).any():
            raise KeyError("lookup_flat_many on unmapped LPN(s)")
        return flats

    def mapped_count(self) -> int:
        """Number of live logical pages device-wide."""
        return self._mapped

    def all_mapped_lpns(self) -> list[int]:
        """Sorted list of all live LPNs."""
        return np.nonzero(self._l2p >= 0)[0].tolist()

    # -- updates ---------------------------------------------------------------

    def record_write(self, lpn: int, addr: PhysicalAddress) -> None:
        """Point ``lpn`` at a freshly programmed page, invalidating any old copy."""
        if lpn < 0:
            raise ValueError("LPNs must be non-negative")
        if lpn >= self._l2p.size:
            self._grow(lpn)
        old = self._l2p[lpn]
        if old >= 0:
            self._valid[old // self.pages_per_block] -= 1
            self._p2l[old] = -1
        else:
            self._mapped += 1
        block_index, page_index = addr
        flat = block_index * self.pages_per_block + page_index
        self._p2l[flat] = lpn
        self._valid[block_index] += 1
        self._l2p[lpn] = flat

    def invalidate(self, lpn: int) -> PhysicalAddress | None:
        """Drop the mapping for ``lpn`` (trim); returns the freed address."""
        if lpn < 0 or lpn >= self._l2p.size:
            return None
        flat = self._l2p[lpn]
        if flat < 0:
            return None
        self._l2p[lpn] = -1
        self._p2l[flat] = -1
        block_index = int(flat) // self.pages_per_block
        self._valid[block_index] -= 1
        self._mapped -= 1
        return (block_index, int(flat) % self.pages_per_block)

    def record_writes(
        self,
        lpns: np.ndarray,
        block_index: int,
        start_page: int,
        assume_unique: bool = False,
    ) -> None:
        """Batched :meth:`record_write` for LPNs landing on consecutive pages.

        Equivalent to ``record_write(lpns[i], (block_index, start_page+i))``
        for each ``i`` in order.  Duplicate LPNs within the batch behave
        like sequential overwrites: only the last occurrence's page ends
        up live (earlier pages are programmed-but-dead, exactly as the
        scalar sequence leaves them).  Callers that can guarantee
        distinct LPNs (GC migration rewrites a block's live set, one
        entry per LPN) pass ``assume_unique=True`` to skip the
        duplicate resolution sort.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        n = lpns.size
        if n == 0:
            return
        if assume_unique:
            # callers asserting uniqueness hold already-mapped LPNs
            # (migration), so range checks and table growth are moot
            uniq = lpns
            last_pos = np.arange(n)
        else:
            if int(lpns.min()) < 0:
                raise ValueError("LPNs must be non-negative")
            top = int(lpns.max())
            if top >= self._l2p.size:
                self._grow(top)
            # last occurrence of each unique LPN wins (scalar overwrite order)
            uniq, rev_first = np.unique(lpns[::-1], return_index=True)
            last_pos = n - 1 - rev_first
        old = self._l2p[uniq]
        had_old = old >= 0
        old_flats = old[had_old]
        # distinct LPNs map to distinct flats, but several may share a
        # block: per-block decrements must accumulate
        np.subtract.at(self._valid, old_flats // self.pages_per_block, 1)
        self._p2l[old_flats] = -1
        self._mapped += int(uniq.size - had_old.sum())
        live_flats = (
            block_index * self.pages_per_block + start_page + last_pos
        )
        self._p2l[live_flats] = uniq
        self._l2p[uniq] = live_flats
        self._valid[block_index] += uniq.size

    def invalidate_many(self, lpns: np.ndarray) -> np.ndarray:
        """Batched :meth:`invalidate`; returns the LPNs actually freed.

        Out-of-range, unmapped, and duplicate LPNs are no-ops, exactly
        as in the scalar sequence.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        lpns = lpns[(lpns >= 0) & (lpns < self._l2p.size)]
        uniq = np.unique(lpns)
        flats = self._l2p[uniq]
        mapped = flats >= 0
        uniq, flats = uniq[mapped], flats[mapped]
        self._l2p[uniq] = -1
        self._p2l[flats] = -1
        np.subtract.at(self._valid, flats // self.pages_per_block, 1)
        self._mapped -= int(uniq.size)
        return uniq

    def on_erase(self, block_index: int) -> None:
        """Reset reverse-map state after a block erase.

        All live data must have been migrated first; erasing a block with
        valid pages is a bug in the caller.
        """
        if self._valid[block_index] != 0:
            raise RuntimeError(
                f"erasing block {block_index} with "
                f"{int(self._valid[block_index])} valid pages"
            )
        lo = block_index * self.pages_per_block
        self._p2l[lo: lo + self.pages_per_block] = -1

    # -- internals -------------------------------------------------------------

    def _grow(self, lpn: int) -> None:
        """Extend the L2P array to cover ``lpn`` (geometric growth)."""
        new_size = max(lpn + 1, self._l2p.size * 2)
        grown = np.full(new_size, -1, dtype=np.int64)
        grown[: self._l2p.size] = self._l2p
        self._l2p = grown


class DictPageMap:
    """Reference implementation: plain dict + per-block usage lists.

    Kept byte-for-byte as the pre-vectorization :class:`PageMap`; the
    property suite in ``tests/ftl/test_mapping_properties.py`` pins the
    array implementation's observable behaviour to this one.
    """

    def __init__(self, total_blocks: int, pages_per_block: int) -> None:
        self.pages_per_block = pages_per_block
        self.total_blocks = total_blocks
        self._l2p: dict[int, PhysicalAddress] = {}
        self._usage = [BlockUsage() for _ in range(total_blocks)]
        for usage in self._usage:
            usage.reset(pages_per_block)

    # -- queries -------------------------------------------------------------

    def lookup(self, lpn: int) -> PhysicalAddress | None:
        """Physical address of an LPN, or None if unmapped."""
        return self._l2p.get(lpn)

    def is_mapped(self, lpn: int) -> bool:
        """Whether the LPN currently has a live physical copy."""
        return lpn in self._l2p

    def valid_pages(self, block_index: int) -> int:
        """Live pages in a block (GC cost input)."""
        return self._usage[block_index].valid_count

    def live_lpns(self, block_index: int) -> list[tuple[int, int]]:
        """(page_index, lpn) pairs for live pages of a block."""
        usage = self._usage[block_index]
        out = []
        for page_index, lpn in enumerate(usage.page_lpns):
            if lpn is not None and self._l2p.get(lpn) == (block_index, page_index):
                out.append((page_index, lpn))
        return out

    def live_lpns_arrays(self, block_index: int) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`live_lpns` as (pages, lpns) arrays."""
        pairs = self.live_lpns(block_index)
        pages = np.asarray([p for p, _ in pairs], dtype=np.int64)
        lpns = np.asarray([l for _, l in pairs], dtype=np.int64)
        return pages, lpns

    def mapped_count(self) -> int:
        """Number of live logical pages device-wide."""
        return len(self._l2p)

    def all_mapped_lpns(self) -> list[int]:
        """Sorted list of all live LPNs."""
        return sorted(self._l2p)

    # -- updates ---------------------------------------------------------------

    def record_write(self, lpn: int, addr: PhysicalAddress) -> None:
        """Point ``lpn`` at a freshly programmed page, invalidating any old copy."""
        old = self._l2p.get(lpn)
        if old is not None:
            old_block, _old_page = old
            self._usage[old_block].valid_count -= 1
        block_index, page_index = addr
        usage = self._usage[block_index]
        usage.page_lpns[page_index] = lpn
        usage.valid_count += 1
        self._l2p[lpn] = addr

    def invalidate(self, lpn: int) -> PhysicalAddress | None:
        """Drop the mapping for ``lpn`` (trim); returns the freed address."""
        addr = self._l2p.pop(lpn, None)
        if addr is not None:
            self._usage[addr[0]].valid_count -= 1
        return addr

    def record_writes(
        self, lpns, block_index: int, start_page: int, assume_unique: bool = False
    ) -> None:
        """Batched :meth:`record_write` (reference: the literal scalar loop)."""
        for i, lpn in enumerate(np.asarray(lpns, dtype=np.int64)):
            if lpn < 0:
                raise ValueError("LPNs must be non-negative")
            self.record_write(int(lpn), (block_index, start_page + i))

    def invalidate_many(self, lpns) -> np.ndarray:
        """Batched :meth:`invalidate` (reference: the literal scalar loop)."""
        freed = [
            lpn
            for lpn in np.asarray(lpns, dtype=np.int64).tolist()
            if self.invalidate(lpn) is not None
        ]
        return np.asarray(sorted(freed), dtype=np.int64)

    def on_erase(self, block_index: int) -> None:
        """Reset reverse-map state after a block erase.

        All live data must have been migrated first; erasing a block with
        valid pages is a bug in the caller.
        """
        if self._usage[block_index].valid_count != 0:
            raise RuntimeError(
                f"erasing block {block_index} with "
                f"{self._usage[block_index].valid_count} valid pages"
            )
        self._usage[block_index].reset(self.pages_per_block)
