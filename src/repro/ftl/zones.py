"""Zoned-namespace interface: the host-managed alternative of §4.3.

"Alternatively, the device can manage data cooperatively with the host
OS through SSD-specific abstractions, such as multi-stream or zoned
interfaces, where the host is responsible for placing data blocks in
relevant streams/zones with different management policies."

This adapter exposes the bit-exact chip through ZNS-style semantics:

* each zone is one erase block with a write pointer;
* writes are **zone append** only (sequential, at the pointer);
* ``reset`` erases the zone (one PEC);
* zones carry a *class* (SYS-like or SPARE-like) fixing their operating
  cell mode and ECC -- the host encodes SOS's placement decision simply
  by choosing which zone to append to;
* ``finish`` closes a partially written zone (no further appends).

The FTL's stream interface (:mod:`repro.ftl.ftl`) and this zoned
interface are two host-visible encodings of the same physical split;
``tests/ftl/test_zones.py`` checks the equivalences that matter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ecc.page_codec import PageCodec, PageReadResult
from repro.ecc.policy import ProtectionPolicy
from repro.flash.cell import CellMode
from repro.flash.chip import FlashChip

__all__ = ["ZoneState", "ZoneClass", "ZoneInfo", "ZonedDevice", "ZoneError"]


class ZoneError(Exception):
    """Raised on zoned-interface protocol violations."""


class ZoneState(enum.Enum):
    """ZNS-style zone states (simplified)."""

    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"
    FINISHED = "finished"
    OFFLINE = "offline"


@dataclass(frozen=True, slots=True)
class ZoneClass:
    """Management class for a set of zones (the SYS/SPARE analogue)."""

    name: str
    mode: CellMode
    protection: ProtectionPolicy


@dataclass(slots=True)
class ZoneInfo:
    """Host-visible descriptor of one zone."""

    zone_id: int
    zone_class: str
    state: ZoneState
    write_pointer: int
    capacity_pages: int


class ZonedDevice:
    """A chip exposed as ZNS-style zones, one erase block per zone.

    Parameters
    ----------
    chip:
        Backing flash chip.
    zone_classes:
        class name -> :class:`ZoneClass`.
    zone_assignment:
        class name -> list of block indices (disjoint).
    """

    def __init__(
        self,
        chip: FlashChip,
        zone_classes: dict[str, ZoneClass],
        zone_assignment: dict[str, list[int]],
    ) -> None:
        if set(zone_classes) != set(zone_assignment):
            raise ValueError("zone classes and assignment must match")
        claimed: set[int] = set()
        for indices in zone_assignment.values():
            overlap = claimed.intersection(indices)
            if overlap:
                raise ValueError(f"blocks {sorted(overlap)} assigned twice")
            claimed.update(indices)
        self.chip = chip
        self._classes = zone_classes
        self._zone_class: dict[int, str] = {}
        self._state: dict[int, ZoneState] = {}
        self._codecs: dict[str, PageCodec] = {}
        for name, zclass in zone_classes.items():
            self._codecs[name] = PageCodec(
                zclass.protection, chip.geometry.page_size_bytes
            )
            for block_index in zone_assignment[name]:
                if chip.blocks[block_index].mode != zclass.mode:
                    chip.reconfigure_block(block_index, zclass.mode)
                self._zone_class[block_index] = name
                self._state[block_index] = ZoneState.EMPTY

    # -- introspection ---------------------------------------------------------

    def zones(self, zone_class: str | None = None) -> list[ZoneInfo]:
        """Descriptors of all zones (optionally one class)."""
        out = []
        for zone_id, name in sorted(self._zone_class.items()):
            if zone_class is not None and name != zone_class:
                continue
            out.append(self.info(zone_id))
        return out

    def info(self, zone_id: int) -> ZoneInfo:
        """Descriptor of one zone."""
        block = self.chip.blocks[zone_id]
        return ZoneInfo(
            zone_id=zone_id,
            zone_class=self._zone_class[zone_id],
            state=self._state[zone_id],
            write_pointer=block.usable_pages - block.free_pages,
            capacity_pages=block.usable_pages,
        )

    def payload_bytes(self, zone_class: str) -> int:
        """Per-append payload capacity for a zone class."""
        return self._codecs[zone_class].payload_bytes

    # -- data path ---------------------------------------------------------------

    def append(self, zone_id: int, payload: bytes) -> int:
        """Zone append; returns the page offset written."""
        state = self._require_zone(zone_id)
        if state in (ZoneState.FULL, ZoneState.FINISHED, ZoneState.OFFLINE):
            raise ZoneError(f"zone {zone_id} is {state.value}; cannot append")
        block = self.chip.blocks[zone_id]
        codec = self._codecs[self._zone_class[zone_id]]
        if len(payload) > codec.payload_bytes:
            raise ZoneError(
                f"payload {len(payload)}B exceeds zone class capacity "
                f"{codec.payload_bytes}B"
            )
        offset = block.usable_pages - block.free_pages
        self.chip.program((zone_id, offset), codec.encode(payload))
        self._state[zone_id] = (
            ZoneState.FULL if block.free_pages == 0 else ZoneState.OPEN
        )
        return offset

    def read(self, zone_id: int, offset: int) -> PageReadResult:
        """Read one page of a zone through its class codec."""
        self._require_zone(zone_id)
        raw = self.chip.read((zone_id, offset))
        return self._codecs[self._zone_class[zone_id]].decode(raw)

    def reset(self, zone_id: int) -> None:
        """Reset (erase) a zone; costs one PEC."""
        state = self._require_zone(zone_id)
        if state is ZoneState.OFFLINE:
            raise ZoneError(f"zone {zone_id} is offline")
        self.chip.erase(zone_id)
        self._state[zone_id] = ZoneState.EMPTY

    def finish(self, zone_id: int) -> None:
        """Close a zone to further appends without filling it."""
        state = self._require_zone(zone_id)
        if state not in (ZoneState.OPEN, ZoneState.EMPTY):
            raise ZoneError(f"zone {zone_id} is {state.value}; cannot finish")
        self._state[zone_id] = ZoneState.FINISHED

    def set_offline(self, zone_id: int) -> None:
        """Take a worn zone out of service (§4.3 capacity variance)."""
        self._require_zone(zone_id)
        self.chip.retire_block(zone_id)
        self._state[zone_id] = ZoneState.OFFLINE

    def usable_capacity_pages(self) -> int:
        """Pages across all non-offline zones."""
        return sum(
            self.chip.blocks[zone_id].usable_pages
            for zone_id, state in self._state.items()
            if state is not ZoneState.OFFLINE
        )

    def _require_zone(self, zone_id: int) -> ZoneState:
        if zone_id not in self._zone_class:
            raise ZoneError(f"block {zone_id} is not an exposed zone")
        return self._state[zone_id]
