"""Fleet-of-fleets sharding: whole device populations, bounded memory.

The batch engine (:mod:`repro.sim.batch`) made one *chunk* of devices
cheap; the sweep runner (:mod:`repro.runner.sweep`) made a grid of
points fault tolerant.  This package composes them: a
:class:`FleetPlan` cuts an N-device population into batch shards, each
shard runs as one cached/retried/timeout-bounded sweep point
(:func:`fleet_shard_point`), and shard results reduce through
streaming, associatively mergeable digests (:class:`WearDigest`,
:class:`repro.obs.SnapshotAccumulator`) so peak memory follows the
shard size while the fleet scales to millions of devices.

Invariants pinned by ``tests/fleet``:

* **shard invariance** -- the same plan re-sharded (any
  ``shard_size``/``chunk``) simulates every device bit-identically;
* **exactness is planned, not emergent** -- fleets at or below
  ``exact_cap`` devices report bit-exact quantiles and a device-ordered
  wear vector; larger fleets get histogram estimates within one bin
  width, decided up front so completion order can never change the
  answer's nature;
* **streaming reduction** -- shard values are dropped as soon as they
  are cached and folded, so the coordinator never holds the fleet.
"""

from .plan import DEFAULT_EXACT_CAP, FleetPlan
from .points import fleet_shard_point
from .reduce import WEAR_BIN_WIDTH, WEAR_N_BINS, WearDigest
from .run import FleetResult, fleet_store_keys, fleet_wear_from_store, run_fleet

__all__ = [
    "DEFAULT_EXACT_CAP",
    "FleetPlan",
    "FleetResult",
    "WEAR_BIN_WIDTH",
    "WEAR_N_BINS",
    "WearDigest",
    "fleet_shard_point",
    "fleet_store_keys",
    "fleet_wear_from_store",
    "run_fleet",
]
