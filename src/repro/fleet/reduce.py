"""Streaming, associatively mergeable reducers for fleet observables.

A fleet-of-fleets run (:mod:`repro.fleet.run`) never holds every
device's result at once: each shard reduces its devices to a compact
digest, and the coordinator folds shard digests together as they
complete.  That only works if the digest's merge is **associative and
commutative** -- any shard partition, any completion order, same
answer -- which is the design constraint behind :class:`WearDigest`:

* the histogram lanes (integer bin counts, count, min, max) merge
  exactly under any grouping, so distribution *estimates* are
  shard-partition invariant by construction;
* small fleets additionally carry the raw per-device values (the
  *exact fallback*), making quantiles bit-identical to a flat
  ``np.quantile`` over the whole population -- the property the E16
  golden percentiles pin.  Whether a fleet is exact is decided once,
  up front, from the fleet size (see ``FleetPlan``), never from how
  merging happens to proceed.

Digests serialize to plain JSON-able dicts (sparse bin encoding), so a
shard's digest is its sweep-point value and rides the result cache
unchanged.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "WEAR_BIN_WIDTH",
    "WEAR_N_BINS",
    "WearDigest",
]

#: Width of one wear histogram bin (fraction of rated endurance).
WEAR_BIN_WIDTH = 0.005

#: Regular bins covering wear 0 .. 2.0; one overflow bin rides at the end.
WEAR_N_BINS = 400

_DIGEST_SCHEMA = "repro.fleet.wear_digest/v1"


class WearDigest:
    """Mergeable summary of a wear-fraction distribution.

    ``counts[i]`` holds devices with wear in ``[i*W, (i+1)*W)`` for bin
    width ``W``; the final slot collects everything at or above the
    histogram ceiling.  ``keep_exact=True`` additionally retains every
    observed value in insertion order (the exact fallback); merging two
    exact digests concatenates their values, and merging with a
    non-exact digest drops exactness -- both rules are associative, so
    exactness of a fleet merge depends only on which shards carried
    values, not on merge order.
    """

    __slots__ = ("counts", "count", "total", "min", "max", "exact")

    def __init__(self, keep_exact: bool = False) -> None:
        self.counts = [0] * (WEAR_N_BINS + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.exact: list[float] | None = [] if keep_exact else None

    # -- accumulation -----------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one device's wear fraction in."""
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"wear fractions must be finite and >= 0, got {value!r}")
        index = min(int(value / WEAR_BIN_WIDTH), WEAR_N_BINS)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.exact is not None:
            self.exact.append(value)

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- merging ----------------------------------------------------------------

    def merge_in(self, other: "WearDigest") -> None:
        """Fold another digest into this one (associative, commutative
        up to exact-value order; quantiles sort, so order never shows)."""
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.exact is not None and other.exact is not None:
            self.exact.extend(other.exact)
        else:
            self.exact = None

    def merged_with(self, other: "WearDigest") -> "WearDigest":
        """Functional merge: a new digest, both inputs untouched."""
        out = self.copy()
        out.merge_in(other)
        return out

    def copy(self) -> "WearDigest":
        out = WearDigest()
        out.counts = list(self.counts)
        out.count = self.count
        out.total = self.total
        out.min = self.min
        out.max = self.max
        out.exact = None if self.exact is None else list(self.exact)
        return out

    # -- queries ----------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """Whether quantiles come from raw values (vs histogram bins)."""
        return self.exact is not None

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("empty digest has no mean")
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the observed wear values.

        Exact digests defer to ``np.quantile`` over the raw values
        (bit-identical to a flat population array); histogram digests
        interpolate linearly inside the covering bin, so the estimate
        is within one bin width (:data:`WEAR_BIN_WIDTH`) of exact for
        any in-range value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            raise ValueError("empty digest has no quantiles")
        if self.exact is not None:
            return float(np.quantile(np.asarray(self.exact), q))
        target = q * self.count
        cumulative = 0
        for index, bin_count in enumerate(self.counts):
            if bin_count == 0:
                continue
            if cumulative + bin_count >= target:
                if index >= WEAR_N_BINS:
                    return self.max  # overflow bin: no upper edge to lerp to
                fraction = (
                    (target - cumulative) / bin_count if bin_count else 0.0
                )
                value = (index + min(max(fraction, 0.0), 1.0)) * WEAR_BIN_WIDTH
                return min(max(value, self.min), self.max)
            cumulative += bin_count
        return self.max

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    def worn_out_fraction(self, threshold: float = 1.0) -> float:
        """Fraction of devices with wear >= ``threshold``.

        Exact for exact digests; histogram digests count whole bins at
        or above the threshold (exact whenever ``threshold`` lands on a
        bin edge, as the default 1.0 does).
        """
        if self.count == 0:
            raise ValueError("empty digest has no worn-out fraction")
        if self.exact is not None:
            return sum(1 for v in self.exact if v >= threshold) / self.count
        first = min(int(math.ceil(threshold / WEAR_BIN_WIDTH)), WEAR_N_BINS)
        return sum(self.counts[first:]) / self.count

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-able form (sparse bins); inverse of :meth:`from_dict`."""
        return {
            "schema": _DIGEST_SCHEMA,
            "bin_width": WEAR_BIN_WIDTH,
            "bins": [[i, c] for i, c in enumerate(self.counts) if c],
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WearDigest":
        if data.get("schema") != _DIGEST_SCHEMA:
            raise ValueError(f"not a wear digest: schema={data.get('schema')!r}")
        if data.get("bin_width") != WEAR_BIN_WIDTH:
            raise ValueError(
                f"wear digest bin width {data.get('bin_width')!r} does not "
                f"match this build's {WEAR_BIN_WIDTH}"
            )
        out = cls()
        for index, bin_count in data["bins"]:
            out.counts[index] = int(bin_count)
        out.count = int(data["count"])
        out.total = float(data["total"])
        out.min = math.inf if data["min"] is None else float(data["min"])
        out.max = -math.inf if data["max"] is None else float(data["max"])
        exact = data.get("exact")
        out.exact = None if exact is None else [float(v) for v in exact]
        return out
