"""Fleet plans: how an N-device population is cut into batch shards.

A :class:`FleetPlan` is the declarative description of a fleet run --
population identity (seed, mix weights, workload seed base), device
configuration (build, capacity, service days), and the execution
geometry (shard size, vectorization chunk).  Its :meth:`shard_grid`
turns the plan into a sweep grid of *shard points* for
:func:`repro.fleet.points.fleet_shard_point`.

The load-bearing property is **shard invariance**: every parameter a
shard needs is a function of the plan and the shard's *global* device
interval ``[start, start + count)``, never of the shard count or of any
other shard.  Device ``u`` gets workload seed
``workload_seed_base + u`` and the intensity mix
:func:`repro.runner.points.assign_mixes` derives for global index
``u``, so re-sharding the same plan (or resuming a crashed run with a
different ``shard_size``) reproduces each device bit-identically.

``mix_weights`` is carried as an *ordered* tuple of ``(name, weight)``
pairs, and shard params encode it as a list of pairs rather than a
mapping: the order fixes which CDF interval each mix owns, and the
cache's ``stable_key`` sorts mapping keys -- two orderings that assign
devices differently must not collide on one cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.runner.points import DEFAULT_MIX_WEIGHTS

__all__ = ["DEFAULT_EXACT_CAP", "FleetPlan"]

#: Fleets at or below this many devices keep raw per-device wear values
#: (bit-exact quantiles); larger fleets reduce to histogram estimates.
DEFAULT_EXACT_CAP = 100_000


def _canonical_weights(mix_weights) -> tuple[tuple[str, float], ...]:
    pairs = (
        list(mix_weights.items())
        if isinstance(mix_weights, Mapping)
        else [(str(name), float(weight)) for name, weight in mix_weights]
    )
    if not pairs:
        raise ValueError("mix_weights must name at least one mix")
    return tuple((str(name), float(weight)) for name, weight in pairs)


@dataclass(frozen=True, slots=True)
class FleetPlan:
    """Declarative description of one fleet-of-fleets run.

    Attributes
    ----------
    n_devices:
        Population size.
    days:
        Service days each device is simulated for.
    capacity_gb:
        Per-device flash capacity.
    seed:
        Population identity seed: drives per-device mix assignment and
        the sweep's per-shard seeds.
    mix_weights:
        Ordered ``(mix name, weight)`` pairs (a mapping is accepted and
        canonicalized in iteration order).  Order is significant -- see
        the module docstring.
    shard_size:
        Devices per sweep point.  Each shard is one unit of caching,
        retry, timeout, and fault attribution in ``run_sweep``; peak
        coordinator memory is proportional to ``shard_size``, never to
        ``n_devices``.
    chunk:
        Devices per vectorized batch-engine pass *inside* a shard
        (bounds worker-side peak memory; results are chunk invariant).
    build:
        ``ALL_BUILDERS`` key for the device build.
    workload_seed_base:
        Device ``u`` runs workload seed ``workload_seed_base + u``.
    faults:
        Optional plain-data fault config mapping applied to every
        device (each device's plan is seeded by its workload seed).
    exact_cap:
        Fleets with ``n_devices <= exact_cap`` carry raw per-device
        wear values through the reduction (bit-exact quantiles and a
        device-ordered wear vector); larger fleets use histogram
        estimates so shard values stay O(bins).
    fidelity:
        Device simulation fidelity: ``"epoch"`` (default) runs the
        batched epoch-level lifetime model; ``"ftl"`` replays each
        device through the page-mapped FTL
        (:func:`repro.runner.points.ftl_population_observables`).
        Per-device identity (mix, workload seed) is the same under
        either fidelity.
    """

    n_devices: int
    days: int
    capacity_gb: float = 64.0
    seed: int = 606
    mix_weights: tuple[tuple[str, float], ...] = field(
        default_factory=lambda: _canonical_weights(DEFAULT_MIX_WEIGHTS)
    )
    shard_size: int = 1000
    chunk: int = 50
    build: str = "tlc_baseline"
    workload_seed_base: int = 1000
    faults: tuple[tuple[str, float], ...] | None = None
    exact_cap: int = DEFAULT_EXACT_CAP
    fidelity: str = "epoch"

    def __post_init__(self) -> None:
        if self.fidelity not in ("epoch", "ftl"):
            raise ValueError("fidelity must be 'epoch' or 'ftl'")
        if self.fidelity == "ftl" and self.faults is not None:
            raise ValueError("fault injection is epoch-fidelity only")
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.chunk <= 0:
            raise ValueError("chunk must be positive")
        if self.exact_cap < 0:
            raise ValueError("exact_cap must be non-negative")
        object.__setattr__(
            self, "mix_weights", _canonical_weights(self.mix_weights)
        )
        if self.faults is not None:
            items = (
                sorted(self.faults.items())
                if isinstance(self.faults, Mapping)
                else sorted((str(k), float(v)) for k, v in self.faults)
            )
            object.__setattr__(
                self, "faults", tuple((str(k), float(v)) for k, v in items)
            )

    @property
    def n_shards(self) -> int:
        return -(-self.n_devices // self.shard_size)

    @property
    def exact(self) -> bool:
        """Whether this fleet reduces exactly (decided here, up front,
        so it never depends on shard completion order)."""
        return self.n_devices <= self.exact_cap

    def shard_grid(self) -> tuple[dict, ...]:
        """One plain-data params dict per shard, for ``run_sweep``.

        Each dict depends only on the plan and the shard's global
        device interval, so a shard's cache key -- and its simulated
        devices -- survive re-sharding of everything around it.
        """
        exact = self.exact
        weights = [[name, weight] for name, weight in self.mix_weights]
        grid = []
        for start in range(0, self.n_devices, self.shard_size):
            params: dict = {
                "start": start,
                "count": min(self.shard_size, self.n_devices - start),
                "pop_seed": self.seed,
                "mix_weights": weights,
                "capacity_gb": self.capacity_gb,
                "days": self.days,
                "build": self.build,
                "workload_seed_base": self.workload_seed_base,
                "chunk": self.chunk,
                "exact": exact,
            }
            if self.faults:
                params["faults"] = dict(self.faults)
            # added only when non-default so pre-existing epoch-fleet
            # cache keys (which never carried the key) stay valid
            if self.fidelity != "epoch":
                params["fidelity"] = self.fidelity
            grid.append(params)
        return tuple(grid)
