"""Fleet-of-fleets execution: shards fanned across the sweep runner.

:func:`run_fleet` composes the two engines this repo already has into
one scale-out path:

* the **batch engine** (:mod:`repro.sim.batch`) simulates each shard's
  devices as vectorized array passes;
* the **sweep coordinator** (:mod:`repro.runner.sweep`) fans shards
  over worker processes and supplies per-shard crash-resume caching,
  retries, timeouts, and structured failure records -- a shard is one
  sweep point, so every fault-tolerance guarantee the runner makes for
  points holds per shard.

Reduction is streaming: shards resolve through the runner's
``on_point`` hook with ``keep_values=False``, each shard's digest is
folded into the fleet's :class:`~repro.fleet.reduce.WearDigest` (and
obs snapshots into a :class:`~repro.obs.SnapshotAccumulator`)
immediately, and the shard value is dropped.  Coordinator memory is
therefore bounded by one shard plus the running digests -- a
million-device fleet reduces in the same footprint as a thousand-device
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.chaos import crash_point
from repro.obs import SnapshotAccumulator, get_observer
from repro.runner.sweep import PointResult, Sweep, SweepResult, derive_seeds, run_sweep

from .plan import FleetPlan
from .points import fleet_shard_point
from .reduce import WearDigest

__all__ = [
    "FleetResult",
    "fleet_store_keys",
    "fleet_wear_from_store",
    "run_fleet",
]

#: bump when fleet_shard_point's meaning changes (part of cache keys).
#: v2: shard values carry observable columns ("obs") and a
#: histogram-only digest; exact wear comes from the wear column.
_FLEET_VERSION_TAG = "fleet-shard/v2"


@dataclass(slots=True)
class FleetResult:
    """Reduced outcome of one fleet run.

    ``wear`` aggregates every completed shard; under ``keep_going``
    some shards may have failed (see ``sweep.errors``), in which case
    ``wear.count < plan.n_devices`` and the exact wear vector is
    unavailable even for exact-mode fleets.
    """

    plan: FleetPlan
    wear: WearDigest
    sweep: SweepResult
    #: merged worker-side metrics snapshot (``collect_obs`` runs only)
    obs_metrics: dict | None = None

    @property
    def devices(self) -> int:
        """Devices actually simulated (< plan.n_devices when shards failed)."""
        return self.wear.count

    @property
    def ok(self) -> bool:
        return self.sweep.ok

    @property
    def missing_devices(self) -> int:
        """Devices the plan asked for that no completed shard delivered."""
        return self.plan.n_devices - self.wear.count

    def wear_values(self) -> list[float] | None:
        """Per-device wear in global device order, exact fleets only.

        None for histogram-mode fleets *and* for incomplete runs
        (``keep_going`` with failed shards): a partial vector cannot
        claim global device order, so it is never offered.
        """
        return None if self.wear.exact is None else list(self.wear.exact)

    def summary(self) -> dict:
        """Plain-data headline statistics for reports and benches.

        Partial fleets (``keep_going`` runs with failed shards) are
        flagged loudly rather than silently under-counted:
        ``complete`` goes False, ``failed_shards``/``missing_devices``
        say how much is absent, and the quantile fields describe only
        the ``devices`` that actually completed.
        """
        empty = self.wear.count == 0
        return {
            "devices": self.devices,
            "requested_devices": self.plan.n_devices,
            "missing_devices": self.missing_devices,
            "shards": len(self.plan.shard_grid()),
            "failed_shards": self.sweep.failed_count,
            "complete": self.ok and self.missing_devices == 0,
            "shard_size": self.plan.shard_size,
            "chunk": self.plan.chunk,
            "exact": self.wear.is_exact,
            "median": None if empty else self.wear.quantile(0.5),
            "p90": None if empty else self.wear.quantile(0.90),
            "p99": None if empty else self.wear.quantile(0.99),
            "max": None if empty else self.wear.max,
            "mean": None if empty else self.wear.mean(),
            "worn_out_fraction": None if empty else self.wear.worn_out_fraction(),
            "wall_s": self.sweep.total_wall_s,
            "storage": dict(self.sweep.storage),
        }


def run_fleet(
    plan: FleetPlan,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
    timeout_s: float | None = None,
    keep_going: bool = False,
    collect_obs: bool = False,
    name: str = "fleet",
    should_stop: Callable[[], bool] | None = None,
    on_shard: Callable[[int, int, int], None] | None = None,
    durability: str = "rename",
) -> FleetResult:
    """Run a fleet plan: shard, fan out, reduce streamingly.

    Parameters mirror :func:`repro.runner.sweep.run_sweep` (each shard
    is one sweep point); ``name`` namespaces the cache so different
    callers' fleets never share entries.  Exact-mode fleets
    (``plan.exact``) additionally reassemble the per-device wear vector
    in global device order once every shard has completed.

    ``should_stop`` is the job-level cancellation hook: polled by the
    sweep coordinator, and returning True kills every in-flight shard's
    worker and raises :class:`~repro.runner.sweep.SweepCancelled`
    (completed shards stay cached, so a re-run resumes).  ``on_shard``
    is the job-level progress feed, called in the coordinator after
    each shard reduces as ``on_shard(shards_done, total_shards,
    devices_done)`` -- a gateway streams these into its metrics.
    """
    grid = plan.shard_grid()
    sweep = Sweep(
        name=name,
        fn=fleet_shard_point,
        grid=grid,
        base_seed=plan.seed,
        version_tag=_FLEET_VERSION_TAG,
    )
    obs = get_observer()
    # fleet digest: exactness was decided by the plan; shard exact values
    # concatenate in completion order here and are re-assembled in device
    # order below (quantiles sort, so the merge itself never cares)
    wear = WearDigest(keep_exact=plan.exact)
    exact_parts: dict[int, list[float]] = {}
    obs_acc = SnapshotAccumulator() if collect_obs else None

    shards_done = 0

    def reduce_shard(point: PointResult) -> None:
        nonlocal shards_done
        digest = WearDigest.from_dict(point.value["wear"])
        if plan.exact:
            # exact per-device wear lives in the shard's wear column
            # (identical floats whether fresh or store-rehydrated)
            digest.exact = [float(v) for v in point.value["obs"]["wear"]]
        if digest.exact is not None:
            exact_parts[point.index] = digest.exact
        wear.merge_in(digest)
        shards_done += 1
        obs.count("fleet.shards_done")
        obs.count("fleet.devices_done", digest.count)
        if obs_acc is not None and point.obs is not None:
            obs_acc.add(point.obs["metrics"])
            point.obs = None  # folded; keep coordinator memory shard-bounded
        crash_point("fleet.shard.reduced")
        if on_shard is not None:
            on_shard(shards_done, len(grid), wear.count)

    result = run_sweep(
        sweep,
        jobs=jobs,
        cache_dir=cache_dir,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        timeout_s=timeout_s,
        keep_going=keep_going,
        collect_obs=collect_obs,
        on_point=reduce_shard,
        keep_values=False,
        should_stop=should_stop,
        durability=durability,
    )
    if plan.exact:
        if len(exact_parts) == len(grid):
            wear.exact = [
                value for index in sorted(exact_parts) for value in exact_parts[index]
            ]
        else:
            # incomplete fleets (keep_going with failed shards) cannot
            # claim a device-ordered exact vector
            wear.exact = None
    obs_metrics = (
        obs_acc.snapshot() if obs_acc is not None and obs_acc.count else None
    )
    return FleetResult(plan=plan, wear=wear, sweep=result, obs_metrics=obs_metrics)


def fleet_store_keys(plan: FleetPlan, name: str = "fleet") -> list[str]:
    """The cache/store keys of ``plan``'s shards, in shard (device) order.

    Exactly the keys :func:`run_fleet` persists under -- same sweep
    name, version tag, grid, and derived seeds -- so a finished fleet's
    column store can be queried without re-running anything.
    """
    grid = plan.shard_grid()
    sweep = Sweep(
        name=name,
        fn=fleet_shard_point,
        grid=grid,
        base_seed=plan.seed,
        version_tag=_FLEET_VERSION_TAG,
    )
    seeds = derive_seeds(plan.seed, len(grid))
    return [sweep.point_key(i, seeds[i]) for i in range(len(grid))]


def fleet_wear_from_store(
    plan: FleetPlan,
    cache_dir: str | Path,
    name: str = "fleet",
    column: str = "obs.wear",
) -> WearDigest:
    """Rebuild a finished fleet's wear digest *off-disk*, from the store.

    Reads only the ``column`` entries of ``plan``'s shard keys out of
    the cache's column store (block-indexed; no per-shard pickles are
    rehydrated and nothing is recomputed), folding them in shard order
    -- which **is** global device order, so exact-mode plans get the
    identical exact vector, quantiles, and worn-out fraction the
    in-memory :func:`run_fleet` reduction produced.  Raises ``KeyError``
    when a shard is missing from the store (unfinished or damaged
    fleet): a partial digest is never silently offered.
    """
    from repro.runner.cache import ResultCache
    from repro.store import ColumnStore

    path = Path(cache_dir) / ResultCache.STORE_FILE
    store = ColumnStore(path, mode="read")
    wear = WearDigest(keep_exact=plan.exact)
    for index, key in enumerate(fleet_store_keys(plan, name=name)):
        arrays = store.get(key, columns=[column])
        if arrays is None:
            raise KeyError(
                f"shard {index} of fleet '{name}' is not in the store "
                f"(key {key}); run the fleet to completion first"
            )
        wear.add_many(arrays[column])
    return wear
