"""The shard point function: one fleet shard per sweep point.

Lives at module scope so worker processes can unpickle it by reference
(the same contract as :mod:`repro.runner.points`).  A shard point is
the composition this package exists for: it derives its slice of the
population *locally* (mix assignment and workload seeds from global
device indices), steps the slice through the batched fleet engine in
``chunk``-device passes, and reduces the per-device wear values to a
:class:`~repro.fleet.reduce.WearDigest` -- so the value flowing back to
the coordinator (and into the result cache) is O(digest), not
O(devices).
"""

from __future__ import annotations

from repro.obs import get_observer

from .reduce import WearDigest

__all__ = ["fleet_shard_point"]


def fleet_shard_point(params: dict, seed: int) -> dict:
    """Simulate devices ``start .. start+count-1`` and digest their wear.

    params (see :meth:`repro.fleet.plan.FleetPlan.shard_grid`):
    ``start``, ``count``, ``pop_seed``, ``mix_weights`` (ordered
    ``[name, weight]`` pairs), ``capacity_gb``, ``days``, ``build``,
    ``workload_seed_base``, ``chunk``, ``exact``, optional ``faults``,
    optional ``fidelity`` (``"ftl"`` replays each device through the
    page-mapped FTL instead of the epoch lifetime model).

    Returns ``{"devices", "start", "wear", "obs"}``: ``wear`` is a
    serialized histogram-only :class:`WearDigest`, and ``obs`` holds the
    shard's end-of-life observable *columns* (float64/int64 arrays in
    device order, ``wear``/``spare_wear``/``capacity_gb``/... -- see
    :func:`repro.runner.points.population_batch_observables`).  The
    result cache lifts those arrays into its column store, and the
    fleet layer takes exact per-device wear from the ``wear`` column --
    so one persisted value serves both streaming reduction and off-disk
    distribution queries, without duplicating the values in the digest.
    """
    import numpy as np

    from repro.runner.points import (
        assign_mixes,
        ftl_population_observables,
        population_batch_observables,
    )

    start = int(params["start"])
    count = int(params["count"])
    chunk = int(params["chunk"])
    if count <= 0 or chunk <= 0:
        raise ValueError("shard count and chunk must be positive")
    fidelity = params.get("fidelity", "epoch")
    if fidelity not in ("epoch", "ftl"):
        raise ValueError("fidelity must be 'epoch' or 'ftl'")
    observe = (
        ftl_population_observables if fidelity == "ftl"
        else population_batch_observables
    )
    base = int(params["workload_seed_base"])
    digest = WearDigest()
    parts: list[dict] = []
    for offset in range(0, count, chunk):
        sub = min(chunk, count - offset)
        lo = start + offset
        batch_params = {
            "mixes": assign_mixes(params["pop_seed"], params["mix_weights"], lo, sub),
            "workload_seeds": list(range(base + lo, base + lo + sub)),
            "capacity_gb": params["capacity_gb"],
            "days": params["days"],
            "build": params.get("build", "tlc_baseline"),
        }
        if params.get("faults"):
            batch_params["faults"] = params["faults"]
        chunk_obs = observe(batch_params, seed)
        digest.add_many(chunk_obs["wear"])
        parts.append(chunk_obs)
    obs_columns = {
        name: np.concatenate([part[name] for part in parts])
        for name in parts[0]
    }
    get_observer().count("fleet.shard_devices", count)
    return {
        "devices": count,
        "start": start,
        "wear": digest.to_dict(),
        "obs": obs_columns,
    }
