"""Deterministic fault plans: realistic failure populations for the sim.

The paper's premise is a device that keeps working while its media
degrades (§4.3: migration, retirement, resuscitation, cloud repair) --
but idealized uniform decay is the *easy* case.  "The Dirty Secret of
SSDs" (PAPERS.md) observes that real failure populations are dominated
by infant mortality and wear-out variance, plus transient faults the
firmware must absorb: flaky reads, power-loss-interrupted programs, and
unreachable repair sources.

A :class:`FaultPlan` precomputes the *entire* fault schedule from a
``(seed, FaultConfig)`` pair before any simulation step runs:

* **block infant-mortality deaths** -- units (block groups in the epoch
  model, physical blocks in the bit-exact FTL) that die early in life;
* **transient read failures** -- reads that fail once and may recover
  under bounded retry;
* **power-loss torn programs** -- an interrupted program whose write
  unit must be re-programmed;
* **cloud outage windows** -- day intervals during which the cloud
  repair source is unreachable.

Precomputing the schedule is what makes fault injection deterministic by
construction: the event log depends only on ``(seed, config, horizon,
targets)`` -- never on worker count, completion order, or wall-clock --
so serial and parallel runs replay the identical fault history, and a
zero-rate plan is observationally identical to no plan at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Mapping

import numpy as np

from repro.ftl.bad_blocks import infant_mortality_deaths

__all__ = ["FaultConfig", "FaultEvent", "FaultPlan", "FaultSummary"]

#: Target name reserved for device-wide cloud connectivity events.
CLOUD_TARGET = "cloud"


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Rates and windows of the injected failure population.

    All rates default to zero, which yields an empty plan; experiments
    opt in per fault class.

    Attributes
    ----------
    block_infant_mortality:
        Probability that any given unit (block group / physical block)
        dies during the infant window.
    infant_window_days:
        Days after first power-on during which infant deaths occur.
    transient_read_rate:
        Expected transient read-failure events per day per target.
    max_read_retries:
        Bounded retry budget: a transient read needing more attempts
        than this is counted unrecovered (graceful degradation).
    power_loss_rate:
        Expected power-loss-interrupted programs per day per target.
    cloud_outage_rate:
        Expected cloud-outage window *starts* per day.
    cloud_outage_days:
        Duration of each outage window, in days.
    """

    block_infant_mortality: float = 0.0
    infant_window_days: int = 90
    transient_read_rate: float = 0.0
    max_read_retries: int = 3
    power_loss_rate: float = 0.0
    cloud_outage_rate: float = 0.0
    cloud_outage_days: int = 3

    def __post_init__(self) -> None:
        for name in ("block_infant_mortality", "transient_read_rate",
                     "power_loss_rate", "cloud_outage_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.block_infant_mortality <= 1.0:
            raise ValueError("block_infant_mortality must be a probability")

    def to_params(self) -> dict:
        """Plain JSON-able dict form (cache-keyable by construction)."""
        return asdict(self)

    @classmethod
    def from_params(cls, params: Mapping) -> "FaultConfig":
        """Inverse of :meth:`to_params` (unknown keys rejected)."""
        return cls(**dict(params))

    @property
    def is_zero(self) -> bool:
        """Whether every fault rate is zero (plan will be empty)."""
        return (
            self.block_infant_mortality == 0.0
            and self.transient_read_rate == 0.0
            and self.power_loss_rate == 0.0
            and self.cloud_outage_rate == 0.0
        )


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``detail`` carries the kind-specific payload: attempts needed for a
    transient read to succeed, or window length (days) for an outage.
    """

    day: int
    kind: str  # "infant_death" | "transient_read" | "torn_program" | "cloud_outage"
    target: str
    unit: int = 0
    detail: int = 0

    def to_dict(self) -> dict:
        """JSON-safe dict form (event-log serialization)."""
        return asdict(self)


@dataclass(slots=True)
class FaultSummary:
    """Structured counters of fault events applied during one run."""

    infant_deaths: int = 0
    transient_reads: int = 0
    reads_recovered: int = 0
    reads_unrecovered: int = 0
    read_retry_attempts: int = 0
    torn_programs: int = 0
    torn_rewrite_gb: float = 0.0
    cloud_outage_days: int = 0
    scrubs_deferred: int = 0
    repairs_failed: int = 0

    def as_dict(self) -> dict:
        """Plain dict form for reports and benchmark tables."""
        return asdict(self)

    @property
    def total_events(self) -> int:
        """All discrete fault events applied."""
        return (self.infant_deaths + self.transient_reads
                + self.torn_programs + self.cloud_outage_days)


class FaultPlan:
    """A fully precomputed, seeded fault schedule.

    Construct via :meth:`generate`; the plan exposes per-day lookups for
    the simulation loop plus the full ordered event log and a digest for
    determinism checks (``repro faults selftest``).
    """

    def __init__(
        self,
        config: FaultConfig,
        seed: int,
        horizon_days: int,
        targets: dict[str, int],
        events: tuple[FaultEvent, ...],
    ) -> None:
        self.config = config
        self.seed = seed
        self.horizon_days = horizon_days
        self.targets = dict(targets)
        self.events = events
        self._infant_by_day: dict[int, list[tuple[str, int]]] = {}
        self._reads_by_day: dict[int, list[tuple[str, int, int]]] = {}
        self._torn_by_day: dict[int, list[tuple[str, int]]] = {}
        windows: list[tuple[int, int]] = []
        for event in events:
            if event.kind == "infant_death":
                self._infant_by_day.setdefault(event.day, []).append(
                    (event.target, event.unit)
                )
            elif event.kind == "transient_read":
                self._reads_by_day.setdefault(event.day, []).append(
                    (event.target, event.unit, event.detail)
                )
            elif event.kind == "torn_program":
                self._torn_by_day.setdefault(event.day, []).append(
                    (event.target, event.unit)
                )
            elif event.kind == "cloud_outage":
                windows.append((event.day, event.day + event.detail))
        self.outage_windows = _merge_windows(windows)

    # -- construction ---------------------------------------------------------

    @classmethod
    def generate(
        cls,
        config: FaultConfig,
        seed: int,
        horizon_days: int,
        targets: Mapping[str, int],
    ) -> "FaultPlan":
        """Sample the full fault schedule for a run.

        Parameters
        ----------
        config:
            Fault rates.
        seed:
            Root of the plan's RNG; everything derives from it.
        horizon_days:
            Length of the simulated run, in days.
        targets:
            Unit counts per target name, e.g. ``{"sys": 20, "spare": 20}``
            (block groups for the epoch model, per-stream physical block
            counts for the bit-exact device).
        """
        if horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if CLOUD_TARGET in targets:
            raise ValueError(f"target name {CLOUD_TARGET!r} is reserved")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        infant_window = max(1, min(config.infant_window_days, horizon_days))
        # sorted target order keeps the rng consumption sequence stable
        for name in sorted(targets):
            count = int(targets[name])
            for unit in infant_mortality_deaths(
                count, config.block_infant_mortality, rng
            ):
                events.append(FaultEvent(
                    day=int(rng.integers(0, infant_window)),
                    kind="infant_death", target=name, unit=unit,
                ))
            n_reads = int(rng.poisson(config.transient_read_rate * horizon_days))
            for _ in range(n_reads):
                events.append(FaultEvent(
                    day=int(rng.integers(0, horizon_days)),
                    kind="transient_read", target=name,
                    unit=int(rng.integers(0, max(1, count))),
                    # attempts the read needs before it succeeds (>= 1 retry)
                    detail=int(rng.geometric(0.5)),
                ))
            n_torn = int(rng.poisson(config.power_loss_rate * horizon_days))
            for _ in range(n_torn):
                events.append(FaultEvent(
                    day=int(rng.integers(0, horizon_days)),
                    kind="torn_program", target=name,
                    unit=int(rng.integers(0, max(1, count))),
                ))
        n_outages = int(rng.poisson(config.cloud_outage_rate * horizon_days))
        for _ in range(n_outages):
            events.append(FaultEvent(
                day=int(rng.integers(0, horizon_days)),
                kind="cloud_outage", target=CLOUD_TARGET,
                detail=max(1, int(config.cloud_outage_days)),
            ))
        events.sort(key=lambda e: (e.day, e.kind, e.target, e.unit, e.detail))
        return cls(config, seed, horizon_days, dict(targets), tuple(events))

    # -- per-day lookups ------------------------------------------------------

    def infant_deaths(self, day: int) -> list[tuple[str, int]]:
        """(target, unit) pairs dying on ``day``."""
        return self._infant_by_day.get(day, [])

    def transient_reads(self, day: int) -> list[tuple[str, int, int]]:
        """(target, unit, attempts_needed) transient read events on ``day``."""
        return self._reads_by_day.get(day, [])

    def torn_programs(self, day: int) -> list[tuple[str, int]]:
        """(target, unit) power-loss-interrupted programs on ``day``."""
        return self._torn_by_day.get(day, [])

    def in_cloud_outage(self, day: int) -> bool:
        """Whether ``day`` falls inside any outage window."""
        return any(start <= day < end for start, end in self.outage_windows)

    def outage_windows_years(self) -> tuple[tuple[float, float], ...]:
        """Outage windows converted to the device's year clock."""
        return tuple((start / 365.0, end / 365.0) for start, end in self.outage_windows)

    # -- identity -------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """Whether the plan schedules no events at all."""
        return not self.events

    def event_log(self) -> list[dict]:
        """The full schedule as plain dicts, in deterministic order."""
        return [event.to_dict() for event in self.events]

    def digest(self) -> str:
        """SHA-256 over the canonical encoding of (inputs, schedule).

        Two plans with equal digests replay the identical fault history;
        the ``faults selftest`` CLI checks this across regenerations.
        """
        payload = {
            "config": self.config.to_params(),
            "seed": self.seed,
            "horizon_days": self.horizon_days,
            "targets": {k: int(v) for k, v in sorted(self.targets.items())},
            "events": self.event_log(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, horizon_days={self.horizon_days}, "
            f"events={len(self.events)}, outages={len(self.outage_windows)})"
        )


def _merge_windows(windows: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Merge overlapping [start, end) intervals."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)
