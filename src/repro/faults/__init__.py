"""Deterministic fault-injection subsystem.

Seeded, fully precomputed fault schedules (infant mortality, transient
reads, power-loss torn programs, cloud outages) that both simulation
fidelities replay identically regardless of execution order.

* :mod:`repro.faults.plan` -- FaultConfig / FaultPlan / FaultSummary
"""

from .plan import FaultConfig, FaultEvent, FaultPlan, FaultSummary

__all__ = ["FaultConfig", "FaultEvent", "FaultPlan", "FaultSummary"]
