"""repro.store: append-only block-compressed columnar result storage.

The batch-payload backend of the result cache: population-scale
observables (stacked per-device arrays) pack into one compressed,
CRC-framed, footer-indexed file instead of one pickle per point, so
archives shrink by an order of magnitude and percentile queries stream
off-disk without rehydrating sweeps.  See :mod:`repro.store.format`
for the pinned v1 layout and :mod:`repro.store.store` for the
append/recover/compact machinery.
"""

from .columns import COLUMN_SENTINEL, column_paths, join_value, split_value
from .format import CODECS, FORMAT, StoreError
from .store import ColumnStore, StoreStats

__all__ = [
    "CODECS",
    "COLUMN_SENTINEL",
    "ColumnStore",
    "FORMAT",
    "StoreError",
    "StoreStats",
    "column_paths",
    "join_value",
    "split_value",
]
