"""The on-disk format of the columnar result store, pinned for good.

A persisted format is forever: once a store file exists in an archive,
every future build of this repo must read it or refuse it loudly.  This
module is therefore the *whole* layout in one place, and the golden
fixture under ``tests/store/data`` asserts that a seed-built file
reproduces these bytes exactly -- any change here must bump
:data:`FORMAT` explicitly, never silently.

Layout (``repro.store/v1``)::

    file   := header block* [index footer]
    header := frame(b"H" ++ canonical-JSON header dict)
    block  := frame(b"B" ++ codec(block body))
    index  := frame(b"I" ++ zlib(canonical-JSON index dict))
    footer := b"RCSF" ++ uint64 index-frame offset ++ CRC32C of the
              first 12 footer bytes          (16 bytes, little-endian)

where ``frame`` is exactly the magic+length+CRC32C record framing of
:mod:`repro.runner.record` -- a reader *detects* torn tails, bit rot,
and truncation instead of deserializing them -- and a block body is::

    body := uint32 TOC length ++ canonical-JSON TOC ++ column bytes

The TOC lists every (key, column) the block carries with its dtype,
shape, and ``(offset, nbytes)`` into the column-bytes section, so the
footer index is *redundant by construction*: a file whose index or
footer was lost to a crash rebuilds it by scanning block frames.

Column bytes are C-contiguous little-endian array buffers; dtypes are
canonicalized to little-endian on write (values bit-preserved via
byteswap+view, so NaN payloads and ``-0.0`` survive untouched) and only
plain numeric kinds are accepted -- an object array has no stable byte
form and must stay on the pickle path.

Blocks are compressed with the store codec (stdlib only: ``none``,
``zlib``, ``lzma``); the index is always zlib -- it must be readable
before the header codec is known to be trustworthy.
"""

from __future__ import annotations

import json
import lzma
import struct
import zlib
from typing import BinaryIO

import numpy as np

from repro.runner.record import MAGIC, crc32c, frame_record

__all__ = [
    "CODECS",
    "FOOTER_MAGIC",
    "FOOTER_SIZE",
    "FORMAT",
    "StoreError",
    "TAG_BLOCK",
    "TAG_HEADER",
    "TAG_INDEX",
    "canon_json",
    "compress",
    "decompress",
    "frame",
    "pack_array",
    "pack_footer",
    "read_frame",
    "unpack_array",
    "unpack_footer",
]

#: Format tag in the header frame.  Bump EXPLICITLY (v1 -> v2) for any
#: byte-level layout change; readers refuse unknown tags.
FORMAT = "repro.store/v1"

#: Record type tags -- the first payload byte of every frame.
TAG_HEADER = b"H"
TAG_BLOCK = b"B"
TAG_INDEX = b"I"

FOOTER_MAGIC = b"RCSF"
_FOOTER = struct.Struct("<4sQI")  # magic, index frame offset, CRC32C
FOOTER_SIZE = _FOOTER.size  # 16 bytes

_FRAME_HEADER = struct.Struct("<4sQI")  # repro.runner.record's framing
_FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: uint32 length prefix of a block body's TOC.
_TOC_LEN = struct.Struct("<I")

#: numpy dtype kinds with a stable raw-byte form.
_SUPPORTED_KINDS = frozenset("biufc")


class StoreError(ValueError):
    """A store file (or an operation on it) failed validation.

    ``reason`` is a stable machine-readable tag -- mirroring
    :class:`repro.runner.record.RecordError` -- for counters,
    quarantine naming, and tests; the message adds human detail.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


# -- canonical JSON -------------------------------------------------------------


def canon_json(obj) -> bytes:
    """One canonical encoding, so identical content is identical bytes."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


# -- codecs ---------------------------------------------------------------------

#: codec name -> (compress, decompress).  zlib level and lzma preset are
#: fixed: the golden fixture pins their output bytes.
_CODEC_FNS = {
    "none": (lambda data: data, lambda data: data),
    "zlib": (lambda data: zlib.compress(data, 6), zlib.decompress),
    "lzma": (
        lambda data: lzma.compress(data, preset=6),
        lzma.decompress,
    ),
}

CODECS = tuple(sorted(_CODEC_FNS))


def compress(codec: str, data: bytes) -> bytes:
    try:
        return _CODEC_FNS[codec][0](data)
    except KeyError:
        raise StoreError("unknown-codec", f"{codec!r} (known: {', '.join(CODECS)})")


def decompress(codec: str, data: bytes) -> bytes:
    try:
        fn = _CODEC_FNS[codec][1]
    except KeyError:
        raise StoreError("unknown-codec", f"{codec!r} (known: {', '.join(CODECS)})")
    try:
        return fn(data)
    except Exception as err:  # zlib.error / lzma.LZMAError
        # the frame CRC passed, so this is a writer bug or an exotic
        # corruption the CRC missed; either way, detect, never guess
        raise StoreError("decompress-failed", repr(err))


# -- framing --------------------------------------------------------------------


def frame(tag: bytes, payload: bytes) -> bytes:
    """One tagged store record in the shared magic+length+CRC32C framing."""
    return frame_record(tag + payload)


def read_frame(
    fh: BinaryIO, offset: int, file_size: int
) -> tuple[bytes, bytes, int]:
    """Read and validate the frame at ``offset``.

    Returns ``(tag, payload, end_offset)``.  Raises :class:`StoreError`
    on any damage -- short header, bad magic, a length field pointing
    past EOF, checksum mismatch, or an empty (tagless) payload.  The
    CRC is checked *before* the payload is interpreted, so damaged
    bytes never reach a decompressor or JSON parser.
    """
    if offset + _FRAME_HEADER_SIZE > file_size:
        raise StoreError(
            "truncated-header",
            f"frame at {offset} needs {_FRAME_HEADER_SIZE} header byte(s), "
            f"file ends at {file_size}",
        )
    fh.seek(offset)
    header = fh.read(_FRAME_HEADER_SIZE)
    if len(header) != _FRAME_HEADER_SIZE:
        raise StoreError("truncated-header", f"short read at {offset}")
    magic, length, crc = _FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise StoreError("bad-magic", f"got {magic!r} at {offset}, want {MAGIC!r}")
    end = offset + _FRAME_HEADER_SIZE + length
    if end > file_size:
        raise StoreError(
            "length-mismatch",
            f"frame at {offset} claims {length} payload byte(s), "
            f"file ends at {file_size}",
        )
    payload = fh.read(length)
    if len(payload) != length:
        raise StoreError("length-mismatch", f"short payload read at {offset}")
    actual = crc32c(payload)
    if actual != crc:
        raise StoreError(
            "crc-mismatch",
            f"frame at {offset}: header {crc:#010x}, payload {actual:#010x}",
        )
    if not payload:
        raise StoreError("empty-frame", f"frame at {offset} has no tag byte")
    return payload[:1], payload[1:], end


# -- footer ---------------------------------------------------------------------


def pack_footer(index_offset: int) -> bytes:
    partial = _FOOTER.pack(FOOTER_MAGIC, index_offset, 0)[:-4]
    return partial + struct.pack("<I", crc32c(partial))


def unpack_footer(data: bytes) -> int:
    """Validate the 16 trailing footer bytes; returns the index offset."""
    if len(data) != FOOTER_SIZE:
        raise StoreError("bad-footer", f"{len(data)} byte(s), want {FOOTER_SIZE}")
    magic, index_offset, crc = _FOOTER.unpack(data)
    if magic != FOOTER_MAGIC:
        raise StoreError("bad-footer", f"magic {magic!r}, want {FOOTER_MAGIC!r}")
    if crc32c(data[:-4]) != crc:
        raise StoreError("bad-footer", "footer checksum mismatch")
    return index_offset


# -- block bodies ---------------------------------------------------------------


def pack_block_body(toc: dict, data: bytes) -> bytes:
    toc_bytes = canon_json(toc)
    return _TOC_LEN.pack(len(toc_bytes)) + toc_bytes + data


def unpack_block_body(body: bytes) -> tuple[dict, int]:
    """Parse a block body; returns ``(toc, data_start_offset)``."""
    if len(body) < _TOC_LEN.size:
        raise StoreError("bad-block", "body shorter than its TOC length prefix")
    (toc_len,) = _TOC_LEN.unpack_from(body)
    data_start = _TOC_LEN.size + toc_len
    if data_start > len(body):
        raise StoreError("bad-block", "TOC length prefix points past body end")
    try:
        toc = json.loads(body[_TOC_LEN.size:data_start])
    except ValueError as err:
        raise StoreError("bad-block", f"TOC is not valid JSON: {err}")
    if not isinstance(toc, dict) or not isinstance(toc.get("entries"), list):
        raise StoreError("bad-block", "TOC has no entries list")
    return toc, data_start


# -- array packing --------------------------------------------------------------


def pack_array(arr: np.ndarray) -> tuple[bytes, str, tuple[int, ...]]:
    """Canonical bytes of ``arr``: C order, little-endian, bit-preserved.

    Returns ``(buffer, dtype_str, shape)``.  Endianness conversion goes
    through ``byteswap().view()`` -- a pure byte reorder -- so every bit
    pattern (NaN payloads, ``-0.0``, signaling NaNs) survives exactly.
    Unsupported dtypes (object, strings, structured, datetimes) raise:
    they have no stable raw-byte form and belong on the pickle path.
    """
    if not isinstance(arr, np.ndarray):
        raise StoreError("not-an-array", f"got {type(arr).__name__}")
    if arr.dtype.kind not in _SUPPORTED_KINDS:
        raise StoreError(
            "unsupported-dtype",
            f"{arr.dtype!r} (kind {arr.dtype.kind!r}); store columns must "
            "be plain numeric/bool arrays",
        )
    contiguous = np.ascontiguousarray(arr)
    if contiguous.dtype.byteorder == ">":
        contiguous = contiguous.byteswap().view(
            contiguous.dtype.newbyteorder("<")
        )
    return (
        contiguous.tobytes(),
        contiguous.dtype.str,
        tuple(int(dim) for dim in arr.shape),
    )


def unpack_array(data: bytes, dtype: str, shape) -> np.ndarray:
    """Inverse of :func:`pack_array`; validates byte count against shape."""
    try:
        dt = np.dtype(dtype)
    except TypeError as err:
        raise StoreError("unsupported-dtype", f"{dtype!r}: {err}")
    if dt.kind not in _SUPPORTED_KINDS:
        raise StoreError("unsupported-dtype", f"{dtype!r} (kind {dt.kind!r})")
    shape = tuple(int(dim) for dim in shape)
    expected = dt.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dt.itemsize
    if len(data) != expected:
        raise StoreError(
            "bad-column",
            f"column claims dtype {dtype} shape {shape} "
            f"({expected} byte(s)) but carries {len(data)}",
        )
    return np.frombuffer(data, dtype=dt).reshape(shape).copy()
