"""Splitting cached values into storable columns and back.

The result cache persists arbitrary picklable point values; the column
store persists plain numeric arrays.  :func:`split_value` walks a value
(nested dicts/lists), lifts every storable ndarray out into a flat
``{column_name: array}`` mapping -- names are the dict/list paths,
joined with ``.`` -- and leaves a placeholder sentinel in the skeleton.
:func:`join_value` re-inserts fetched arrays into the skeleton.  The
skeleton still travels through the framed-pickle path, so values with
no arrays at all are byte-for-byte unaffected.

Only arrays with a stable raw-byte form (numeric/bool kinds) split out;
object/string/structured arrays stay in the pickle, exactly like
scalars.  A value whose paths would collide (a dict key containing
``.`` shadowing a nested path) is left unsplit rather than guessed at.
"""

from __future__ import annotations

import numpy as np

from .format import _SUPPORTED_KINDS

__all__ = ["COLUMN_SENTINEL", "join_value", "split_value"]

#: placeholder left in a pickled skeleton where an array was lifted out
COLUMN_SENTINEL = "__repro.store.column__"


def _storable(obj) -> bool:
    return isinstance(obj, np.ndarray) and obj.dtype.kind in _SUPPORTED_KINDS


def _walk_split(obj, path: str, columns: dict):
    if _storable(obj):
        columns[path] = obj
        return {COLUMN_SENTINEL: path}
    if isinstance(obj, dict) and all(isinstance(k, str) for k in obj):
        return {
            key: _walk_split(val, f"{path}.{key}" if path else key, columns)
            for key, val in obj.items()
        }
    if isinstance(obj, list):
        return [
            _walk_split(val, f"{path}.{i}" if path else str(i), columns)
            for i, val in enumerate(obj)
        ]
    return obj


def split_value(value) -> tuple[object, dict[str, np.ndarray]]:
    """``(skeleton, columns)``: ``value`` with its arrays lifted out.

    ``columns`` is empty when there is nothing to lift -- the caller
    should then persist ``value`` untouched (scalar fast path).  When
    column names collide the value is also left whole: correctness
    beats compression.
    """
    columns: dict[str, np.ndarray] = {}
    skeleton = _walk_split(value, "", columns)
    if not columns:
        return value, {}
    if len(columns) != len(set(columns)):  # pragma: no cover - dict dedups
        return value, {}
    # a dotted dict key can alias a nested path ({"a.b": x, "a": {"b": y}})
    # -- both lift to column "a.b"; _walk_split's dict overwrote one, so
    # detect by re-counting storable leaves
    if _count_storable(value) != len(columns):
        return value, {}
    return skeleton, columns


def _count_storable(obj) -> int:
    if _storable(obj):
        return 1
    if isinstance(obj, dict):
        return sum(_count_storable(v) for v in obj.values())
    if isinstance(obj, list):
        return sum(_count_storable(v) for v in obj)
    return 0


def join_value(skeleton, columns: dict[str, np.ndarray]):
    """Inverse of :func:`split_value`: re-insert fetched arrays.

    Raises ``KeyError`` when a placeholder's column is missing -- the
    cache turns that into a recomputable miss, never a partial value.
    """
    if isinstance(skeleton, dict):
        if set(skeleton) == {COLUMN_SENTINEL}:
            return columns[skeleton[COLUMN_SENTINEL]]
        return {key: join_value(val, columns) for key, val in skeleton.items()}
    if isinstance(skeleton, list):
        return [join_value(val, columns) for val in skeleton]
    return skeleton


def column_paths(skeleton) -> list[str]:
    """Every column a skeleton references (placeholder paths), sorted."""
    out: list[str] = []

    def walk(obj):
        if isinstance(obj, dict):
            if set(obj) == {COLUMN_SENTINEL}:
                out.append(obj[COLUMN_SENTINEL])
                return
            for val in obj.values():
                walk(val)
        elif isinstance(obj, list):
            for val in obj:
                walk(val)

    walk(skeleton)
    return sorted(out)
