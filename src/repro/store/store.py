"""`ColumnStore`: append-only, block-compressed, indexed column storage.

One store file holds the stacked array observables of many sweep points
-- the population-scale payloads that used to bloat the result cache as
one pickle per point.  The design goals, in the spirit of the paper
(store less, cheaper) and of the ZS archive format:

* **small**: columns are packed together and block-compressed with a
  stdlib codec, so a million-device fleet's observables archive in a
  single file a few percent the size of per-point pickles;
* **scannable**: a footer index maps ``key -> column -> (block, offset,
  dtype, shape)``, so percentile and distribution queries decompress
  only the blocks they touch and never rehydrate whole sweeps;
* **append-only and crash-safe**: writers only ever append framed
  records; the index is *redundant* (every block carries its own TOC),
  so a crash that loses the footer is recovered by scanning frames, and
  a torn tail is detected by the frame CRC, quarantined beside the
  store, and truncated away -- degraded to recomputable misses, never
  mis-loaded;
* **deterministic**: identical content written through identical
  settings produces identical bytes (no timestamps, canonical JSON,
  fixed codec parameters), which is what lets the golden fixture pin
  the format and lets :meth:`compact` converge crashed and clean runs
  to the same file.

Re-appending a key supersedes its previous entry (the index keeps the
latest); :meth:`compact` rewrites the file with only live entries, in
sorted key order, through tmp+rename -- so compaction output depends
only on logical content, never on append history.

Writes route through the :mod:`repro.chaos` filesystem seam with the
result cache's durability ladder: ``none``/``rename`` append plainly
(the CRC catches torn tails), ``fsync`` additionally syncs after every
block append and checkpoint.  One writer per file: the store is owned
by a sweep coordinator, never by its workers.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.chaos import crash_point, get_fs
from repro.obs import get_observer

from .format import (
    FOOTER_SIZE,
    FORMAT,
    StoreError,
    TAG_BLOCK,
    TAG_HEADER,
    TAG_INDEX,
    canon_json,
    compress,
    decompress,
    frame,
    pack_array,
    pack_block_body,
    pack_footer,
    read_frame,
    unpack_array,
    unpack_block_body,
    unpack_footer,
)

__all__ = ["ColumnStore", "StoreStats"]

_LOG = logging.getLogger("repro.store")

import zlib as _zlib

#: decompressed block bodies kept hot for scans (tiny: blocks are ~1 MiB)
_BLOCK_CACHE_SLOTS = 4

#: subdirectory (beside the store file) quarantined damage is moved to
_CORRUPT_DIR = "corrupt"


@dataclass(slots=True)
class _Entry:
    """Where one (key, column) lives.  ``block == -1`` means the bytes
    are still in the pending (unflushed) buffer at ``offset``."""

    block: int
    offset: int
    nbytes: int
    dtype: str
    shape: tuple[int, ...]


class _Recreated(Exception):
    """Internal: the header frame was hopeless, so the whole file was
    quarantined and a fresh empty store created in its place."""


@dataclass(slots=True)
class StoreStats:
    """Plain-data snapshot of one store's shape and health."""

    path: str
    format: str
    codec: str
    file_bytes: int
    blocks: int
    keys: int
    columns: int
    live_bytes: int
    pending_entries: int
    clean: bool
    recovered: bool

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "format": self.format,
            "codec": self.codec,
            "file_bytes": self.file_bytes,
            "blocks": self.blocks,
            "keys": self.keys,
            "columns": self.columns,
            "live_bytes": self.live_bytes,
            "pending_entries": self.pending_entries,
            "clean": self.clean,
            "recovered": self.recovered,
        }


class ColumnStore:
    """One append-only columnar store file (see module docstring).

    ``mode="append"`` owns the file: it creates it when missing, and a
    damaged file is *repaired* on open (torn tail quarantined to
    ``corrupt/`` and truncated, index rebuilt from block TOCs).
    ``mode="read"`` never mutates: damage is surfaced as misses and in
    :meth:`verify`, so inspecting an archive cannot rewrite it.

    ``block_bytes`` is the flush threshold: :meth:`put` buffers columns
    until at least this many raw bytes are pending, then packs them
    into one compressed block frame.  A :meth:`checkpoint` (or
    :meth:`close`) flushes the partial block and appends the footer
    index; everything stays readable without one via the recovery scan.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        mode: str = "append",
        codec: str = "zlib",
        block_bytes: int = 1 << 20,
        durability: str = "rename",
        fs=None,
    ) -> None:
        if mode not in ("append", "read"):
            raise ValueError(f"mode must be 'append' or 'read', got {mode!r}")
        if codec not in ("none", "zlib", "lzma"):
            raise StoreError("unknown-codec", repr(codec))
        if block_bytes < 1:
            raise ValueError("block_bytes must be positive")
        self.path = Path(path)
        self.mode = mode
        self.codec = codec
        self.block_bytes = int(block_bytes)
        self.durability = durability
        self.fs = fs if fs is not None else get_fs()
        #: file offsets of every block frame, in block-ordinal order
        self._blocks: list[int] = []
        self._index: dict[str, dict[str, _Entry]] = {}
        #: pending (key, column, data, dtype, shape) tuples, unflushed
        self._pending: list[tuple[str, str, bytes, str, tuple[int, ...]]] = []
        self._pending_bytes = 0
        #: offset where the next block frame goes (end of data region)
        self._data_end = 0
        #: True when the on-disk file ends with a footer matching memory
        self._clean = False
        #: the open had to rebuild state by scanning block frames
        self.recovered = False
        #: raw tail bytes quarantined by the last recovery (0 = none)
        self.tail_quarantined_bytes = 0
        #: block reads that failed validation since open
        self.corrupt_blocks = 0
        #: block frames appended since open
        self.appends = 0
        self._block_cache: OrderedDict[int, bytes] = OrderedDict()
        self._broken = False
        if self.path.exists():
            self._load()
        elif mode == "read":
            raise FileNotFoundError(self.path)
        else:
            self._create()

    # -- open paths --------------------------------------------------------------

    def _create(self) -> None:
        header = frame(
            TAG_HEADER,
            canon_json({"format": FORMAT, "codec": self.codec}),
        )
        fs = self.fs
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with fs.open_write(self.path) as fh:
            fs.write(fh, header)
            if self.durability == "fsync":
                fs.fsync(fh)
        if self.durability == "fsync":
            fs.fsync_dir(self.path.parent)
        self._data_end = len(header)
        self._clean = False

    def _load(self) -> None:
        size = self.path.stat().st_size
        with open(self.path, "rb") as fh:
            try:
                header_end = self._read_header(fh, size)
            except _Recreated:
                return
            try:
                self._load_from_footer(fh, size, header_end)
                self._clean = True
            except StoreError:
                self._recover_scan(fh, size, header_end)

    def _read_header(self, fh, size: int) -> int:
        """Validate the header frame; adopts the file's codec."""
        try:
            tag, payload, end = read_frame(fh, 0, size)
        except StoreError as err:
            if self.mode == "read":
                raise
            # the header itself is damaged: nothing in the file can be
            # trusted, so quarantine everything and start fresh
            self._quarantine_tail(0, size, reason=err.reason)
            self._create()
            raise _Recreated()
        if tag != TAG_HEADER:
            raise StoreError("bad-header", f"first frame tagged {tag!r}")
        import json

        header = json.loads(payload)
        if header.get("format") != FORMAT:
            raise StoreError(
                "format-mismatch",
                f"file says {header.get('format')!r}, this build reads {FORMAT!r}",
            )
        codec = header.get("codec")
        if codec not in ("none", "zlib", "lzma"):
            raise StoreError("unknown-codec", repr(codec))
        self.codec = codec
        return end

    def _load_from_footer(self, fh, size: int, header_end: int) -> None:
        """Fast path: trust the footer, load the index frame it names."""
        if size < header_end + FOOTER_SIZE:
            raise StoreError("no-footer", "file too short for a footer")
        fh.seek(size - FOOTER_SIZE)
        index_offset = unpack_footer(fh.read(FOOTER_SIZE))
        if not header_end <= index_offset <= size - FOOTER_SIZE:
            raise StoreError("bad-footer", f"index offset {index_offset} out of range")
        tag, payload, end = read_frame(fh, index_offset, size)
        if tag != TAG_INDEX or end != size - FOOTER_SIZE:
            raise StoreError("bad-index", "footer does not name a terminal index frame")
        import json

        index = json.loads(_zlib.decompress(payload))
        self._blocks = [int(off) for off in index["blocks"]]
        entries: dict[str, dict[str, _Entry]] = {}
        for key, cols in index["entries"].items():
            entries[key] = {
                name: _Entry(
                    block=int(spec[0]),
                    offset=int(spec[1]),
                    nbytes=int(spec[2]),
                    dtype=str(spec[3]),
                    shape=tuple(int(dim) for dim in spec[4]),
                )
                for name, spec in cols.items()
            }
        self._index = entries
        self._data_end = index_offset

    def _recover_scan(self, fh, size: int, header_end: int) -> None:
        """Slow path: rebuild everything from block TOCs.

        Walks frames from the header; the first invalid frame (or a
        valid index frame, which is always terminal by construction)
        ends the data region.  In append mode whatever follows is
        quarantined and truncated; read mode only remembers where the
        trustworthy region ends.
        """
        self.recovered = True
        get_observer().count("store.recovered_scan")
        offset = header_end
        blocks: list[int] = []
        index: dict[str, dict[str, _Entry]] = {}
        while offset < size:
            try:
                tag, payload, end = read_frame(fh, offset, size)
            except StoreError:
                break
            if tag == TAG_INDEX:
                # an index frame is only ever the last data the writer
                # appended; treat it (and anything after) as dead tail
                break
            if tag != TAG_BLOCK:
                break
            try:
                body = decompress(self.codec, payload)
                toc, data_start = unpack_block_body(body)
                ordinal = len(blocks)
                for item in toc["entries"]:
                    index.setdefault(str(item["key"]), {})[str(item["column"])] = _Entry(
                        block=ordinal,
                        offset=int(item["offset"]),
                        nbytes=int(item["nbytes"]),
                        dtype=str(item["dtype"]),
                        shape=tuple(int(dim) for dim in item["shape"]),
                    )
            except (StoreError, KeyError, TypeError, ValueError):
                break
            blocks.append(offset)
            offset = end
        self._blocks = blocks
        self._index = index
        self._data_end = offset
        self._clean = False
        if offset < size and self.mode == "append":
            fh.close()
            self._quarantine_tail(offset, size, reason="torn-tail")

    def _quarantine_tail(self, start: int, size: int, reason: str) -> None:
        """Move untrusted bytes ``[start, size)`` to ``corrupt/`` and
        truncate the store back to its last trustworthy frame."""
        amount = size - start
        if amount <= 0:
            return
        dest = self.path.parent / _CORRUPT_DIR / f"{self.path.name}.{reason}@{start}"
        try:
            dest.parent.mkdir(exist_ok=True)
            with open(self.path, "rb") as src:
                src.seek(start)
                dest.write_bytes(src.read(amount))
        except OSError:
            pass  # quarantine is best-effort; truncation is the safety property
        try:
            os.truncate(self.path, start)
        except OSError:
            self._broken = True
            raise
        self.tail_quarantined_bytes += amount
        get_observer().count("store.tail_quarantined")
        _LOG.warning(
            "store %s: quarantined %d damaged tail byte(s) (%s) -> %s",
            self.path, amount, reason, dest,
        )

    # -- writes ------------------------------------------------------------------

    def put(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Append one point's columns; supersedes any earlier ``key``.

        Buffers until :attr:`block_bytes` raw bytes are pending, then
        flushes one compressed block frame.  Raises ``OSError`` when the
        underlying append fails (the result cache folds that into its
        degradation ladder) and :class:`StoreError` for caller bugs
        (bad key, unsupported dtype) -- those never half-append.
        """
        self._require_writable()
        if not isinstance(key, str) or not key:
            raise StoreError("bad-key", repr(key))
        if not arrays:
            raise StoreError("no-columns", f"put({key!r}) with no arrays")
        staged = []
        for name, arr in arrays.items():
            if not isinstance(name, str) or not name:
                raise StoreError("bad-column-name", repr(name))
            data, dtype, shape = pack_array(arr)
            staged.append((key, name, data, dtype, shape))
        # stage atomically: nothing is pending unless every column packed
        base = len(self._pending)
        self._pending.extend(staged)
        cols = self._index.setdefault(key, {})
        for position, (_, name, data, dtype, shape) in enumerate(staged, start=base):
            self._pending_bytes += len(data)
            cols[name] = _Entry(
                block=-1, offset=position, nbytes=len(data),
                dtype=dtype, shape=shape,
            )
        if self._pending_bytes >= self.block_bytes:
            self._flush_block()

    def _require_writable(self) -> None:
        if self.mode != "append":
            raise StoreError("read-only", str(self.path))
        if self._broken:
            raise OSError(f"store {self.path} is broken (failed truncate)")

    def _flush_block(self) -> None:
        """Pack every pending column into one block frame and append it."""
        if not self._pending:
            return
        toc_entries = []
        parts = []
        offset = 0
        for key, name, data, dtype, shape in self._pending:
            toc_entries.append({
                "key": key,
                "column": name,
                "offset": offset,
                "nbytes": len(data),
                "dtype": dtype,
                "shape": list(shape),
            })
            parts.append(data)
            offset += len(data)
        body = pack_block_body({"entries": toc_entries}, b"".join(parts))
        framed = frame(TAG_BLOCK, compress(self.codec, body))
        try:
            self._append(framed)
        except BaseException:
            self._drop_pending()
            raise
        crash_point("store.block.append")
        ordinal = len(self._blocks)
        self._blocks.append(self._data_end)
        self._data_end += len(framed)
        self.appends += 1
        for position, (key, name, data, _, _) in enumerate(self._pending):
            entry = self._index.get(key, {}).get(name)
            if entry is not None and entry.block == -1 and entry.offset == position:
                entry.block = ordinal
                entry.offset = toc_entries[position]["offset"]
        self._pending.clear()
        self._pending_bytes = 0

    def _append(self, framed: bytes) -> None:
        """Append raw frame bytes at the end of the data region.

        If a checkpointed index sits past ``_data_end`` it is truncated
        away first (the next checkpoint rewrites it); a failed append
        truncates back so a torn partial frame can never sit *under*
        later appends.
        """
        self._require_writable()
        fs = self.fs
        if self._clean or self.path.stat().st_size != self._data_end:
            os.truncate(self.path, self._data_end)
            self._clean = False
        try:
            with fs.open_append(self.path) as fh:
                fs.write(fh, framed)
                if self.durability == "fsync":
                    fs.fsync(fh)
        except BaseException:
            try:
                os.truncate(self.path, self._data_end)
            except OSError:
                self._broken = True
            raise

    def _drop_pending(self) -> None:
        """A failed flush drops the buffered columns: their entries
        revert to misses (recomputable), never to dangling pointers."""
        dropped = 0
        for key, name, _, _, _ in self._pending:
            cols = self._index.get(key)
            if cols is not None and name in cols and cols[name].block == -1:
                del cols[name]
                dropped += 1
                if not cols:
                    del self._index[key]
        self._pending.clear()
        self._pending_bytes = 0
        if dropped:
            get_observer().count("store.pending_dropped", dropped)

    def checkpoint(self) -> None:
        """Flush the partial block and append the footer index.

        After a checkpoint a reader needs no recovery scan.  Appending
        again truncates the index away first; a store that crashes
        between checkpoints is still fully recoverable from its blocks.
        """
        self._require_writable()
        self._flush_block()
        if self._clean:
            return
        index = {
            "format": FORMAT,
            "codec": self.codec,
            "blocks": list(self._blocks),
            "entries": {
                key: {
                    name: [e.block, e.offset, e.nbytes, e.dtype, list(e.shape)]
                    for name, e in sorted(cols.items())
                }
                for key, cols in sorted(self._index.items())
            },
        }
        framed = frame(TAG_INDEX, _zlib.compress(canon_json(index), 6))
        self._append(framed + pack_footer(self._data_end))
        crash_point("store.index.write")
        if self.durability == "fsync":
            self.fs.fsync_dir(self.path.parent)
        self._clean = True

    close = checkpoint

    # -- reads -------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> list[str]:
        """Every live key, sorted."""
        return sorted(self._index)

    def columns(self, key: str) -> list[str] | None:
        cols = self._index.get(key)
        return None if cols is None else sorted(cols)

    def get(self, key: str, columns=None) -> dict[str, np.ndarray] | None:
        """The live arrays of ``key`` (or just ``columns``), or None.

        Raises :class:`StoreError` when the bytes backing an entry fail
        validation -- the caller decides whether that is a miss (the
        result cache) or a report line (``verify``/CLI); it is never a
        silently wrong array.
        """
        cols = self._index.get(key)
        if cols is None:
            return None
        wanted = cols if columns is None else {
            name: cols[name] for name in columns if name in cols
        }
        if columns is not None and len(wanted) != len(set(columns)):
            missing = sorted(set(columns) - set(cols))
            raise StoreError("missing-column", f"{key!r} has no {missing}")
        out: dict[str, np.ndarray] = {}
        for name, entry in wanted.items():
            out[name] = self._read_entry(entry)
        return out

    def _read_entry(self, entry: _Entry) -> np.ndarray:
        if entry.block == -1:
            _, _, data, dtype, shape = self._pending[entry.offset]
            return unpack_array(data, dtype, shape)
        data_start, body = self._block_body(entry.block)
        lo = data_start + entry.offset
        hi = lo + entry.nbytes
        if hi > len(body):
            self.corrupt_blocks += 1
            get_observer().count("store.block_corrupt")
            raise StoreError(
                "bad-column", f"entry points past block {entry.block} end"
            )
        return unpack_array(body[lo:hi], entry.dtype, entry.shape)

    def _block_body(self, ordinal: int) -> tuple[int, bytes]:
        """Decompressed body of one block (LRU-cached) + its data offset."""
        cached = self._block_cache.get(ordinal)
        if cached is not None:
            self._block_cache.move_to_end(ordinal)
            body = cached
        else:
            offset = self._blocks[ordinal]
            size = self.path.stat().st_size
            try:
                with open(self.path, "rb") as fh:
                    tag, payload, _ = read_frame(fh, offset, size)
                if tag != TAG_BLOCK:
                    raise StoreError("bad-block", f"frame at {offset} tagged {tag!r}")
                body = decompress(self.codec, payload)
            except StoreError:
                self.corrupt_blocks += 1
                get_observer().count("store.block_corrupt")
                raise
            self._block_cache[ordinal] = body
            while len(self._block_cache) > _BLOCK_CACHE_SLOTS:
                self._block_cache.popitem(last=False)
        _, data_start = unpack_block_body(body)
        return data_start, body

    def scan(self, columns=None) -> Iterator[tuple[str, str, np.ndarray]]:
        """Stream live ``(key, column, array)`` triples block by block.

        Each block is decompressed once; superseded entries (a key that
        was re-appended) are skipped.  Pending (unflushed) entries come
        last.  A damaged block raises :class:`StoreError` only when live
        entries depend on it -- silently omitting live data would make a
        partial distribution look complete; a dead block (every entry
        superseded, e.g. healed by a recompute) is skipped, because an
        append-only file legitimately accretes such tombstones until the
        next :meth:`compact`.
        """
        wanted = None if columns is None else set(columns)
        for ordinal in range(len(self._blocks)):
            try:
                data_start, body = self._block_body(ordinal)
            except StoreError:
                if self._block_is_live(ordinal):
                    raise
                continue
            toc, _ = unpack_block_body(body)
            for item in toc["entries"]:
                key, name = str(item["key"]), str(item["column"])
                if wanted is not None and name not in wanted:
                    continue
                entry = self._index.get(key, {}).get(name)
                if (
                    entry is None
                    or entry.block != ordinal
                    or entry.offset != int(item["offset"])
                ):
                    continue  # superseded by a later append
                lo = data_start + entry.offset
                yield key, name, unpack_array(
                    body[lo:lo + entry.nbytes], entry.dtype, entry.shape
                )
        for position, (key, name, data, dtype, shape) in enumerate(self._pending):
            if wanted is not None and name not in wanted:
                continue
            entry = self._index.get(key, {}).get(name)
            if entry is None or entry.block != -1 or entry.offset != position:
                continue
            yield key, name, unpack_array(data, dtype, shape)

    def _block_is_live(self, ordinal: int) -> bool:
        """Whether any live index entry is backed by block ``ordinal``."""
        return any(
            entry.block == ordinal
            for cols in self._index.values()
            for entry in cols.values()
        )

    def column_values(self, column: str) -> np.ndarray:
        """Every live value of ``column`` across all keys, concatenated
        (raveled) in block order -- the multiset feeding off-disk
        quantile queries.  Empty float64 array when nothing carries it."""
        parts = [arr.ravel() for _, _, arr in self.scan(columns=[column])]
        if not parts:
            return np.array([], dtype=np.float64)
        return np.concatenate(parts)

    # -- maintenance -------------------------------------------------------------

    def stats(self) -> StoreStats:
        live = sum(
            entry.nbytes for cols in self._index.values() for entry in cols.values()
        )
        return StoreStats(
            path=str(self.path),
            format=FORMAT,
            codec=self.codec,
            file_bytes=self.path.stat().st_size if self.path.exists() else 0,
            blocks=len(self._blocks),
            keys=len(self._index),
            columns=sum(len(cols) for cols in self._index.values()),
            live_bytes=live,
            pending_entries=len(self._pending),
            clean=self._clean,
            recovered=self.recovered,
        )

    def verify(self) -> list[str]:
        """Strictly validate every frame and entry; [] means clean.

        Read-only (safe on archives): problems come back as strings
        tagged with the same stable reasons :class:`StoreError` uses.
        """
        problems: list[str] = []
        size = self.path.stat().st_size
        with open(self.path, "rb") as fh:
            offset = 0
            saw_index = False
            while offset < size:
                try:
                    tag, payload, end = read_frame(fh, offset, size)
                except StoreError as err:
                    problems.append(f"frame@{offset}: {err}")
                    break
                if tag == TAG_BLOCK:
                    try:
                        body = decompress(self.codec, payload)
                        unpack_block_body(body)
                    except StoreError as err:
                        problems.append(f"block@{offset}: {err}")
                elif tag == TAG_INDEX:
                    saw_index = True
                    if end != size - FOOTER_SIZE:
                        problems.append(f"index@{offset}: not terminal")
                elif tag != TAG_HEADER or offset != 0:
                    problems.append(f"frame@{offset}: unexpected tag {tag!r}")
                offset = end
                if saw_index:
                    break
            if saw_index:
                fh.seek(size - FOOTER_SIZE)
                try:
                    unpack_footer(fh.read(FOOTER_SIZE))
                except StoreError as err:
                    problems.append(f"footer: {err}")
        for key, cols in self._index.items():
            for name, entry in cols.items():
                try:
                    self._read_entry(entry)
                except StoreError as err:
                    problems.append(f"entry {key}/{name}: {err}")
        return problems

    def compact(self, codec: str | None = None) -> dict:
        """Rewrite the store with only live entries, tmp+rename atomically.

        Output bytes depend only on logical content (sorted keys, fixed
        codec parameters), so compacting a crashed-and-resumed store and
        a clean one converges to identical files.  Entries whose backing
        bytes fail validation are *dropped* (counted in the report) --
        compaction doubles as repair, since those entries could only
        ever answer as misses.  Returns a plain-data report.
        """
        self._require_writable()
        self._flush_block()
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        if tmp.exists():
            tmp.unlink()
        before = self.path.stat().st_size
        fresh = ColumnStore(
            tmp, mode="append", codec=codec or self.codec,
            block_bytes=self.block_bytes, durability=self.durability, fs=self.fs,
        )
        dropped = 0
        for key in sorted(self._index):
            try:
                arrays = self.get(key)
            except StoreError as err:
                dropped += 1
                _LOG.warning("compact %s: dropping %s (%s)", self.path, key, err)
                continue
            if arrays:
                # sorted columns: a freshly-appended index iterates in
                # put order, a footer-loaded one in sorted order -- the
                # output bytes must not depend on which history this is
                fresh.put(key, {name: arrays[name] for name in sorted(arrays)})
        fresh.checkpoint()
        crash_point("store.compact.rename")
        self.fs.replace(tmp, self.path)
        if self.durability == "fsync":
            self.fs.fsync_dir(self.path.parent)
        # adopt the fresh store's state wholesale
        self.codec = fresh.codec
        self._blocks = fresh._blocks
        self._index = fresh._index
        self._pending = []
        self._pending_bytes = 0
        self._data_end = fresh._data_end
        self._clean = True
        self._block_cache.clear()
        after = self.path.stat().st_size
        return {
            "before_bytes": before,
            "after_bytes": after,
            "keys": len(self._index),
            "dropped_entries": dropped,
        }


