"""SOS: Sustainability-Oriented Storage.

A complete reproduction of "Degrading Data to Save the Planet"
(Zuck, Porter, Tsafrir -- HotOS 2023) as a trace-driven simulation stack:

* :mod:`repro.flash`     -- NAND cell/block/chip substrate with error physics
* :mod:`repro.ecc`       -- BCH/Hamming codecs and analytic protection models
* :mod:`repro.ftl`       -- flash translation layer (GC, wear leveling, zones)
* :mod:`repro.host`      -- file model, capacity-variant file system
* :mod:`repro.classify`  -- ML file classifier (SYS vs SPARE, auto-delete)
* :mod:`repro.media`     -- error-tolerant media codec + quality metrics
* :mod:`repro.carbon`    -- embodied-carbon, market, and credit models
* :mod:`repro.core`      -- the SOS device itself (the paper's contribution)
* :mod:`repro.sim`       -- multi-year lifetime simulator and baselines
* :mod:`repro.workloads` -- synthetic mobile workloads and traces
* :mod:`repro.analysis`  -- experiment reporting helpers
"""

__version__ = "1.0.0"
