"""SOSDevice: the complete host-device co-design of Figure 2.

Composes every piece of the system:

* PLC chip physically partitioned into SYS (pseudo-QLC, strong ECC,
  wear-leveled) and SPARE (native PLC, weak/no ECC, no wear leveling);
* a capacity-variant file system over a hint-carrying block layer;
* a trained ML file classifier and its periodic daemon;
* degradation forecasting, preemptive scrubbing, cloud-backed repair;
* the auto-delete trim fallback.

The facade is what the examples and the end-to-end experiment (E11)
drive: create files, let time pass, run the daemon, and observe carbon,
capacity, wear, and media quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import DeviceCarbon, device_embodied_kg
from repro.classify.auto_delete import AutoDeletePredictor, train_auto_delete
from repro.classify.classifier import FileClassifier, train_classifier
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.faults.plan import FaultPlan, FaultSummary
from repro.host.block_layer import BlockLayer
from repro.host.files import FileAttributes, FileKind, FileRecord
from repro.host.filesystem import FileSystem

from .config import SOSConfig, default_config
from .daemon import ClassifierDaemon, DaemonRunReport
from .degradation import DegradationMonitor
from .partitions import PartitionedDevice, build_partitions
from .placement import PlacementEngine
from .repair import CloudBackup
from .scrubber import Scrubber
from .trim_policy import TrimPolicy

__all__ = ["SOSDevice", "DeviceSnapshot"]


class _BackupAwareBlockLayer(BlockLayer):
    """Block layer that mirrors cloud-backed files' writes to the backup."""

    def __init__(self, ftl, backup: CloudBackup) -> None:
        super().__init__(ftl)
        self._backup = backup

    def write_page(self, lpn: int, payload: bytes, file: FileRecord | None = None) -> None:
        super().write_page(lpn, payload, file)
        if file is not None and file.attributes.cloud_backed:
            self._backup.store_page(lpn, payload)

    def trim_page(self, lpn: int) -> None:
        super().trim_page(lpn)
        self._backup.forget_page(lpn)


@dataclass(frozen=True, slots=True)
class DeviceSnapshot:
    """Point-in-time summary of device state."""

    now_years: float
    capacity_pages: int
    used_pages: int
    sys_mean_pec: float
    spare_mean_pec: float
    blocks_retired: int
    blocks_resuscitated: int
    spare_file_count: int


class SOSDevice:
    """One Sustainability-Oriented Storage device plus its host stack.

    Parameters
    ----------
    config:
        Device configuration; defaults to the paper's default split.
    classifier, auto_delete:
        Pre-trained models; when omitted, models are trained on a fresh
        synthetic corpus (deterministic under ``config.seed``).
    cloud_available:
        Whether the cloud backup serves repairs (A4 ablation).
    fault_plan:
        Optional precomputed fault schedule: infant-mortality block
        deaths (targets keyed by stream name) are applied as the clock
        passes their scheduled day, and the plan's cloud-outage windows
        gate the backup.  ``None`` is the exact pre-fault behaviour.
    cloud_transient_failure_rate:
        Per-fetch transient cloud failure probability (exercises the
        scrubber's bounded-retry repair path).
    """

    def __init__(
        self,
        config: SOSConfig | None = None,
        classifier: FileClassifier | None = None,
        auto_delete: AutoDeletePredictor | None = None,
        cloud_available: bool = True,
        fault_plan: FaultPlan | None = None,
        cloud_transient_failure_rate: float = 0.0,
    ) -> None:
        self.config = config or default_config()
        self.partitions: PartitionedDevice = build_partitions(self.config)
        self.ftl = self.partitions.ftl
        self.chip = self.partitions.chip
        self.fault_plan = fault_plan
        self.fault_summary = FaultSummary() if fault_plan is not None else None
        self._fault_cursor = 0
        self.backup = CloudBackup(
            available=cloud_available,
            outage_windows=(
                fault_plan.outage_windows_years() if fault_plan is not None else ()
            ),
            transient_failure_rate=cloud_transient_failure_rate,
            seed=self.config.seed,
        )
        self.block_layer = _BackupAwareBlockLayer(self.ftl, self.backup)
        self.filesystem = FileSystem(self.block_layer)
        if classifier is None or auto_delete is None:
            corpus = generate_corpus(CorpusConfig(), seed=self.config.seed)
            if classifier is None:
                classifier, _ = train_classifier(
                    corpus,
                    now_years=CorpusConfig().now_years,
                    demote_threshold=self.config.demote_threshold,
                    seed=self.config.seed,
                )
            if auto_delete is None:
                auto_delete, _ = train_auto_delete(
                    corpus, now_years=CorpusConfig().now_years, seed=self.config.seed
                )
        self.classifier = classifier
        self.auto_delete = auto_delete
        self.placement = PlacementEngine(self.block_layer)
        self.monitor = DegradationMonitor(self.ftl)
        self.scrubber = Scrubber(
            self.block_layer,
            self.monitor,
            self.backup,
            quality_floor=self.config.scrub_quality_floor,
        )
        self.trim = TrimPolicy(
            self.filesystem, self.auto_delete, free_target=self.config.trim_free_target
        )
        self.daemon = ClassifierDaemon(
            self.filesystem, self.classifier, self.placement, self.scrubber, self.trim
        )

    # -- time ----------------------------------------------------------------

    @property
    def now_years(self) -> float:
        """Current simulation time."""
        return self.chip.now_years

    def advance_time(self, now_years: float) -> None:
        """Advance device and host clocks together.

        Fault-plan events scheduled up to the new time are applied here:
        infant-mortality deaths force-retire the scheduled block of the
        target stream (live data migrates off first, §4.3's contract).
        """
        self.chip.advance_time(now_years)
        self.filesystem.advance_time(now_years)
        self.backup.advance_time(now_years)
        if self.fault_plan is None:
            return
        assert self.fault_summary is not None
        events = self.fault_plan.events
        while self._fault_cursor < len(events):
            event = events[self._fault_cursor]
            if event.day / 365.0 > now_years:
                break
            self._fault_cursor += 1
            if event.kind != "infant_death" or event.target not in self.ftl.stream_names():
                continue
            stream_blocks = self.ftl.stream(event.target).blocks
            if event.unit < len(stream_blocks):
                if self.ftl.force_retire(event.target, stream_blocks[event.unit]):
                    self.fault_summary.infant_deaths += 1

    def run_daemon(self) -> DaemonRunReport:
        """One periodic daemon pass at the current time."""
        return self.daemon.run_once()

    # -- convenience I/O --------------------------------------------------------

    def create_file(
        self,
        path: str,
        kind: FileKind,
        size_bytes: int,
        attributes: FileAttributes | None = None,
        content=None,
    ) -> FileRecord:
        """Create a file (lands on SYS per §4.4's write-then-classify)."""
        return self.filesystem.create(path, kind, size_bytes, attributes, content)

    def delete_file(self, path: str) -> None:
        """Delete a file and forget its placement/backup state."""
        record = self.filesystem.lookup(path)
        self.placement.forget(record)
        self.filesystem.delete(path)

    def as_ufs(self):
        """Expose this device through a UFS-style LUN frontend (§4.3).

        LUN 0 (``system``) maps to SYS with reliable writes; LUN 1
        (``userdata``) maps to SPARE with a volatile write buffer --
        the standard-conformant packaging of the SOS split.
        """
        from repro.host.ufs import LunConfig, UfsDevice

        return UfsDevice(self.ftl, [
            LunConfig(lun_id=0, name="system", stream="sys",
                      reliable_writes=True, bootable=True),
            LunConfig(lun_id=1, name="userdata", stream="spare",
                      reliable_writes=False),
        ])

    # -- reporting -----------------------------------------------------------------

    def embodied_carbon(self) -> DeviceCarbon:
        """Embodied carbon of this device's configuration."""
        capacity_gb = self.chip.usable_capacity_bytes() / 1e9
        return device_embodied_kg(
            max(capacity_gb, 1e-12),
            {
                self.config.sys_mode: 1.0 - self.config.spare_fraction,
                self.config.spare_mode: self.config.spare_fraction,
            },
        )

    def snapshot(self) -> DeviceSnapshot:
        """Summarize current wear/capacity/placement state."""
        sys_blocks = [self.chip.blocks[i] for i in self.ftl.stream("sys").blocks]
        spare_blocks = [self.chip.blocks[i] for i in self.ftl.stream("spare").blocks]
        live_sys = [b.pec for b in sys_blocks if not b.retired]
        live_spare = [b.pec for b in spare_blocks if not b.retired]
        spare_files = self.placement.spare_files(list(self.filesystem.live_files()))
        return DeviceSnapshot(
            now_years=self.now_years,
            capacity_pages=self.filesystem.capacity_pages(),
            used_pages=self.filesystem.used_pages(),
            sys_mean_pec=sum(live_sys) / len(live_sys) if live_sys else 0.0,
            spare_mean_pec=sum(live_spare) / len(live_spare) if live_spare else 0.0,
            blocks_retired=self.ftl.stats.blocks_retired,
            blocks_resuscitated=self.ftl.stats.blocks_resuscitated,
            spare_file_count=len(spare_files),
        )
