"""Preemptive scrubber: rescues endangered SPARE data (§4.3).

Periodically forecasts SPARE page quality (see
:class:`~repro.core.degradation.DegradationMonitor`) and acts on pages
predicted to fall below the floor:

1. if a clean cloud copy exists, **repair in place** -- rewrite from the
   backup onto fresh SPARE blocks ("amending overly degraded local data
   copies through a cloud-backed copy");
2. otherwise **relocate** the page to the write head, moving it off the
   worn block (the accrued errors travel with it -- approximate storage
   cannot un-degrade without a reference copy);
3. after rescue, run the stream health check so the vacated worn blocks
   are retired or resuscitated at reduced density.

Note wear leveling on SPARE stays disabled: the scrubber moves only
*endangered* data, not cold data for wear balance -- the distinction
§4.3 draws when it disables preemptive wear-variance migration but keeps
preemptive quality rescue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.block_layer import BlockLayer
from repro.obs import get_observer

from .degradation import DegradationMonitor, PageForecast
from .repair import CloudBackup

__all__ = ["Scrubber", "ScrubReport"]


@dataclass(slots=True)
class ScrubReport:
    """Outcome of one scrub pass."""

    pages_scanned: int = 0
    pages_endangered: int = 0
    pages_repaired_from_cloud: int = 0
    pages_relocated: int = 0
    blocks_retired: int = 0
    blocks_resuscitated: int = 0
    #: fetch retries issued against a flaky/unreachable cloud
    repair_retries: int = 0
    #: simulated seconds spent in exponential backoff between retries
    repair_backoff_s: float = 0.0
    #: rescues where a clean copy existed but could not be fetched, so the
    #: page degraded to relocation (graceful degradation, counted not fatal)
    repairs_failed: int = 0


class Scrubber:
    """Quality-driven preemptive migration for the SPARE partition.

    Parameters
    ----------
    block_layer:
        Host block layer (relocation and rewrite path).
    monitor:
        Degradation forecaster.
    backup:
        Cloud backup store (may hold clean copies of some LPNs).
    quality_floor:
        Forecast quality below which a page is rescued.
    max_repair_retries:
        Bounded retry budget for cloud fetches that fail while a clean
        copy is known to exist (outage or transient failure).
    repair_backoff_s:
        Base of the exponential backoff between retries.  The scrubber
        runs inside a simulation, so backoff is *accounted*, not slept:
        it accrues into :attr:`ScrubReport.repair_backoff_s`.
    """

    def __init__(
        self,
        block_layer: BlockLayer,
        monitor: DegradationMonitor,
        backup: CloudBackup,
        quality_floor: float = 0.85,
        max_repair_retries: int = 3,
        repair_backoff_s: float = 0.05,
    ) -> None:
        if max_repair_retries < 0:
            raise ValueError("max_repair_retries must be >= 0")
        self.block_layer = block_layer
        self.monitor = monitor
        self.backup = backup
        self.quality_floor = quality_floor
        self.max_repair_retries = max_repair_retries
        self.repair_backoff_s = repair_backoff_s

    def scrub(self, lpns: list[int]) -> ScrubReport:
        """Scan the given LPNs and rescue endangered pages."""
        report = ScrubReport()
        ftl = self.monitor.ftl
        obs = get_observer()
        with obs.span("scrub.pass"):
            retired_before = ftl.stats.blocks_retired
            resuscitated_before = ftl.stats.blocks_resuscitated
            # health first: rescues must land on healthy blocks, so a worn
            # open block is abandoned before any rewrite happens
            ftl.check_stream_health(self.monitor.spare_stream)
            forecasts = self.monitor.scan(lpns)
            report.pages_scanned = len(forecasts)
            endangered = [f for f in forecasts if f.below_floor(self.quality_floor)]
            report.pages_endangered = len(endangered)
            for forecast in endangered:
                self._rescue(forecast, report)
            ftl.check_stream_health(self.monitor.spare_stream)
            report.blocks_retired = ftl.stats.blocks_retired - retired_before
            report.blocks_resuscitated = ftl.stats.blocks_resuscitated - resuscitated_before
        obs.count("scrub.pages_scanned", report.pages_scanned)
        obs.count("scrub.pages_endangered", report.pages_endangered)
        return report

    def _rescue(self, forecast: PageForecast, report: ScrubReport) -> None:
        ftl = self.monitor.ftl
        obs = get_observer()
        now = ftl.chip.now_years
        lpn = forecast.lpn
        clean = self._fetch_with_retry(lpn, report)
        if clean is not None:
            # repair: rewrite the clean copy at the SPARE write head
            ftl.write(lpn, clean, self.monitor.spare_stream)
            report.pages_repaired_from_cloud += 1
            obs.event("cloud_repair", t=now, lpn=lpn, outcome="repaired")
            return
        if self.backup.covered(lpn):
            # a clean copy exists but the cloud never answered: graceful
            # degradation -- count the failed repair, keep rescuing
            report.repairs_failed += 1
            obs.event("cloud_repair", t=now, lpn=lpn, outcome="failed")
        # relocate best-effort: accrued errors travel with the data
        ftl.relocate(lpn, self.monitor.spare_stream)
        report.pages_relocated += 1
        obs.event("page_relocated", t=now, lpn=lpn)

    def _fetch_with_retry(self, lpn: int, report: ScrubReport) -> bytes | None:
        """Fetch a clean copy, retrying with exponential backoff.

        Retries only when the store is known to hold the page and the
        failure is recoverable (an outage or transient failure) -- a miss
        can never succeed, and a statically unavailable cloud never
        answers, so neither burns the retry budget.
        """
        clean = self.backup.fetch_page(lpn)
        if (
            clean is not None
            or not self.backup.covered(lpn)
            or not self.backup.available
        ):
            return clean
        obs = get_observer()
        backoff = self.repair_backoff_s
        for _ in range(self.max_repair_retries):
            report.repair_retries += 1
            report.repair_backoff_s += backoff
            backoff *= 2.0
            obs.count("scrub.repair_retries")
            clean = self.backup.fetch_page(lpn)
            if clean is not None:
                return clean
        return None
