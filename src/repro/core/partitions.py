"""Partition construction and density accounting (§4.1-§4.2).

Builds the physical SYS/SPARE split over a PLC chip and computes the
density/capacity arithmetic behind the paper's headline numbers:

* TLC -> QLC: +33% density; TLC -> PLC: +66%;
* a 50/50 PLC + pseudo-QLC device averages 4.5 operating bits/cell:
  **+50% capacity over TLC** for the same cells (equivalently, 2/3 the
  silicon -- and embodied carbon -- for the same capacity), and ~+12.5%
  over QLC (the paper rounds to 10%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.cell import CellMode, CellTechnology
from repro.flash.chip import FlashChip
from repro.ftl.ftl import Ftl
from repro.ftl.streams import StreamConfig

from .config import SOSConfig

__all__ = ["PartitionedDevice", "build_partitions", "density_gain", "capacity_gain_over"]


@dataclass(frozen=True, slots=True)
class PartitionedDevice:
    """A chip partitioned into SYS and SPARE streams behind an FTL."""

    chip: FlashChip
    ftl: Ftl
    config: SOSConfig

    @property
    def sys_blocks(self) -> int:
        """Block count of the SYS partition."""
        return len(self.ftl.stream("sys").blocks)

    @property
    def spare_blocks(self) -> int:
        """Block count of the SPARE partition."""
        return len(self.ftl.stream("spare").blocks)


def build_partitions(config: SOSConfig) -> PartitionedDevice:
    """Construct chip + FTL with the config's physical partition split.

    Blocks are interleaved between partitions (round-robin by fraction)
    rather than split contiguously, approximating how real devices stripe
    partitions across planes/dies for parallelism.
    """
    chip = FlashChip(config.geometry, config.technology, seed=config.seed)
    total = config.geometry.total_blocks
    spare_count = round(total * config.spare_fraction)
    if spare_count in (0, total):
        raise ValueError("partition split leaves an empty partition")
    # deterministic interleave: spread SPARE blocks evenly over the chip
    spare_indices = {round(i * total / spare_count) for i in range(spare_count)}
    spare_blocks = sorted(i for i in spare_indices if i < total)
    # rounding collisions can drop a block; backfill from unused indices
    pool = (i for i in range(total) if i not in spare_indices)
    while len(spare_blocks) < spare_count:
        spare_blocks.append(next(pool))
    spare_set = set(spare_blocks)
    sys_blocks = [i for i in range(total) if i not in spare_set]
    streams = [
        StreamConfig(
            name="sys",
            mode=config.sys_mode,
            protection=config.sys_protection,
            gc_policy=config.sys_gc,
            wear_leveling=config.sys_wear_leveling,
            health=config.sys_health(),
        ),
        StreamConfig(
            name="spare",
            mode=config.spare_mode,
            protection=config.spare_protection,
            gc_policy=config.spare_gc,
            wear_leveling=config.spare_wear_leveling,
            health=config.spare_health(),
        ),
    ]
    ftl = Ftl(chip, streams, {"sys": sys_blocks, "spare": sorted(spare_set)})
    return PartitionedDevice(chip=chip, ftl=ftl, config=config)


def density_gain(config: SOSConfig, baseline: CellTechnology = CellTechnology.TLC) -> float:
    """Fractional density gain of the SOS split over a native baseline.

    The §4.2 headline: default config vs TLC -> 0.50 exactly.
    """
    return config.mean_operating_bits / baseline.bits_per_cell - 1.0


def capacity_gain_over(
    config: SOSConfig, baseline: CellMode | CellTechnology
) -> float:
    """Capacity gain for the same cell count versus a baseline density."""
    bits = (
        baseline.operating_bits
        if isinstance(baseline, CellMode)
        else baseline.bits_per_cell
    )
    return config.mean_operating_bits / bits - 1.0
