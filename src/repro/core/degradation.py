"""Degradation monitoring: predicting quality decay of SPARE data.

§4.3: "whenever possible, SOS preemptively moves data whose quality is
dangerously degraded from worn-out blocks".  Acting *preemptively*
requires prediction, not just observation: the monitor combines each
block's analytic RBER forecast with the media quality model to estimate
where every SPARE-resident page will be at the end of a look-ahead
window, flagging pages that will fall below the quality floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.flash.error_model import ErrorModel
from repro.ftl.ftl import Ftl
from repro.media.quality import FRAME_SENSITIVITY, FrameType

__all__ = ["PageForecast", "DegradationMonitor"]


@dataclass(frozen=True, slots=True)
class PageForecast:
    """Predicted state of one SPARE-resident page."""

    lpn: int
    block_index: int
    rber_now: float
    rber_at_horizon: float
    quality_at_horizon: float

    def below_floor(self, floor: float) -> bool:
        """Whether predicted quality violates the given floor."""
        return self.quality_at_horizon < floor


class DegradationMonitor:
    """Forecasts quality of SPARE pages from block wear state.

    Parameters
    ----------
    ftl:
        Device FTL (block wear and mapping source).
    spare_stream:
        Name of the approximate partition.
    horizon_years:
        Look-ahead window for forecasts.
    sensitivity:
        BER -> quality exponent used as the page-level proxy.  Defaults to
        the P-frame constant: pessimistic for B-frames, optimistic for
        I-frames, which is why SOS keeps I-frames off SPARE (hybrid
        layout).
    """

    def __init__(
        self,
        ftl: Ftl,
        spare_stream: str = "spare",
        horizon_years: float = 0.5,
        sensitivity: float = FRAME_SENSITIVITY[FrameType.P],
    ) -> None:
        self.ftl = ftl
        self.spare_stream = spare_stream
        self.horizon_years = horizon_years
        self.sensitivity = sensitivity

    def quality_from_rber(self, rber: float) -> float:
        """Page-level quality proxy at a given bit error rate."""
        return math.exp(-self.sensitivity * rber)

    def rber_floor_for_quality(self, quality_floor: float) -> float:
        """Invert the proxy: max RBER keeping quality above the floor."""
        if not 0.0 < quality_floor < 1.0:
            raise ValueError("quality_floor must be in (0, 1)")
        return -math.log(quality_floor) / self.sensitivity

    def forecast_page(self, lpn: int) -> PageForecast | None:
        """Forecast one page; None when the LPN is not SPARE-resident."""
        if self.ftl.stream_of(lpn) != self.spare_stream:
            return None
        addr = self.ftl.page_map.lookup(lpn)
        if addr is None:
            return None
        block_index, page_index = addr
        block = self.ftl.chip.blocks[block_index]
        now = self.ftl.chip.now_years
        rber_now = block.rber_now(page_index, now)
        model = ErrorModel(block.mode)
        page = block.page_info(page_index)
        age_at_horizon = (now + self.horizon_years) - page.written_at_years
        rber_future = model.rber(
            pec=block.pec,
            years_since_write=max(0.0, age_at_horizon),
            reads_since_write=page.reads_since_write,
        )
        return PageForecast(
            lpn=lpn,
            block_index=block_index,
            rber_now=rber_now,
            rber_at_horizon=rber_future,
            quality_at_horizon=self.quality_from_rber(rber_future),
        )

    def scan(self, lpns: list[int]) -> list[PageForecast]:
        """Forecast every SPARE-resident page among ``lpns``."""
        forecasts = []
        for lpn in lpns:
            forecast = self.forecast_page(lpn)
            if forecast is not None:
                forecasts.append(forecast)
        return forecasts

    def endangered(self, lpns: list[int], quality_floor: float) -> list[PageForecast]:
        """Pages predicted to fall below the quality floor in-horizon."""
        return [f for f in self.scan(lpns) if f.below_floor(quality_floor)]
