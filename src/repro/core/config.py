"""SOS device configuration and presets.

Bundles every §4 policy choice into one config object:

* silicon: PLC chips, partitioned ~half/half into SYS (pseudo-QLC,
  strong ECC, wear-leveled) and SPARE (native PLC, weak/no ECC, wear
  leveling disabled) -- §4.2's "conservatively assuming each partition
  takes up about half of the device storage";
* degradation thresholds: the quality floor below which the scrubber
  preemptively migrates data (§4.3) and the RBER ceilings that drive
  block retirement/resuscitation;
* the trim fallback's free-space target ("e.g. 3% of capacity", §4.5);
* classifier conservativeness (demotion threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecc.policy import POLICIES, ProtectionLevel, ProtectionPolicy
from repro.flash.cell import CellMode, CellTechnology, native_mode, pseudo_mode
from repro.flash.geometry import SMALL_GEOMETRY, Geometry
from repro.ftl.bad_blocks import BlockHealthPolicy
from repro.ftl.gc import GcPolicy
from repro.ftl.wear_leveling import WearLevelerConfig

__all__ = ["SOSConfig", "default_config"]


@dataclass(frozen=True, slots=True)
class SOSConfig:
    """Complete configuration of one SOS device instance."""

    geometry: Geometry = SMALL_GEOMETRY
    technology: CellTechnology = CellTechnology.PLC
    #: fraction of physical blocks assigned to the SPARE partition
    spare_fraction: float = 0.5
    sys_mode: CellMode = field(
        default_factory=lambda: pseudo_mode(CellTechnology.PLC, 4)
    )
    spare_mode: CellMode = field(
        default_factory=lambda: native_mode(CellTechnology.PLC)
    )
    sys_protection: ProtectionPolicy = field(
        default_factory=lambda: POLICIES[ProtectionLevel.STRONG]
    )
    spare_protection: ProtectionPolicy = field(
        default_factory=lambda: POLICIES[ProtectionLevel.NONE]
    )
    sys_gc: GcPolicy = GcPolicy.GREEDY
    spare_gc: GcPolicy = GcPolicy.COST_BENEFIT
    sys_wear_leveling: WearLevelerConfig = field(
        default_factory=lambda: WearLevelerConfig(enabled=True)
    )
    #: §4.3: preemptive wear leveling is DISABLED on SPARE
    spare_wear_leveling: WearLevelerConfig = field(
        default_factory=lambda: WearLevelerConfig(enabled=False)
    )
    #: RBER the SYS ECC must keep correctable over its retention horizon
    sys_max_rber: float = 5e-3
    #: RBER ceiling for acceptable SPARE media quality
    spare_max_rber: float = 4e-4
    #: retention horizon used in block health checks (years)
    health_retention_years: float = 1.0
    #: classifier demotion threshold (P(critical) below which -> SPARE)
    demote_threshold: float = 0.35
    #: scrubber migrates SPARE data whose predicted quality falls below this
    scrub_quality_floor: float = 0.85
    #: §4.5: trim until this fraction of capacity is free, then resume
    trim_free_target: float = 0.03
    #: classifier daemon period (years; ~daily = 1/365)
    daemon_period_years: float = 1.0 / 365.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.spare_fraction < 1.0:
            raise ValueError("spare_fraction must be in (0, 1)")
        if self.sys_mode.technology is not self.technology:
            raise ValueError("sys_mode must use the device technology")
        if self.spare_mode.technology is not self.technology:
            raise ValueError("spare_mode must use the device technology")

    def sys_health(self) -> BlockHealthPolicy:
        """Health thresholds for SYS blocks (retire only; SYS never
        drops below the density the capacity plan promised)."""
        return BlockHealthPolicy(
            max_rber=self.sys_max_rber,
            retention_horizon_years=self.health_retention_years,
            resuscitation_modes=(),
        )

    def spare_health(self) -> BlockHealthPolicy:
        """Health thresholds for SPARE blocks with the §4.3 resuscitation
        ladder: worn PLC is reborn as pseudo-TLC, then pseudo-SLC."""
        return BlockHealthPolicy(
            max_rber=self.spare_max_rber,
            retention_horizon_years=self.health_retention_years,
            resuscitation_modes=(
                pseudo_mode(self.technology, 3),
                pseudo_mode(self.technology, 1),
            ),
        )

    @property
    def mean_operating_bits(self) -> float:
        """Capacity-weighted bits per cell across both partitions."""
        return (
            self.spare_fraction * self.spare_mode.operating_bits
            + (1.0 - self.spare_fraction) * self.sys_mode.operating_bits
        )


def default_config(**overrides) -> SOSConfig:
    """The paper's default SOS configuration, with optional overrides."""
    return SOSConfig(**overrides)
