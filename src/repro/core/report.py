"""Sustainability report: one device's lifetime, accounted.

Aggregates everything a sustainability audit of an SOS device would ask
for -- the embodied-carbon saving versus a TLC status quo, how the gap
was spent (wear margins consumed, rescues performed, capacity traded),
and whether the user-visible contract held (critical integrity, media
quality, trim episodes).  Rendered as a text report by the examples and
consumable as a dataclass by tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import intensity_kg_per_gb
from repro.flash.cell import CellTechnology

from .sos_device import SOSDevice

__all__ = ["SustainabilityReport", "build_report", "render_report"]


@dataclass(frozen=True, slots=True)
class SustainabilityReport:
    """Lifetime accounting of one SOS device."""

    years_in_service: float
    capacity_gb: float
    # carbon
    intensity_kg_per_gb: float
    tlc_intensity_kg_per_gb: float
    embodied_kg: float
    saved_vs_tlc_kg: float
    # wear
    sys_wear_fraction: float
    spare_wear_fraction: float
    blocks_retired: int
    blocks_resuscitated: int
    # degradation management
    files_on_spare: int
    files_total: int
    pages_repaired_from_cloud: int
    pages_relocated: int
    trim_episodes: int
    files_auto_deleted: int
    # ECC activity
    corrected_bits: int
    uncorrectable_codewords: int
    parity_recoveries: int

    @property
    def saved_fraction(self) -> float:
        """Fractional carbon saving versus the TLC status quo."""
        return 1.0 - self.intensity_kg_per_gb / self.tlc_intensity_kg_per_gb


def build_report(device: SOSDevice) -> SustainabilityReport:
    """Collect a report from a device's current state."""
    carbon = device.embodied_carbon()
    tlc = intensity_kg_per_gb(CellTechnology.TLC)
    snapshot = device.snapshot()
    spare_rated = max(
        1, device.chip.blocks[device.ftl.stream("spare").blocks[0]].rated_pec
    )
    sys_rated = max(
        1, device.chip.blocks[device.ftl.stream("sys").blocks[0]].rated_pec
    )
    repaired = sum(r.scrub.pages_repaired_from_cloud for r in device.daemon.runs)
    relocated = sum(r.scrub.pages_relocated for r in device.daemon.runs)
    deleted = sum(e.files_deleted for e in device.trim.events)
    stats = device.ftl.stats
    return SustainabilityReport(
        years_in_service=device.now_years,
        capacity_gb=carbon.capacity_gb,
        intensity_kg_per_gb=carbon.intensity_kg_per_gb,
        tlc_intensity_kg_per_gb=tlc,
        embodied_kg=carbon.total_kg,
        saved_vs_tlc_kg=carbon.capacity_gb * (tlc - carbon.intensity_kg_per_gb),
        sys_wear_fraction=snapshot.sys_mean_pec / sys_rated,
        spare_wear_fraction=snapshot.spare_mean_pec / spare_rated,
        blocks_retired=snapshot.blocks_retired,
        blocks_resuscitated=snapshot.blocks_resuscitated,
        files_on_spare=snapshot.spare_file_count,
        files_total=len(list(device.filesystem.live_files())),
        pages_repaired_from_cloud=repaired,
        pages_relocated=relocated,
        trim_episodes=len(device.trim.events),
        files_auto_deleted=deleted,
        corrected_bits=stats.corrected_bits,
        uncorrectable_codewords=stats.uncorrectable_codewords,
        parity_recoveries=stats.parity_recoveries,
    )


def render_report(report: SustainabilityReport) -> str:
    """Human-readable text rendering."""
    lines = [
        "SOS sustainability report",
        "=" * 40,
        f"service time:       {report.years_in_service:.2f} years",
        f"capacity:           {report.capacity_gb * 1000:.1f} MB (simulated)",
        "",
        "carbon",
        f"  embodied:         {report.embodied_kg * 1000:.2f} g CO2e "
        f"({report.intensity_kg_per_gb:.3f} kg/GB)",
        f"  vs TLC status quo: -{report.saved_fraction * 100:.1f}% "
        f"({report.saved_vs_tlc_kg * 1000:.2f} g saved)",
        "",
        "wear",
        f"  SYS:              {report.sys_wear_fraction * 100:.1f}% of rated endurance",
        f"  SPARE:            {report.spare_wear_fraction * 100:.1f}% of rated endurance",
        f"  blocks retired:   {report.blocks_retired}, "
        f"resuscitated: {report.blocks_resuscitated}",
        "",
        "degradation management",
        f"  files on SPARE:   {report.files_on_spare}/{report.files_total}",
        f"  cloud repairs:    {report.pages_repaired_from_cloud} pages",
        f"  relocations:      {report.pages_relocated} pages",
        f"  trim episodes:    {report.trim_episodes} "
        f"({report.files_auto_deleted} files auto-deleted)",
        "",
        "integrity",
        f"  bits corrected:   {report.corrected_bits}",
        f"  parity rescues:   {report.parity_recoveries}",
        f"  uncorrectable:    {report.uncorrectable_codewords} codewords "
        f"(SPARE errors are by design)",
    ]
    return "\n".join(lines)
