"""Classifier daemon: the periodic background review of §4.4.

"The mechanism operates in the background as a privileged system daemon,
which performs a periodic review (e.g., daily) of new file data."

Each run the daemon (1) classifies files it hasn't reviewed -- or whose
attributes changed since the last review -- and applies placement hints
through the :class:`~repro.core.placement.PlacementEngine`; (2) invokes
the scrubber over all SPARE-resident pages; (3) lets the trim policy
check capacity pressure.  Re-evaluation of previously reviewed files
happens on a longer period ("we plan to periodically re-evaluate user
preferences as these tend to change over time").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.classifier import FileClassifier
from repro.host.filesystem import FileSystem

from .placement import PlacementEngine
from .scrubber import Scrubber, ScrubReport
from .tolerance import ToleranceRegistry
from .trim_policy import TrimEvent, TrimPolicy

__all__ = ["ClassifierDaemon", "DaemonRunReport"]


@dataclass(frozen=True, slots=True)
class DaemonRunReport:
    """Outcome of one daemon period."""

    at_years: float
    files_reviewed: int
    files_moved: int
    scrub: ScrubReport
    trim: TrimEvent | None


class ClassifierDaemon:
    """Periodic classification + scrub + trim driver.

    Parameters
    ----------
    filesystem, classifier, placement, scrubber, trim:
        The SOS components the daemon coordinates.
    reevaluate_period_years:
        Files already reviewed are re-classified after this long
        (preference drift).
    """

    def __init__(
        self,
        filesystem: FileSystem,
        classifier: FileClassifier,
        placement: PlacementEngine,
        scrubber: Scrubber,
        trim: TrimPolicy,
        reevaluate_period_years: float = 0.25,
        tolerance: "ToleranceRegistry | None" = None,
    ) -> None:
        self.filesystem = filesystem
        self.classifier = classifier
        self.placement = placement
        self.scrubber = scrubber
        self.trim = trim
        self.reevaluate_period_years = reevaluate_period_years
        #: optional per-app degradation-tolerance overrides (§4.2)
        self.tolerance = tolerance
        self._last_review: dict[int, float] = {}
        self.runs: list[DaemonRunReport] = []

    def run_once(self) -> DaemonRunReport:
        """Execute one daemon period at the file system's current time."""
        now = self.filesystem.now_years
        reviewed = 0
        moved = 0
        for record in list(self.filesystem.live_files()):
            last = self._last_review.get(record.file_id)
            due = last is None or (now - last) >= self.reevaluate_period_years
            if not due:
                continue
            hint = self.classifier.classify(record, now)
            if self.tolerance is not None:
                hint = self.tolerance.apply(record, hint)
            if self.placement.apply_hint(record, hint):
                moved += 1
            self._last_review[record.file_id] = now
            reviewed += 1
        spare_lpns = [
            lpn
            for record in self.filesystem.live_files()
            for lpn in record.extents
            if self.scrubber.monitor.ftl.stream_of(lpn) == self.scrubber.monitor.spare_stream
        ]
        scrub_report = self.scrubber.scrub(spare_lpns)
        trim_event = self.trim.enforce()
        report = DaemonRunReport(
            at_years=now,
            files_reviewed=reviewed,
            files_moved=moved,
            scrub=scrub_report,
            trim=trim_event,
        )
        self.runs.append(report)
        return report
