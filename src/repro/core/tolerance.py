"""Per-application degradation tolerance (§4.2's future-work hook).

"We will further investigate adjustments to existing file systems and
applications to allow additional file formats to be stored
approximately ... For example, a bank app is likely less tolerant to
degradation in its related files than a social media app."

This module implements that adjustment: applications declare a
:class:`ToleranceLevel` for the files they own (by path prefix), and the
declaration *overrides* the learned classifier in the safe direction
only:

* ``INTOLERANT`` (bank, auth, health): never demoted, whatever the model
  thinks -- a correctness contract, not a preference;
* ``TOLERANT`` (social caches, podcast downloads): demoted even at
  middling confidence -- the app re-fetches on damage anyway;
* ``DEFAULT``: the classifier decides (most apps).

Overrides tighten or relax the *demotion gate*; promotions (rescues)
are never blocked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.host.files import FileRecord
from repro.host.hints import Placement, PlacementHint

__all__ = ["ToleranceLevel", "ToleranceRegistry", "DEFAULT_DECLARATIONS"]


class ToleranceLevel(enum.Enum):
    """Degradation tolerance an application declares for its files."""

    INTOLERANT = "intolerant"
    DEFAULT = "default"
    TOLERANT = "tolerant"


@dataclass(frozen=True, slots=True)
class _Declaration:
    path_prefix: str
    level: ToleranceLevel
    app: str


#: Example declarations mirroring the paper's §4.2 illustration.
DEFAULT_DECLARATIONS: list[tuple[str, str, ToleranceLevel]] = [
    ("/data/bank/", "bank", ToleranceLevel.INTOLERANT),
    ("/data/auth/", "authenticator", ToleranceLevel.INTOLERANT),
    ("/data/health/", "health", ToleranceLevel.INTOLERANT),
    ("/cache/social/", "social", ToleranceLevel.TOLERANT),
    ("/cache/podcasts/", "podcasts", ToleranceLevel.TOLERANT),
]


class ToleranceRegistry:
    """Path-prefix registry of application tolerance declarations."""

    def __init__(self) -> None:
        self._declarations: list[_Declaration] = []

    def declare(self, path_prefix: str, app: str, level: ToleranceLevel) -> None:
        """Register a declaration; longest matching prefix wins."""
        if not path_prefix:
            raise ValueError("path_prefix must be non-empty")
        self._declarations.append(_Declaration(path_prefix, level, app))
        self._declarations.sort(key=lambda d: -len(d.path_prefix))

    @classmethod
    def with_defaults(cls) -> "ToleranceRegistry":
        """Registry pre-loaded with the §4.2 example declarations."""
        registry = cls()
        for prefix, app, level in DEFAULT_DECLARATIONS:
            registry.declare(prefix, app, level)
        return registry

    def level_for(self, record: FileRecord) -> ToleranceLevel:
        """Tolerance level for a file (longest-prefix match)."""
        for declaration in self._declarations:
            if record.path.startswith(declaration.path_prefix):
                return declaration.level
        return ToleranceLevel.DEFAULT

    def apply(self, record: FileRecord, hint: PlacementHint) -> PlacementHint:
        """Adjust a classifier hint per the owning app's declaration.

        INTOLERANT files are pinned to SYS with full confidence.
        TOLERANT files demote with full confidence (bypassing the
        conservatism gate) -- unless the hint was a promotion, which is
        always honoured.
        """
        level = self.level_for(record)
        if level is ToleranceLevel.DEFAULT:
            return hint
        if level is ToleranceLevel.INTOLERANT:
            return PlacementHint(hint.file_id, Placement.SYS, confidence=1.0)
        # TOLERANT: strengthen demotions; leave promotions alone
        if hint.placement is Placement.SPARE:
            return PlacementHint(hint.file_id, Placement.SPARE, confidence=1.0)
        return hint
