"""Data-loss fallback: trim capacity via auto-delete (§4.5).

"Under exceptionally write-intensive workloads some PLC flash blocks may
prematurely wear out, forcing SOS to trim the amount of data stored on
the device to retain functionality.  In this case SOS temporarily
transforms its data degradation scheme to automatically delete data ...
once enough space (e.g. 3% of capacity) has been freed, SOS will return
to perform regular data degradation only."

The policy watches the file system's view of (capacity-variant) device
capacity.  When live data no longer fits with the target headroom, it
deletes files in the order the auto-delete predictor ranks them (most
expendable first), stopping as soon as the headroom target is met.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.classify.auto_delete import AutoDeletePredictor
from repro.host.filesystem import FileSystem
from repro.obs import get_observer

__all__ = ["TrimMode", "TrimEvent", "TrimPolicy"]


class TrimMode(enum.Enum):
    """Current operating regime of the degradation scheme."""

    DEGRADATION_ONLY = "degradation_only"
    AUTO_DELETE = "auto_delete"


@dataclass(frozen=True, slots=True)
class TrimEvent:
    """Record of one auto-delete episode."""

    at_years: float
    files_deleted: int
    pages_freed: int
    capacity_pages: int


class TrimPolicy:
    """Auto-delete fallback triggered by capacity pressure.

    Parameters
    ----------
    filesystem:
        Host file system (capacity and deletion path).
    predictor:
        Deletion-likelihood ranking model.
    free_target:
        Fraction of capacity to keep free (paper's "e.g. 3%").
    """

    def __init__(
        self,
        filesystem: FileSystem,
        predictor: AutoDeletePredictor,
        free_target: float = 0.03,
    ) -> None:
        if not 0.0 < free_target < 1.0:
            raise ValueError("free_target must be in (0, 1)")
        self.filesystem = filesystem
        self.predictor = predictor
        self.free_target = free_target
        self.mode = TrimMode.DEGRADATION_ONLY
        self.events: list[TrimEvent] = []

    def headroom_pages_needed(self) -> int:
        """Pages that must be free to satisfy the target."""
        return int(self.filesystem.capacity_pages() * self.free_target)

    def under_pressure(self) -> bool:
        """Whether free space is below the target headroom."""
        return self.filesystem.free_pages() < self.headroom_pages_needed()

    def enforce(self) -> TrimEvent | None:
        """Check pressure; if triggered, auto-delete until the target holds.

        Returns the trim event, or None when no action was needed.  After
        a successful trim the mode returns to ``DEGRADATION_ONLY`` (the
        paper's "return to perform regular data degradation only").
        """
        if not self.under_pressure():
            self.mode = TrimMode.DEGRADATION_ONLY
            return None
        self.mode = TrimMode.AUTO_DELETE
        now = self.filesystem.now_years
        target = self.headroom_pages_needed()
        ranked = self.predictor.rank_for_deletion(
            list(self.filesystem.live_files()), now
        )
        files_deleted = 0
        pages_freed = 0
        for record, _p_delete in ranked:
            if self.filesystem.free_pages() >= target:
                break
            pages_freed += len(record.extents)
            self.filesystem.delete(record.path)
            files_deleted += 1
        event = TrimEvent(
            at_years=now,
            files_deleted=files_deleted,
            pages_freed=pages_freed,
            capacity_pages=self.filesystem.capacity_pages(),
        )
        self.events.append(event)
        get_observer().event(
            "auto_delete_fallback", t=now, files_deleted=files_deleted,
            pages_freed=pages_freed,
        )
        if self.filesystem.free_pages() >= target:
            self.mode = TrimMode.DEGRADATION_ONLY
        return event
