"""Cloud-backed repair store (§4.3).

"Many users backup data from personal devices in the cloud ... SOS can
opportunistically take advantage of such backups by amending overly
degraded local data copies through a cloud-backed copy.  However, SOS
does not inherently rely on the existence of such redundant copies."

The backup is modelled as a lossless page store covering only the LPNs of
files whose ``cloud_backed`` attribute is set.  Reachability is three
layers deep, because "the cloud is there" and "the cloud answers this
fetch" are different claims:

* a static ``available`` flag (offline device / no subscription --
  ablation A4);
* an *outage schedule*: (start, end) windows on the device's year clock
  during which no fetch succeeds (fault-injection plans generate these);
* a seeded per-fetch *transient failure* rate (flaky RPCs), which is what
  gives the scrubber's bounded-retry path something real to retry.

Fetch counts model the network cost of repairs; every failure mode has
its own counter so reports can say *why* repairs degraded to relocation.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["CloudBackup", "BackupStats"]


@dataclass(slots=True)
class BackupStats:
    """Cumulative backup activity."""

    #: distinct pages uploaded (first store of an LPN)
    pages_stored: int = 0
    #: re-uploads of an LPN already in the store
    pages_overwritten: int = 0
    pages_fetched: int = 0
    fetch_misses: int = 0
    #: fetches refused because the device was inside an outage window
    fetch_outage_failures: int = 0
    #: fetches that failed transiently (retry may succeed)
    fetch_transient_failures: int = 0


class CloudBackup:
    """Lossless reference copies of cloud-backed pages.

    Parameters
    ----------
    available:
        When False the store accepts uploads but serves no fetches
        (offline device / no backup subscription).
    outage_windows:
        ``(start_years, end_years)`` half-open intervals during which
        fetches fail; advance the clock with :meth:`advance_time`.
    transient_failure_rate:
        Per-fetch probability of a transient failure (seeded, so a run's
        failure sequence is reproducible given the same call order).
    seed:
        Seed of the transient-failure RNG.
    """

    def __init__(
        self,
        available: bool = True,
        outage_windows: Sequence[tuple[float, float]] = (),
        transient_failure_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1)")
        self.available = available
        self.outage_windows = tuple(outage_windows)
        self.transient_failure_rate = transient_failure_rate
        self.stats = BackupStats()
        self._pages: dict[int, bytes] = {}
        self._now_years = 0.0
        self._rng = random.Random(seed)

    # -- availability ------------------------------------------------------------

    def advance_time(self, now_years: float) -> None:
        """Move the backup's clock forward (monotonic, outage lookups)."""
        self._now_years = max(self._now_years, now_years)

    def in_outage(self) -> bool:
        """Whether the current time falls inside an outage window."""
        now = self._now_years
        return any(start <= now < end for start, end in self.outage_windows)

    def reachable(self) -> bool:
        """Whether a fetch could possibly succeed right now."""
        return self.available and not self.in_outage()

    # -- store/fetch ---------------------------------------------------------------

    def store_page(self, lpn: int, payload: bytes) -> None:
        """Upload a clean page copy (called at write time for backed files).

        Re-uploading an existing LPN counts as an overwrite, not a new
        stored page, so ``pages_stored`` tracks the store's footprint.
        """
        if lpn in self._pages:
            self.stats.pages_overwritten += 1
        else:
            self.stats.pages_stored += 1
        self._pages[lpn] = bytes(payload)

    def fetch_page(self, lpn: int) -> bytes | None:
        """Retrieve the clean copy, or None if absent/unreachable/flaky."""
        if not self.available:
            return None
        if self.in_outage():
            self.stats.fetch_outage_failures += 1
            return None
        payload = self._pages.get(lpn)
        if payload is None:
            self.stats.fetch_misses += 1
            return None
        if (
            self.transient_failure_rate > 0.0
            and self._rng.random() < self.transient_failure_rate
        ):
            self.stats.fetch_transient_failures += 1
            return None
        self.stats.pages_fetched += 1
        return payload

    def forget_page(self, lpn: int) -> None:
        """Drop a page (file deleted)."""
        self._pages.pop(lpn, None)

    def covered(self, lpn: int) -> bool:
        """Whether a clean copy exists (regardless of availability)."""
        return lpn in self._pages

    def __len__(self) -> int:
        return len(self._pages)
