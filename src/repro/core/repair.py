"""Cloud-backed repair store (§4.3).

"Many users backup data from personal devices in the cloud ... SOS can
opportunistically take advantage of such backups by amending overly
degraded local data copies through a cloud-backed copy.  However, SOS
does not inherently rely on the existence of such redundant copies."

The backup is modelled as a lossless page store covering only the LPNs of
files whose ``cloud_backed`` attribute is set, with an availability flag
so experiments can run with and without cloud connectivity (ablation A4).
Fetch counts model the network cost of repairs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CloudBackup", "BackupStats"]


@dataclass(slots=True)
class BackupStats:
    """Cumulative backup activity."""

    pages_stored: int = 0
    pages_fetched: int = 0
    fetch_misses: int = 0


class CloudBackup:
    """Lossless reference copies of cloud-backed pages.

    Parameters
    ----------
    available:
        When False the store accepts uploads but serves no fetches
        (offline device / no backup subscription).
    """

    def __init__(self, available: bool = True) -> None:
        self.available = available
        self.stats = BackupStats()
        self._pages: dict[int, bytes] = {}

    def store_page(self, lpn: int, payload: bytes) -> None:
        """Upload a clean page copy (called at write time for backed files)."""
        self._pages[lpn] = bytes(payload)
        self.stats.pages_stored += 1

    def fetch_page(self, lpn: int) -> bytes | None:
        """Retrieve the clean copy, or None if absent/unavailable."""
        if not self.available:
            return None
        payload = self._pages.get(lpn)
        if payload is None:
            self.stats.fetch_misses += 1
            return None
        self.stats.pages_fetched += 1
        return payload

    def forget_page(self, lpn: int) -> None:
        """Drop a page (file deleted)."""
        self._pages.pop(lpn, None)

    def covered(self, lpn: int) -> bool:
        """Whether a clean copy exists (regardless of availability)."""
        return lpn in self._pages

    def __len__(self) -> int:
        return len(self._pages)
