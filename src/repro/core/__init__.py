"""SOS core: the paper's contribution (§4).

Partition construction and density arithmetic, classifier-driven
placement, degradation forecasting, preemptive scrubbing, cloud-backed
repair, the auto-delete trim fallback, the periodic daemon, and the
:class:`SOSDevice` facade tying them together.
"""

from .config import SOSConfig, default_config
from .daemon import ClassifierDaemon, DaemonRunReport
from .degradation import DegradationMonitor, PageForecast
from .partitions import (
    PartitionedDevice,
    build_partitions,
    capacity_gain_over,
    density_gain,
)
from .placement import PlacementEngine, PlacementStats
from .repair import BackupStats, CloudBackup
from .report import SustainabilityReport, build_report, render_report
from .scrubber import Scrubber, ScrubReport
from .tolerance import DEFAULT_DECLARATIONS, ToleranceLevel, ToleranceRegistry
from .sos_device import DeviceSnapshot, SOSDevice
from .trim_policy import TrimEvent, TrimMode, TrimPolicy

__all__ = [
    "SOSConfig",
    "default_config",
    "ClassifierDaemon",
    "DaemonRunReport",
    "DegradationMonitor",
    "PageForecast",
    "PartitionedDevice",
    "build_partitions",
    "capacity_gain_over",
    "density_gain",
    "PlacementEngine",
    "PlacementStats",
    "BackupStats",
    "CloudBackup",
    "SustainabilityReport",
    "build_report",
    "render_report",
    "Scrubber",
    "ScrubReport",
    "DEFAULT_DECLARATIONS",
    "ToleranceLevel",
    "ToleranceRegistry",
    "DeviceSnapshot",
    "SOSDevice",
    "TrimEvent",
    "TrimMode",
    "TrimPolicy",
]
