"""Placement engine: applies classifier hints to file extents.

The glue between §4.4's classifier and §4.2's partitions.  New data lands
on SYS (pseudo-QLC) by default; once the classifier deems a file
non-critical with sufficient confidence, every page of the file is
relocated to SPARE.  Promotions (SPARE -> SYS) happen when a re-evaluation
raises a file's criticality -- user preferences "tend to change over
time" (§4.4) -- or when the scrubber rescues degraded-but-valuable data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.block_layer import BlockLayer
from repro.host.files import FileRecord
from repro.host.hints import Placement, PlacementHint

__all__ = ["PlacementEngine", "PlacementStats"]


@dataclass(slots=True)
class PlacementStats:
    """Cumulative placement activity."""

    demotions: int = 0
    promotions: int = 0
    pages_moved: int = 0
    hints_ignored_low_confidence: int = 0
    #: demotions deferred because SPARE lacked room (retried next review)
    hints_deferred_no_room: int = 0


class PlacementEngine:
    """Applies placement hints to files through the block layer.

    Parameters
    ----------
    block_layer:
        Host block layer with sticky per-LPN placement.
    min_demote_confidence:
        Hints demoting to SPARE below this confidence are ignored --
        a second conservative gate on top of the classifier threshold.
    """

    def __init__(self, block_layer: BlockLayer, min_demote_confidence: float = 0.6) -> None:
        self.block_layer = block_layer
        self.min_demote_confidence = min_demote_confidence
        self.stats = PlacementStats()
        self._file_placement: dict[int, Placement] = {}

    def placement_of(self, file: FileRecord) -> Placement:
        """Current placement of a file (default SYS)."""
        return self._file_placement.get(file.file_id, Placement.SYS)

    def apply_hint(self, file: FileRecord, hint: PlacementHint) -> bool:
        """Apply one hint; returns True when pages actually moved."""
        if hint.file_id != file.file_id:
            raise ValueError("hint/file mismatch")
        current = self.placement_of(file)
        if hint.placement is current:
            return False
        if (
            hint.placement is Placement.SPARE
            and hint.confidence < self.min_demote_confidence
        ):
            self.stats.hints_ignored_low_confidence += 1
            return False
        if hint.placement is Placement.SPARE and not self._spare_has_room(
            len(file.extents)
        ):
            self.stats.hints_deferred_no_room += 1
            return False
        for lpn in file.extents:
            self.block_layer.relocate(lpn, hint.placement)
            self.stats.pages_moved += 1
        self._file_placement[file.file_id] = hint.placement
        if hint.placement is Placement.SPARE:
            self.stats.demotions += 1
        else:
            self.stats.promotions += 1
        return True

    def _spare_has_room(self, pages_needed: int) -> bool:
        """Whether SPARE can absorb a demotion without starving its GC.

        Keeps one erase block's worth of pages beyond the GC reserve so
        the stream never deadlocks mid-relocation.
        """
        ftl = self.block_layer.ftl
        spare = self.block_layer.spare_stream
        capacity = ftl.stream_capacity_pages(spare)
        live = ftl.stream_live_pages(spare)
        reserve_blocks = ftl.stream(spare).config.gc_free_block_threshold + 2
        reserve = reserve_blocks * ftl.chip.geometry.pages_per_block
        return capacity - live - reserve >= pages_needed

    def promote(self, file: FileRecord) -> None:
        """Force a file back to SYS (scrubber rescue path)."""
        self.apply_hint(
            file, PlacementHint(file.file_id, Placement.SYS, confidence=1.0)
        )

    def forget(self, file: FileRecord) -> None:
        """Drop placement state for a deleted file."""
        self._file_placement.pop(file.file_id, None)

    def spare_files(self, files) -> list[FileRecord]:
        """Subset of ``files`` currently placed on SPARE."""
        return [f for f in files if self.placement_of(f) is Placement.SPARE]
