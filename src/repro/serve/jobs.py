"""Job abstraction: specs, journaled records, and the execution core.

A *job* is the serving-layer unit of work -- the refactoring target the
gateway forced on :func:`repro.runner.sweep.run_sweep` and
:func:`repro.fleet.run.run_fleet`: both now expose cancellation
(``should_stop``) and progress hooks, so one :func:`execute_job` call
can drive either engine under a scheduler that needs to stop, observe,
and resume them.

Three pieces live here:

* :class:`JobSpec` -- a validated, plain-JSON description of what to
  run: a ``population`` job (a :class:`~repro.fleet.plan.FleetPlan`)
  or a ``sweep`` job over a *registered* point function (clients name
  functions from :data:`SWEEP_POINT_FNS`; the wire never carries code).
  A spec's identity is a stable hash of (client, kind, params), so
  resubmitting the same work re-attaches to the same job -- and, below
  it, the same :class:`~repro.runner.cache.ResultCache` entries.
* :class:`JobRecord`/:class:`JobStore` -- the crash journal.  Every
  state transition (queued -> running -> done/failed/cancelled) is an
  atomic write-then-rename of one JSON file, so a gateway killed at any
  instant restarts into a consistent picture: terminal jobs keep their
  results, interrupted jobs are re-queued, and their sweeps resume from
  whatever points the result cache already holds.
* :func:`execute_job` -- the blocking execution core the scheduler runs
  in a worker thread: builds the sweep/fleet, runs it ``keep_going`` so
  partial failures degrade to structured errors instead of sinking the
  job, and reduces the outcome to a plain JSON-able result payload.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.chaos import crash_point, get_fs
from repro.obs import get_observer
from repro.runner.cache import DURABILITY_LEVELS, stable_key

_LOG = logging.getLogger("repro.serve.jobs")

__all__ = [
    "JOB_STATES",
    "SWEEP_POINT_FNS",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "JobStore",
    "execute_job",
    "spec_units",
]

_RECORD_SCHEMA = "repro.serve.job/v1"

#: every state a job can be in; ``queued`` and ``running`` are the
#: non-terminal ones a restart re-queues
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Point functions a ``sweep`` job may name.  A registry -- never a
#: dotted path off the wire -- so a client cannot make worker processes
#: import arbitrary modules.  The faultfns entries are deliberate:
#: they are the fault-injection doubles the robustness tests (and any
#: operator rehearsing failure drills) drive through a live gateway.
SWEEP_POINT_FNS: dict[str, str] = {
    "lifetime": "repro.runner.points:lifetime_point",
    "population_batch": "repro.runner.points:population_batch_point",
    "ftl_population": "repro.runner.points:ftl_population_point",
    "flaky": "repro.runner.faultfns:flaky_point",
    "crash": "repro.runner.faultfns:crash_point",
    "sleepy": "repro.runner.faultfns:sleepy_point",
}

_MAX_SWEEP_GRID = 10_000
_MAX_DEVICES = 10_000_000


def _resolve_point_fn(name: str) -> Callable[[dict, int], Any]:
    import importlib

    target = SWEEP_POINT_FNS[name]
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True, slots=True)
class JobSpec:
    """Validated description of one job; plain JSON end to end."""

    client: str
    kind: str
    params: dict

    @classmethod
    def from_wire(cls, payload: Any) -> "JobSpec":
        """Validate an untrusted submission body into a spec.

        Raises ``ValueError`` with a client-presentable message; the
        gateway maps that to a 400.
        """
        if not isinstance(payload, dict):
            raise ValueError("submission body must be a JSON object")
        client = payload.get("client")
        if not isinstance(client, str) or not client or len(client) > 128:
            raise ValueError("'client' must be a non-empty string (<= 128 chars)")
        kind = payload.get("kind")
        params = payload.get("params")
        if not isinstance(params, dict):
            raise ValueError("'params' must be a JSON object")
        if kind == "population":
            params = cls._validate_population(params)
        elif kind == "sweep":
            params = cls._validate_sweep(params)
        else:
            raise ValueError("'kind' must be 'population' or 'sweep'")
        spec = cls(client=client, kind=kind, params=params)
        # a spec must be cache-keyable by construction (job identity and
        # every sweep point key hang off this)
        spec.job_id()
        return spec

    @staticmethod
    def _validate_population(params: dict) -> dict:
        devices = params.get("devices")
        if not isinstance(devices, int) or not 1 <= devices <= _MAX_DEVICES:
            raise ValueError(f"'devices' must be an int in [1, {_MAX_DEVICES}]")
        days = params.get("days", 365)
        if not isinstance(days, int) or not 1 <= days <= 36500:
            raise ValueError("'days' must be an int in [1, 36500]")
        out = {
            "devices": devices,
            "days": days,
            "capacity_gb": float(params.get("capacity_gb", 64.0)),
            "seed": int(params.get("seed", 0)),
            "build": str(params.get("build", "tlc_baseline")),
            "shard_size": int(params.get("shard_size", 0)) or min(devices, 50),
            "chunk": int(params.get("chunk", 50)),
            "exact_cap": int(params.get("exact_cap", 100_000)),
        }
        if out["shard_size"] < 1 or out["chunk"] < 1:
            raise ValueError("'shard_size' and 'chunk' must be >= 1")
        if out["capacity_gb"] <= 0:
            raise ValueError("'capacity_gb' must be positive")
        if params.get("faults") is not None:
            faults = params["faults"]
            if not isinstance(faults, dict) or not all(
                isinstance(k, str) and isinstance(v, (int, float))
                for k, v in faults.items()
            ):
                raise ValueError("'faults' must map fault names to rates")
            out["faults"] = {k: float(v) for k, v in sorted(faults.items())}
        fidelity = params.get("fidelity", "epoch")
        if fidelity not in ("epoch", "ftl"):
            raise ValueError("'fidelity' must be 'epoch' or 'ftl'")
        if fidelity != "epoch":
            # key present only when non-default, mirroring
            # FleetPlan.shard_grid: epoch job ids stay stable
            if out.get("faults"):
                raise ValueError("fault injection is epoch-fidelity only")
            out["fidelity"] = fidelity
        return out

    @staticmethod
    def _validate_sweep(params: dict) -> dict:
        fn = params.get("fn")
        if fn not in SWEEP_POINT_FNS:
            raise ValueError(
                f"'fn' must be one of {sorted(SWEEP_POINT_FNS)}, got {fn!r}"
            )
        grid = params.get("grid")
        if (
            not isinstance(grid, list)
            or not grid
            or len(grid) > _MAX_SWEEP_GRID
            or not all(isinstance(p, dict) for p in grid)
        ):
            raise ValueError(
                f"'grid' must be a non-empty list of <= {_MAX_SWEEP_GRID} "
                "parameter objects"
            )
        return {
            "fn": fn,
            "grid": grid,
            "base_seed": int(params.get("base_seed", 0)),
        }

    def job_id(self) -> str:
        """Stable identity: same client + same work = same job."""
        return "j" + stable_key(
            {"client": self.client, "kind": self.kind, "params": self.params}
        )[:16]

    def units(self) -> int:
        return spec_units(self)

    def to_dict(self) -> dict:
        return {"client": self.client, "kind": self.kind, "params": self.params}


def spec_units(spec: JobSpec) -> int:
    """Quota charge for one job: devices or grid points, never "1 job"."""
    if spec.kind == "population":
        return int(spec.params["devices"])
    return len(spec.params["grid"])


@dataclass(slots=True)
class JobRecord:
    """One job's journaled lifecycle."""

    spec: JobSpec
    job_id: str
    state: str = "queued"
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: times the gateway has (re)started executing this job, across
    #: restarts -- distinct from the sweep-level per-point retries
    attempts: int = 0
    result: dict | None = None
    error: str | None = None
    #: in-memory progress feed {shards_done, shards_total, devices_done};
    #: journaled on state transitions only (a restart resets it, the
    #: result cache -- not this field -- carries resumed work)
    progress: dict = field(default_factory=dict)

    @classmethod
    def fresh(cls, spec: JobSpec, now: float | None = None) -> "JobRecord":
        now = time.time() if now is None else now
        return cls(
            spec=spec, job_id=spec.job_id(), submitted_at=now, updated_at=now
        )

    def to_dict(self) -> dict:
        return {
            "schema": _RECORD_SCHEMA,
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "progress": self.progress,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        if data.get("schema") != _RECORD_SCHEMA:
            raise ValueError(f"not a job record: schema {data.get('schema')!r}")
        if data.get("state") not in JOB_STATES:
            raise ValueError(f"unknown job state {data.get('state')!r}")
        spec_data = data["spec"]
        spec = JobSpec(
            client=spec_data["client"],
            kind=spec_data["kind"],
            params=spec_data["params"],
        )
        return cls(
            spec=spec,
            job_id=data["job_id"],
            state=data["state"],
            submitted_at=data["submitted_at"],
            updated_at=data["updated_at"],
            attempts=data.get("attempts", 0),
            result=data.get("result"),
            error=data.get("error"),
            progress=data.get("progress") or {},
        )

    def public_view(self) -> dict:
        """The wire shape of a job for status endpoints."""
        view = self.to_dict()
        del view["schema"]
        return view


class JobStore:
    """Crash journal: one atomically replaced JSON file per job.

    The write protocol is the result cache's: serialize to a temp file
    in the same directory, then replace -- a reader sees either the old
    record or the new one, never a torn hybrid.  Hardened the same way
    the cache is:

    * a file that fails to parse (hand-edited, disk-torn despite the
      rename, written by a future schema) is **quarantined once** to
      ``corrupt/``, counted, and warned about -- never fatal, and never
      re-counted on every restart, because the move takes it out of the
      journal glob for good;
    * a **failed save degrades, it does not kill**: the record stays
      authoritative in memory, the failure is counted and latches the
      ``degraded`` flag (which the gateway folds into ``/healthz``
      shedding), and the next successful save clears it -- a full disk
      must not take down a gateway that is still serving status and
      cached results;
    * writes route through the :mod:`repro.chaos` fs layer and carry
      the ``journal.save.*`` crash points, so the crash matrix can kill
      a gateway mid-append and assert recovery.
    """

    #: subdirectory unparseable journal entries are moved to
    CORRUPT_DIR = "corrupt"

    def __init__(
        self,
        root: str | Path,
        *,
        durability: str = "rename",
        fs=None,
    ) -> None:
        if durability not in DURABILITY_LEVELS:
            raise ValueError(
                f"durability must be one of {DURABILITY_LEVELS}, got {durability!r}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.fs = fs if fs is not None else get_fs()
        #: unparseable journal entries quarantined (counted once each)
        self.corrupt_skipped = 0
        #: journal writes that failed and were absorbed
        self.save_failures = 0
        #: True while the last save failed; clears on the next success
        self.degraded = False

    def _path(self, job_id: str) -> Path:
        if not job_id.replace("-", "").isalnum():
            raise ValueError(f"malformed job id {job_id!r}")
        return self.root / f"{job_id}.json"

    def save(self, record: JobRecord) -> bool:
        """Journal one record; False when the write was absorbed.

        Degrade-don't-die: an ``OSError`` (disk full, I/O error) is
        counted and latched, the in-memory record stays authoritative,
        and the gateway keeps running -- it sheds via health instead of
        crashing.  Non-I/O errors (unserializable record) still raise;
        they are bugs.
        """
        record.updated_at = time.time()
        path = self._path(record.job_id)
        payload = json.dumps(
            record.to_dict(), sort_keys=True, default=float
        ).encode("utf-8")
        try:
            if self.durability == "none":
                self._write_in_place(path, payload)
            else:
                self._write_rename(record.job_id, path, payload)
        except OSError as err:
            self.save_failures += 1
            self.degraded = True
            get_observer().count("journal.save_failures")
            _LOG.warning(
                "job journal %s: absorbed failed save of %s (%s); record "
                "stays in memory, gateway degrades via health",
                self.root, record.job_id, err,
            )
            return False
        self.degraded = False
        return True

    def _write_in_place(self, path: Path, payload: bytes) -> None:
        fs = self.fs
        with fs.open_write(path) as fh:
            fs.write(fh, payload)

    def _write_rename(self, job_id: str, path: Path, payload: bytes) -> None:
        fs = self.fs
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f"{job_id}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                fs.write(handle, payload)
                if self.durability == "fsync":
                    fs.fsync(handle)
            crash_point("journal.save.pre_rename")
            fs.replace(tmp_name, path)
            if self.durability == "fsync":
                fs.fsync_dir(self.root)
            crash_point("journal.save.post_rename")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load(self, job_id: str) -> JobRecord | None:
        path = self._path(job_id)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return JobRecord.from_dict(data)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
            self._quarantine(path, err)
            return None

    def _quarantine(self, path: Path, err: Exception) -> None:
        """Move one unparseable journal entry aside, once, loudly."""
        dest = self.root / self.CORRUPT_DIR / path.name
        try:
            dest.parent.mkdir(exist_ok=True)
            os.replace(path, dest)
        except OSError:
            dest = path  # cannot move; at least it is counted this run
        self.corrupt_skipped += 1
        get_observer().count("journal.corrupt_skipped")
        _LOG.warning(
            "quarantined corrupt journal entry %s (%s) -> %s",
            path.name, err, dest,
        )

    def load_all(self) -> list[JobRecord]:
        """Every parseable record, oldest submission first."""
        records = []
        for path in sorted(self.root.glob("j*.json")):
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.submitted_at, r.job_id))
        return records

    def recover(self) -> list[JobRecord]:
        """Re-queue every interrupted job; returns them oldest first.

        Called once at gateway startup: jobs the previous process left
        ``queued`` or ``running`` are flipped back to ``queued`` (and
        journaled so) -- their sweeps will re-run against the shared
        result cache, so completed points cost nothing the second time.
        """
        interrupted = []
        for record in self.load_all():
            if record.state in TERMINAL_STATES:
                continue
            record.state = "queued"
            record.progress = {}
            self.save(record)
            interrupted.append(record)
        return interrupted


def execute_job(
    record: JobRecord,
    *,
    cache_dir: str | Path,
    jobs: int = 2,
    retries: int = 2,
    timeout_s: float | None = None,
    should_stop: Callable[[], bool] | None = None,
    on_progress: Callable[[dict], None] | None = None,
    durability: str = "rename",
) -> dict:
    """Run one job to completion; blocking (the scheduler threads it).

    Always ``keep_going``: a service degrades a job with failed points
    into a partial result plus structured errors -- the caller decides
    whether partial is acceptable, not the worker pool.  The returned
    payload is plain JSON-able data, ready for the journal and the
    status endpoint.

    Raises :class:`~repro.runner.sweep.SweepCancelled` when
    ``should_stop`` fires (the scheduler marks the job cancelled) and
    lets any other exception propagate as a job failure.
    """
    spec = record.spec
    if spec.kind == "population":
        return _execute_population(
            spec, cache_dir, jobs, retries, timeout_s, should_stop, on_progress,
            durability,
        )
    return _execute_sweep(
        spec, cache_dir, jobs, retries, timeout_s, should_stop, on_progress,
        durability,
    )


def _point_errors(errors) -> list[dict]:
    return [
        {
            "index": e.index,
            "kind": e.kind,
            "message": e.message,
            "attempts": e.attempts,
        }
        for e in errors
    ]


def _execute_population(
    spec: JobSpec,
    cache_dir: str | Path,
    jobs: int,
    retries: int,
    timeout_s: float | None,
    should_stop: Callable[[], bool] | None,
    on_progress: Callable[[dict], None] | None,
    durability: str,
) -> dict:
    from repro.fleet import FleetPlan, run_fleet

    p = spec.params
    plan = FleetPlan(
        n_devices=p["devices"],
        days=p["days"],
        capacity_gb=p["capacity_gb"],
        seed=p["seed"],
        shard_size=p["shard_size"],
        chunk=p["chunk"],
        build=p["build"],
        exact_cap=p["exact_cap"],
        faults=tuple(sorted(p["faults"].items())) if p.get("faults") else None,
        fidelity=p.get("fidelity", "epoch"),
    )

    def report(done: int, total: int, devices: int) -> None:
        if on_progress is not None:
            on_progress(
                {"shards_done": done, "shards_total": total, "devices_done": devices}
            )

    fleet = run_fleet(
        plan,
        jobs=jobs,
        cache_dir=cache_dir,
        retries=retries,
        timeout_s=timeout_s,
        keep_going=True,
        # fixed sweep name: identical population specs -- same plan, any
        # client, any restart -- share shard cache entries byte-for-byte
        name="serve-population",
        should_stop=should_stop,
        on_shard=report,
        durability=durability,
    )
    result = fleet.summary()
    result["errors"] = _point_errors(fleet.sweep.errors)
    result["cached_shards"] = fleet.sweep.cached_count
    result["pool_rebuilds"] = fleet.sweep.pool_rebuilds
    result["retry_attempts"] = fleet.sweep.retry_attempts
    return result


def _execute_sweep(
    spec: JobSpec,
    cache_dir: str | Path,
    jobs: int,
    retries: int,
    timeout_s: float | None,
    should_stop: Callable[[], bool] | None,
    on_progress: Callable[[dict], None] | None,
    durability: str,
) -> dict:
    from repro.runner.sweep import Sweep, run_sweep

    p = spec.params
    if p["fn"] == "crash":
        # crash points os._exit their process; serially that process is
        # the gateway itself -- always contain them in a worker pool
        jobs = max(jobs, 2)
    sweep = Sweep(
        name=f"serve-sweep-{p['fn']}",
        fn=_resolve_point_fn(p["fn"]),
        grid=tuple(p["grid"]),
        base_seed=p["base_seed"],
    )
    done = 0

    def on_point(point) -> None:
        nonlocal done
        done += 1
        if on_progress is not None:
            on_progress({"shards_done": done, "shards_total": len(sweep.grid)})

    outcome = run_sweep(
        sweep,
        jobs=jobs,
        cache_dir=cache_dir,
        retries=retries,
        timeout_s=timeout_s,
        keep_going=True,
        on_point=on_point,
        should_stop=should_stop,
        durability=durability,
    )
    result = {
        "points": len(outcome.points),
        "failed": outcome.failed_count,
        "complete": outcome.ok,
        "cached": outcome.cached_count,
        "pool_rebuilds": outcome.pool_rebuilds,
        "retry_attempts": outcome.retry_attempts,
        "wall_s": outcome.total_wall_s,
        "errors": _point_errors(outcome.errors),
        "storage": dict(outcome.storage),
    }
    # point values ride along only when they are plain data (the test
    # doubles return dicts; simulation objects summarize elsewhere)
    try:
        values = [p.value for p in outcome.points]
        json.dumps(values)
    except TypeError:
        pass
    else:
        result["values"] = values
    return result
