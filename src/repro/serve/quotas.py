"""Per-client quotas: concurrency caps and sliding-window work budgets.

Rate limiting (:mod:`repro.serve.limiter`) bounds *request* arrival;
quotas bound *work*.  A fleet job for a million devices and a lifetime
sweep of four points are wildly different loads that both arrive as one
small POST, so admission charges each job its **unit** count -- devices
for population jobs, grid points for sweeps -- against two per-client
budgets:

* ``max_concurrent`` -- jobs a client may have queued-or-running at
  once (reserved at admission, released at any terminal state);
* ``max_units_per_window`` -- units a client may admit within a sliding
  ``window_s`` seconds, so a tenant cannot monopolize the pool by
  trickling huge jobs one at a time.

Both checks answer rejects with a concrete ``retry_after``: when the
oldest window entry expires (window budget) or ``None``/heuristic for
the concurrency cap (free capacity depends on job completion, which the
manager cannot foresee -- it reports the configured poll hint instead).
The clock is injected for deterministic tests, mirroring the limiter.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = ["ClientQuota", "Admission", "QuotaManager"]


@dataclass(frozen=True, slots=True)
class ClientQuota:
    """Budget shape for one client (or the default for everyone)."""

    max_concurrent: int = 4
    max_units_per_window: int = 1_000_000
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_units_per_window < 1:
            raise ValueError("max_units_per_window must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


@dataclass(frozen=True, slots=True)
class Admission:
    """Outcome of one admission check."""

    ok: bool
    reason: str = ""
    retry_after_s: float = 0.0


class QuotaManager:
    """Tracks every client's reservations against its quota."""

    #: retry hint for concurrency-cap rejects: capacity frees when some
    #: running job finishes, which admission cannot predict -- so the
    #: hint is "poll about this often", not an exact promise
    CONCURRENCY_RETRY_HINT_S = 1.0

    def __init__(
        self,
        default: ClientQuota | None = None,
        overrides: dict[str, ClientQuota] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default if default is not None else ClientQuota()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._running: dict[str, int] = {}
        #: per-client (admitted_at, units) entries, oldest first
        self._window: dict[str, deque[tuple[float, int]]] = {}

    def quota_for(self, client: str) -> ClientQuota:
        return self.overrides.get(client, self.default)

    def _prune(self, client: str, now: float) -> deque[tuple[float, int]]:
        window = self._window.setdefault(client, deque())
        horizon = now - self.quota_for(client).window_s
        while window and window[0][0] <= horizon:
            window.popleft()
        return window

    def admit(self, client: str, units: int) -> Admission:
        """Check-and-reserve: a True answer has already charged the quota.

        ``units`` is the job's work size (devices / grid points); a
        single job larger than the whole window budget is rejected
        outright (``"job exceeds window budget"``) -- no amount of
        waiting would ever admit it, so no retry-after is offered.
        """
        if units < 1:
            raise ValueError("units must be >= 1")
        quota = self.quota_for(client)
        now = self._clock()
        if units > quota.max_units_per_window:
            return Admission(
                False,
                f"job of {units} units exceeds the per-window budget of "
                f"{quota.max_units_per_window}",
            )
        if self._running.get(client, 0) >= quota.max_concurrent:
            return Admission(
                False,
                f"client has {self._running[client]} of {quota.max_concurrent} "
                "jobs in flight",
                self.CONCURRENCY_RETRY_HINT_S,
            )
        window = self._prune(client, now)
        used = sum(u for _, u in window)
        if used + units > quota.max_units_per_window:
            # the budget frees as window entries age out; walk forward to
            # the exact admission time for this unit count
            needed = used + units - quota.max_units_per_window
            freed = 0
            retry_at = now
            for stamp, entry_units in window:
                freed += entry_units
                retry_at = stamp + quota.window_s
                if freed >= needed:
                    break
            return Admission(
                False,
                f"window budget exhausted ({used}/{quota.max_units_per_window} "
                f"units used)",
                max(0.0, retry_at - now),
            )
        window.append((now, units))
        self._running[client] = self._running.get(client, 0) + 1
        return Admission(True)

    def release(self, client: str) -> None:
        """Return one concurrency slot (job reached a terminal state).

        Window units are **not** refunded -- the window bounds admitted
        work per interval, finished or not, or a tight loop of tiny
        instantly-finishing jobs would evade it entirely.
        """
        count = self._running.get(client, 0)
        if count <= 1:
            self._running.pop(client, None)
        else:
            self._running[client] = count - 1

    def running(self, client: str) -> int:
        return self._running.get(client, 0)

    def window_units(self, client: str) -> int:
        return sum(u for _, u in self._prune(client, self._clock()))
