"""Gateway health: rolling signals -> one admit/shed decision.

The monitor owns the gateway's :class:`~repro.obs.MetricsRegistry` --
queue-depth and running-job gauges, admission/shed/completion counters,
pool-rebuild and retry counts fed from each finished sweep's stats --
and derives a single boolean from it: *is this gateway healthy enough
to take on more work?*

The philosophy mirrors the paper's storage design: degrade gracefully,
and predictably.  When the rolling error rate or the pool-rebuild rate
crosses its threshold, the gateway does not die or start timing out
randomly -- it flips unhealthy, **stops admitting new jobs** (503 with
a retry hint), finishes what is in flight, and keeps serving status
and cached-result queries, which cost nothing.  Health recovers the
same way it was lost: the rolling window ages bad outcomes out, and
admission resumes.

Everything here is synchronous, allocation-light, and injected-clock
deterministic, so the thresholds are unit-testable without a gateway.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.obs import MetricsRegistry

__all__ = ["HealthThresholds", "HealthMonitor"]


@dataclass(frozen=True, slots=True)
class HealthThresholds:
    """When does the gateway stop admitting?

    ``min_sample`` keeps one early failure from shedding a fresh
    gateway: the error-rate rule only arms once the rolling window has
    seen that many finished jobs.
    """

    #: rolling fraction of finished jobs that failed (0..1)
    max_error_rate: float = 0.5
    #: finished jobs the error-rate rule needs before it can trip
    min_sample: int = 4
    #: jobs the rolling window remembers
    window: int = 20
    #: worker-pool rebuilds (crashes/timeout kills) tolerated per window
    max_pool_rebuilds: int = 10
    #: shed new admissions while durable storage is degraded (result
    #: cache in ENOSPC passthrough, or the job journal absorbing failed
    #: saves) -- admitting work whose results cannot be persisted only
    #: burns compute to produce answers a restart forgets
    shed_on_storage_degraded: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.max_error_rate <= 1.0:
            raise ValueError("max_error_rate must be in (0, 1]")
        if self.min_sample < 1 or self.window < self.min_sample:
            raise ValueError("need window >= min_sample >= 1")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")


class HealthMonitor:
    """Rolling job outcomes + live gauges -> healthy/unhealthy."""

    def __init__(
        self,
        thresholds: HealthThresholds | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.thresholds = thresholds if thresholds is not None else HealthThresholds()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.started_at = clock()
        #: (ok, pool_rebuilds) per finished job, newest last
        self._recent: deque[tuple[bool, int]] = deque(maxlen=self.thresholds.window)
        #: latest finished job reported its result cache in passthrough
        self._cache_degraded = False
        #: the journal's degrade-don't-die latch, as last synced
        self._journal_degraded = False
        #: plain-data storage picture for the /healthz payload
        self._storage: dict = {}

    # -- feeds -----------------------------------------------------------------

    def job_finished(self, ok: bool, pool_rebuilds: int = 0, retries: int = 0) -> None:
        """Fold one finished job's outcome into the rolling window."""
        self._recent.append((bool(ok), int(pool_rebuilds)))
        self.registry.counter(
            "serve.jobs_done" if ok else "serve.jobs_failed"
        ).inc()
        if pool_rebuilds:
            self.registry.counter("serve.pool_rebuilds").inc(pool_rebuilds)
        if retries:
            self.registry.counter("serve.retry_attempts").inc(retries)

    def set_queue_depth(self, depth: int) -> None:
        self.registry.gauge("serve.queue_depth").set(depth)

    def set_running(self, running: int) -> None:
        self.registry.gauge("serve.running_jobs").set(running)

    def count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def storage_from_job(self, storage: dict | None) -> None:
        """Fold one finished job's cache storage report into health.

        Each job runs against its own :class:`ResultCache` handle, so
        the report's flags describe *current* disk conditions: a job
        whose cache hit ENOSPC flips ``cache_degraded`` on, and a later
        job storing cleanly flips it back off -- recovery is observed,
        not assumed.  Counters accumulate into the registry so the
        degradation history survives the latch clearing.
        """
        if not storage:
            return
        self._cache_degraded = bool(storage.get("passthrough"))
        for key in ("stores_dropped", "store_errors",
                    "corrupt_quarantined", "invalid_payloads"):
            amount = int(storage.get(key, 0))
            if amount:
                self.registry.counter(f"serve.cache_{key}").inc(amount)

    def sync_journal(self, store) -> None:
        """Pull the job journal's degradation state (gateway calls this
        before every health decision; the store is the source of truth)."""
        self._journal_degraded = bool(getattr(store, "degraded", False))
        self._storage["journal_save_failures"] = int(
            getattr(store, "save_failures", 0)
        )
        self._storage["journal_corrupt_skipped"] = int(
            getattr(store, "corrupt_skipped", 0)
        )

    # -- the decision ----------------------------------------------------------

    @property
    def error_rate(self) -> float:
        """Failure fraction over the rolling window (0.0 when unarmed)."""
        if len(self._recent) < self.thresholds.min_sample:
            return 0.0
        return sum(1 for ok, _ in self._recent if not ok) / len(self._recent)

    @property
    def recent_pool_rebuilds(self) -> int:
        return sum(rebuilds for _, rebuilds in self._recent)

    @property
    def storage_degraded(self) -> bool:
        """Durable storage cannot currently absorb new work's results."""
        return self._cache_degraded or self._journal_degraded

    @property
    def healthy(self) -> bool:
        if self.error_rate > self.thresholds.max_error_rate:
            return False
        if self.recent_pool_rebuilds > self.thresholds.max_pool_rebuilds:
            return False
        if self.thresholds.shed_on_storage_degraded and self.storage_degraded:
            return False
        return True

    def unhealthy_reasons(self) -> list[str]:
        reasons = []
        if self.error_rate > self.thresholds.max_error_rate:
            reasons.append(
                f"rolling error rate {self.error_rate:.2f} exceeds "
                f"{self.thresholds.max_error_rate:.2f} "
                f"over the last {len(self._recent)} job(s)"
            )
        if self.recent_pool_rebuilds > self.thresholds.max_pool_rebuilds:
            reasons.append(
                f"{self.recent_pool_rebuilds} worker-pool rebuilds in the "
                f"window exceed {self.thresholds.max_pool_rebuilds}"
            )
        if self.thresholds.shed_on_storage_degraded:
            if self._cache_degraded:
                reasons.append(
                    "result cache is in ENOSPC passthrough (disk full); "
                    "new results would not be persisted"
                )
            if self._journal_degraded:
                reasons.append(
                    "job journal is absorbing failed saves; new admissions "
                    "would not survive a restart"
                )
        return reasons

    # -- reporting -------------------------------------------------------------

    def report(self) -> dict:
        """The ``/healthz`` payload: decision, signals, metrics snapshot."""
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        return {
            "healthy": self.healthy,
            "reasons": self.unhealthy_reasons(),
            "uptime_s": self._clock() - self.started_at,
            "error_rate": self.error_rate,
            "window_jobs": len(self._recent),
            "recent_pool_rebuilds": self.recent_pool_rebuilds,
            "queue_depth": gauges.get("serve.queue_depth", 0),
            "running_jobs": gauges.get("serve.running_jobs", 0),
            "storage": {
                "degraded": self.storage_degraded,
                "cache_degraded": self._cache_degraded,
                "journal_degraded": self._journal_degraded,
                **self._storage,
            },
            "counters": counters,
        }
