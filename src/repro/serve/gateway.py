"""The simulation-as-a-service gateway: admission -> schedule -> serve.

One long-lived asyncio process fronting the whole coordinator stack.
A submission passes through four explicit gates, each with a distinct,
client-visible answer -- load is shed *predictably*, never by timing
out or buffering until the box falls over:

1. **dedup / re-attach** -- a spec's job id is a stable hash of
   (client, kind, params); resubmitting known work returns the existing
   job (done, running, or queued) without charging any budget.  This is
   the cache-hit fast path and it stays open even when unhealthy;
2. **health** -- an unhealthy gateway (rolling error rate or pool-crash
   rate over threshold) answers 503 + ``Retry-After`` and admits
   nothing new, while in-flight jobs drain normally;
3. **rate + quota** -- the per-client token bucket bounds submission
   *frequency*; the quota manager bounds *work* (concurrent jobs and
   devices/points per sliding window).  Both answer 429 with the exact
   or hinted ``Retry-After``;
4. **backpressure** -- the scheduler's queue is bounded; a full queue
   answers 429 rather than growing.

Endpoints (all JSON)::

    GET  /healthz           health decision + signals (503 when shedding)
    GET  /metrics           the gateway's metrics-registry snapshot
    POST /jobs              submit {client, kind, params}
    GET  /jobs              every journaled job, newest first
    GET  /jobs/<id>         one job's state/progress/result
    POST /jobs/<id>/cancel  cancel queued or running work

Restart story: journaled non-terminal jobs are re-queued on startup and
their sweeps resume against the shared result cache, so a SIGKILL'd
gateway converges to the same results it would have produced uninterrupted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import asyncio

from .health import HealthMonitor, HealthThresholds
from .jobs import JobRecord, JobSpec, JobStore
from .limiter import RateLimiter
from .protocol import ProtocolError, Request, read_request, write_response
from .quotas import ClientQuota, QuotaManager
from .scheduler import Scheduler

__all__ = ["GatewayConfig", "Gateway"]


@dataclass(slots=True)
class GatewayConfig:
    """Everything a gateway instance needs, in one plain bundle."""

    state_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off Gateway.address
    #: jobs executing at once (each gets its own worker pool)
    max_running: int = 2
    #: admitted-but-not-started jobs the queue will hold, all clients
    max_queue: int = 16
    #: worker processes per job's sweep
    job_workers: int = 2
    #: per-point retry budget handed to each job's sweep
    retries: int = 2
    #: per-point timeout handed to each job's sweep
    timeout_s: float | None = None
    #: durability rung for the job journal and every job's result cache
    #: (one of :data:`repro.runner.cache.DURABILITY_LEVELS`)
    durability: str = "rename"
    #: submissions per second a client may sustain...
    rate_per_s: float = 10.0
    #: ...and the burst a quiet client may save up
    burst: float = 20.0
    quota: ClientQuota = field(default_factory=ClientQuota)
    quota_overrides: dict[str, ClientQuota] = field(default_factory=dict)
    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    #: Retry-After hint on 503 shed and queue-full answers
    shed_retry_after_s: float = 5.0
    #: injectable clock for the limiter/quota/health arithmetic
    clock: Callable[[], float] = time.monotonic


class Gateway:
    """One gateway instance: build, ``await start()``, drive, ``stop()``."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        state = Path(config.state_dir)
        self.store = JobStore(state / "jobs", durability=config.durability)
        self.cache_dir = str(state / "cache")
        self.health = HealthMonitor(config.thresholds, clock=config.clock)
        self.limiter = RateLimiter(config.rate_per_s, config.burst, config.clock)
        self.quotas = QuotaManager(
            config.quota, config.quota_overrides, config.clock
        )
        self.scheduler = Scheduler(
            self.store,
            self.health,
            cache_dir=self.cache_dir,
            max_running=config.max_running,
            max_queue=config.max_queue,
            job_workers=config.job_workers,
            retries=config.retries,
            timeout_s=config.timeout_s,
            durability=config.durability,
            on_finish=self._job_finished,
        )
        #: records this process knows; the journal is the durable copy
        self._records: dict[str, JobRecord] = {}
        #: job ids holding a quota reservation (released exactly once)
        self._reserved: set[str] = set()
        self._server: asyncio.base_events.Server | None = None
        self.recovered: list[JobRecord] = []

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Recover the journal, start dispatching, bind the socket."""
        self.scheduler.start()
        self.recovered = self.store.recover()
        for record in self.recovered:
            # recovered jobs were admitted by a previous life; they
            # re-enter the queue above its bound rather than be dropped
            self._records[record.job_id] = record
            self.scheduler.offer(record, force=True)
            self.health.count("serve.jobs_recovered")
        for record in self.store.load_all():
            self._records.setdefault(record.job_id, record)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, cancel_running: bool = False) -> None:
        """Graceful shutdown: close the socket, then drain (or cancel)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop(cancel_running=cancel_running)

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                self.health.count("serve.requests")
                status, payload, headers = self._route(request)
            except ProtocolError as exc:
                self.health.count("serve.bad_requests")
                status, payload, headers = (
                    exc.status,
                    {"error": exc.message},
                    None,
                )
            except Exception as exc:  # noqa: BLE001 - connection must answer
                self.health.count("serve.internal_errors")
                status, payload, headers = 500, {"error": repr(exc)}, None
            await write_response(writer, status, payload, headers)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, request: Request) -> tuple[int, Any, dict | None]:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            self.health.sync_journal(self.store)
            report = self.health.report()
            if report["healthy"]:
                return 200, report, None
            return 503, report, {"retry-after": _fmt(self.config.shed_retry_after_s)}
        if path == "/metrics" and method == "GET":
            return 200, self.health.registry.snapshot(), None
        if path == "/jobs" and method == "POST":
            return self._submit(request)
        if path == "/jobs" and method == "GET":
            return self._list_jobs()
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method == "GET" and "/" not in rest:
                return self._job_view(rest)
            if method == "POST" and rest.endswith("/cancel"):
                return self._cancel(rest[: -len("/cancel")].rstrip("/"))
        if path in ("/healthz", "/metrics", "/jobs") or path.startswith("/jobs/"):
            return 405, {"error": f"{method} not allowed on {path}"}, None
        return 404, {"error": f"no route for {path}"}, None

    # -- admission -------------------------------------------------------------

    def _submit(self, request: Request) -> tuple[int, Any, dict | None]:
        try:
            spec = JobSpec.from_wire(request.json())
        except ValueError as exc:
            self.health.count("serve.rejected.invalid")
            return 400, {"error": str(exc)}, None
        job_id = spec.job_id()

        # gate 1: dedup / re-attach -- known work answers from the
        # journal (and, beneath it, the result cache), costing nothing;
        # this path stays open while the gateway is shedding
        existing = self._records.get(job_id) or self.store.load(job_id)
        if existing is not None:
            self._records[job_id] = existing
            self.health.count("serve.deduplicated")
            return 200, existing.public_view() | {"deduplicated": True}, None

        # gate 2: health -- an unhealthy gateway admits nothing new;
        # storage degradation (journal absorbing failed saves, caches in
        # ENOSPC passthrough) sheds here too: admitting work whose
        # results cannot be persisted only burns compute
        self.health.sync_journal(self.store)
        if not self.health.healthy:
            self.health.count("serve.shed.unhealthy")
            return (
                503,
                {
                    "error": "gateway is unhealthy; not admitting new jobs",
                    "reasons": self.health.unhealthy_reasons(),
                    "retry_after_s": self.config.shed_retry_after_s,
                },
                {"retry-after": _fmt(self.config.shed_retry_after_s)},
            )

        # gate 3a: per-client submission rate
        ok, retry_after = self.limiter.try_acquire(spec.client)
        if not ok:
            self.health.count("serve.shed.rate")
            return (
                429,
                {
                    "error": "rate limit exceeded",
                    "retry_after_s": retry_after,
                },
                {"retry-after": _fmt(retry_after)},
            )

        # gate 3b: per-client work quota (charges on success)
        admission = self.quotas.admit(spec.client, spec.units())
        if not admission.ok:
            self.health.count("serve.shed.quota")
            headers = (
                {"retry-after": _fmt(admission.retry_after_s)}
                if admission.retry_after_s > 0
                else None
            )
            return (
                429,
                {
                    "error": f"quota exceeded: {admission.reason}",
                    "retry_after_s": admission.retry_after_s,
                },
                headers,
            )

        # gate 4: bounded queue -- refuse, never buffer
        record = JobRecord.fresh(spec)
        accepted, reason = self.scheduler.offer(record)
        if not accepted:
            self.quotas.release(spec.client)  # undo gate 3b's reservation
            self.health.count("serve.shed.backpressure")
            return (
                429,
                {
                    "error": f"backpressure: {reason}",
                    "retry_after_s": self.config.shed_retry_after_s,
                },
                {"retry-after": _fmt(self.config.shed_retry_after_s)},
            )

        self._records[job_id] = record
        self._reserved.add(job_id)
        self.store.save(record)
        self.health.count("serve.admitted")
        return 202, record.public_view(), None

    def _job_finished(self, record: JobRecord) -> None:
        """Scheduler callback on any terminal state: release budgets."""
        if record.job_id in self._reserved:
            self._reserved.discard(record.job_id)
            self.quotas.release(record.spec.client)

    # -- queries ---------------------------------------------------------------

    def _list_jobs(self) -> tuple[int, Any, dict | None]:
        records = sorted(
            self._records.values(),
            key=lambda r: (r.submitted_at, r.job_id),
            reverse=True,
        )
        return (
            200,
            {
                "jobs": [
                    {
                        "job_id": r.job_id,
                        "client": r.spec.client,
                        "kind": r.spec.kind,
                        "state": r.state,
                        "submitted_at": r.submitted_at,
                        "progress": r.progress,
                    }
                    for r in records
                ]
            },
            None,
        )

    def _job_view(self, job_id: str) -> tuple[int, Any, dict | None]:
        record = self._records.get(job_id)
        if record is None:
            try:
                record = self.store.load(job_id)
            except ValueError:
                record = None
            if record is not None:
                self._records[job_id] = record
        if record is None:
            return 404, {"error": f"no job {job_id!r}"}, None
        return 200, record.public_view(), None

    def _cancel(self, job_id: str) -> tuple[int, Any, dict | None]:
        record = self._records.get(job_id)
        if record is None:
            return 404, {"error": f"no job {job_id!r}"}, None
        if record.state in ("done", "failed", "cancelled"):
            return 409, {"error": f"job is already {record.state}"}, None
        outcome = self.scheduler.cancel(job_id)
        if outcome is None:
            return 409, {"error": "job is not queued or running"}, None
        self.health.count("serve.cancelled")
        return 202, {"job_id": job_id, "cancel": outcome}, None


def _fmt(seconds: float) -> str:
    """Retry-After header value: whole seconds, at least 1."""
    return str(max(1, int(seconds + 0.999)))
