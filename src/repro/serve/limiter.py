"""Per-client token-bucket rate limiting for the gateway's front door.

A :class:`TokenBucket` is the classic leaky-abstraction-free version:
capacity ``burst`` tokens, refilled continuously at ``rate_per_s``.  A
request costs one token; an empty bucket answers with the **exact**
time until the next token exists, which the gateway surfaces as a
``Retry-After`` header -- rejected clients are told precisely when to
come back instead of guessing (and hammering).

The clock is injected (``clock=time.monotonic`` by default), so tests
drive buckets with a fake clock and the arithmetic below is exactly
reproducible: given the same request times, the same admits and the
same retry-after values come out, every run.  :class:`RateLimiter`
keeps one lazily created bucket per client id; clients never share
tokens, so one noisy tenant cannot starve the others' buckets.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """Continuous-refill token bucket with exact retry-after arithmetic."""

    __slots__ = ("rate_per_s", "burst", "_clock", "_tokens", "_refilled_at")

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> tuple[bool, float]:
        """Spend ``tokens`` if available.

        Returns ``(True, 0.0)`` on success, else ``(False, retry_after)``
        where ``retry_after`` is the exact seconds until the bucket will
        hold ``tokens`` again (assuming no other spender).
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True, 0.0
        return False, (tokens - self._tokens) / self.rate_per_s

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now); for tests and reports."""
        self._refill()
        return self._tokens


class RateLimiter:
    """One :class:`TokenBucket` per client id, created on first sight."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def try_acquire(self, client: str) -> tuple[bool, float]:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate_per_s, self.burst, self._clock
            )
        return bucket.try_acquire()

    def __len__(self) -> int:
        return len(self._buckets)
