"""Minimal HTTP-over-asyncio-streams wire protocol for the gateway.

The gateway speaks just enough HTTP/1.1 to be driven by ``curl``, a
browser, or the bundled :mod:`repro.serve.client` helper -- request
line, headers, JSON bodies, standard status codes -- implemented
directly on :mod:`asyncio` streams with **no** framework and no
``http.server`` thread pool.  Robustness constraints are part of the
protocol, not bolted on:

* every read is **bounded** -- request line, header block, and body all
  have byte ceilings, so a hostile or broken client cannot make the
  gateway buffer without limit (admission control starts at the socket);
* connections are **one-shot** (``Connection: close``): each request is
  parsed, answered, and the stream closed, which keeps per-connection
  state trivially bounded and makes client retry semantics obvious;
* malformed input maps to a structured 4xx :class:`ProtocolError`, never
  an exception escaping the connection handler.

Responses are always JSON (``application/json``), and backpressure
rejections carry a standard ``Retry-After`` header so well-behaved
clients can pace themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import asyncio

__all__ = [
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "read_request",
    "write_response",
]

#: Ceiling on the request line (method + path + version).
MAX_REQUEST_LINE_BYTES = 4096

#: Ceiling on the header block (sum of all header lines).
MAX_HEADER_BYTES = 16384

#: Ceiling on a request body; a job submission is a small JSON spec, so
#: anything near this is abuse, not a real client.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class Request:
    """One parsed request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON; empty body decodes to ``None``."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")


async def _read_line(reader: asyncio.StreamReader, limit: int, what: str) -> bytes:
    """One CRLF (or LF) terminated line, bounded by ``limit`` bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF
        raise ProtocolError(400, f"connection closed mid-{what}")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, f"{what} exceeds {limit} bytes")
    if len(line) > limit:
        raise ProtocolError(413, f"{what} exceeds {limit} bytes")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; None on a clean EOF.

    Raises :class:`ProtocolError` for anything malformed or over limit;
    the connection handler turns that into the matching 4xx response.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, "request line")
    if not line:
        return None
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith(b"HTTP/"):
        raise ProtocolError(400, f"malformed request line: {line[:80]!r}")
    method = parts[0].decode("ascii", "replace").upper()
    path = parts[1].decode("ascii", "replace")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES, "header block")
        if not line:
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(413, f"header block exceeds {MAX_HEADER_BYTES} bytes")
        name, sep, value = line.partition(b":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line[:80]!r}")
        headers[name.decode("ascii", "replace").strip().lower()] = (
            value.decode("ascii", "replace").strip()
        )

    body = b""
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length_header!r}")
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length: {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "connection closed mid-body")
    return Request(method=method, path=path, headers=headers, body=body)


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any = None,
    headers: dict[str, str] | None = None,
) -> None:
    """Serialize one JSON response and flush it.

    ``payload`` may be any JSON-able value (None sends an empty object
    for 2xx and an empty body for 204).  Numeric numpy scalars that leak
    into summaries coerce via ``default=float``.
    """
    reason = _REASONS.get(status, "Unknown")
    if status == 204:
        body = b""
    else:
        body = json.dumps(
            {} if payload is None else payload, sort_keys=True, default=float
        ).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "content-type: application/json",
        f"content-length: {len(body)}",
        "connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
    await writer.drain()
