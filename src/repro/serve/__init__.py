"""Simulation-as-a-service: a robust gateway over the coordinator stack.

The serving layer the ROADMAP's "heavy traffic from millions of users"
north star calls for -- stdlib-only (asyncio streams, no frameworks),
one process, composed from six pieces:

* :mod:`repro.serve.protocol`  -- bounded HTTP-over-streams wire format
* :mod:`repro.serve.limiter`   -- per-client token-bucket rate limiting
* :mod:`repro.serve.quotas`    -- per-client concurrency + work windows
* :mod:`repro.serve.jobs`      -- job specs, the crash journal, execution
* :mod:`repro.serve.scheduler` -- bounded fair-share dispatch + cancel
* :mod:`repro.serve.health`    -- rolling health -> admit/shed decision

:class:`Gateway` wires them together; :class:`GatewayClient` talks to
one.  Start a service with ``repro serve``, submit with ``repro
submit``, inspect with ``repro jobs`` (see the CLI), or embed the
pieces directly -- every component takes an injected clock and is
deterministic under test.
"""

from .client import GatewayClient, GatewayError
from .gateway import Gateway, GatewayConfig
from .health import HealthMonitor, HealthThresholds
from .jobs import (
    JOB_STATES,
    SWEEP_POINT_FNS,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    execute_job,
    spec_units,
)
from .limiter import RateLimiter, TokenBucket
from .protocol import ProtocolError, Request, read_request, write_response
from .quotas import Admission, ClientQuota, QuotaManager
from .scheduler import Scheduler

__all__ = [
    "Admission",
    "ClientQuota",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "HealthMonitor",
    "HealthThresholds",
    "JOB_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ProtocolError",
    "QuotaManager",
    "RateLimiter",
    "Request",
    "SWEEP_POINT_FNS",
    "Scheduler",
    "TERMINAL_STATES",
    "TokenBucket",
    "execute_job",
    "read_request",
    "spec_units",
    "write_response",
]
