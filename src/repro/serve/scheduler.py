"""Fair-share job scheduler: bounded queue -> threaded execution cores.

The scheduler sits between admission (which already said *yes*) and the
process-pool machinery (which does the actual simulating).  Its
contracts:

* **bounded** -- the submission queue holds at most ``max_queue`` jobs
  across all clients; an offer beyond that is refused so the gateway
  answers with backpressure instead of buffering without limit;
* **fair** -- queued jobs are drawn round-robin *per client*, oldest
  first within a client, so one tenant queueing fifty jobs cannot
  starve another's single job (the multi-tenant isolation the FDP
  flash-cache setting makes first-class);
* **cancellable** -- every running job carries a ``threading.Event``
  polled by the sweep coordinator's ``should_stop`` hook; cancelling
  tears down the job's in-flight worker processes, it does not just
  drop the bookkeeping.  Queued jobs cancel instantly;
* **journaled** -- each state transition is saved to the
  :class:`~repro.serve.jobs.JobStore` before the next scheduling
  decision, so a crash between any two steps restarts into a
  consistent queue.

Execution itself is ``execute_job`` on a worker thread
(``asyncio.to_thread``); the event loop only ever does bookkeeping, so
status and health endpoints stay responsive while jobs grind.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

import asyncio

from repro.runner.sweep import SweepCancelled

from .health import HealthMonitor
from .jobs import JobRecord, JobStore, execute_job

__all__ = ["Scheduler"]


class Scheduler:
    """Bounded, fair-share, cancellable dispatch of admitted jobs."""

    def __init__(
        self,
        store: JobStore,
        health: HealthMonitor,
        *,
        cache_dir: str,
        max_running: int = 2,
        max_queue: int = 16,
        job_workers: int = 2,
        retries: int = 2,
        timeout_s: float | None = None,
        durability: str = "rename",
        on_finish: Callable[[JobRecord], None] | None = None,
    ) -> None:
        if max_running < 1 or max_queue < 1:
            raise ValueError("max_running and max_queue must be >= 1")
        self.store = store
        self.health = health
        self.cache_dir = cache_dir
        self.max_running = max_running
        self.max_queue = max_queue
        self.job_workers = job_workers
        self.retries = retries
        self.timeout_s = timeout_s
        self.durability = durability
        self.on_finish = on_finish
        self._queues: dict[str, deque[JobRecord]] = {}
        self._rotation: deque[str] = deque()
        self._running: dict[str, tuple[asyncio.Task, threading.Event]] = {}
        self._wake = asyncio.Event()
        self._dispatch_task: asyncio.Task | None = None
        self._stopping = False

    # -- introspection ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def running_count(self) -> int:
        return len(self._running)

    def is_running(self, job_id: str) -> bool:
        return job_id in self._running

    def is_queued(self, job_id: str) -> bool:
        return any(r.job_id == job_id for q in self._queues.values() for r in q)

    def _gauges(self) -> None:
        self.health.set_queue_depth(self.queue_depth)
        self.health.set_running(self.running_count)

    # -- intake ----------------------------------------------------------------

    def offer(self, record: JobRecord, *, force: bool = False) -> tuple[bool, str]:
        """Take an admitted job onto the bounded queue.

        False means *backpressure*: the queue is full and the gateway
        must reject rather than buffer.  (Admission-level checks --
        quota, rate, health -- already happened; this is the last gate.)
        ``force`` bypasses the bound for journal recovery: jobs a
        previous process already admitted are never dropped, even when
        there are more of them than one queue's worth.
        """
        if self._stopping:
            return False, "scheduler is draining"
        if not force and self.queue_depth >= self.max_queue:
            return False, f"submission queue is full ({self.max_queue} job(s))"
        client = record.spec.client
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
        if client not in self._rotation:
            self._rotation.append(client)
        queue.append(record)
        self._gauges()
        self._wake.set()
        return True, ""

    # -- dispatch --------------------------------------------------------------

    def start(self) -> None:
        if self._dispatch_task is None:
            self._dispatch_task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def _dispatch_loop(self) -> None:
        while True:
            while self.running_count < self.max_running:
                record = self._next_record()
                if record is None:
                    break
                self._start_job(record)
            self._wake.clear()
            await self._wake.wait()

    def _next_record(self) -> JobRecord | None:
        """Round-robin over clients with queued work, FIFO within one."""
        for _ in range(len(self._rotation)):
            client = self._rotation.popleft()
            queue = self._queues.get(client)
            if not queue:
                continue
            record = queue.popleft()
            if queue:
                self._rotation.append(client)
            return record
        return None

    def _start_job(self, record: JobRecord) -> None:
        cancel = threading.Event()
        task = asyncio.get_running_loop().create_task(self._run_job(record, cancel))
        self._running[record.job_id] = (task, cancel)
        self._gauges()

    async def _run_job(self, record: JobRecord, cancel: threading.Event) -> None:
        record.state = "running"
        record.attempts += 1
        self.store.save(record)
        try:
            result = await asyncio.to_thread(
                execute_job,
                record,
                cache_dir=self.cache_dir,
                jobs=self.job_workers,
                retries=self.retries,
                timeout_s=self.timeout_s,
                durability=self.durability,
                should_stop=cancel.is_set,
                # dict.update is atomic enough for a progress feed read
                # by the status endpoint between events
                on_progress=record.progress.update,
            )
        except SweepCancelled:
            record.state = "cancelled"
            record.error = "cancelled while running; in-flight workers torn down"
        except Exception as exc:  # noqa: BLE001 - a job must never sink the loop
            record.state = "failed"
            record.error = repr(exc)
        else:
            record.state = "done"
            record.result = result
            record.error = None
        finally:
            self.store.save(record)
            self._running.pop(record.job_id, None)
            self._finish(record)
            self._gauges()
            self._wake.set()

    def _finish(self, record: JobRecord) -> None:
        ok = record.state == "done" and bool(
            record.result is None or record.result.get("complete", True)
        )
        stats = record.result or {}
        if record.state != "cancelled":
            self.health.job_finished(
                ok,
                pool_rebuilds=int(stats.get("pool_rebuilds", 0)),
                retries=int(stats.get("retry_attempts", 0)),
            )
            # each job ran against its own cache handle, so its storage
            # report is a fresh reading of disk health -- fold it in
            self.health.storage_from_job(stats.get("storage"))
        if self.on_finish is not None:
            self.on_finish(record)

    # -- cancellation and shutdown ---------------------------------------------

    def cancel(self, job_id: str) -> str | None:
        """Cancel a queued or running job; None when it is neither."""
        entry = self._running.get(job_id)
        if entry is not None:
            entry[1].set()  # the coordinator kills in-flight workers
            return "cancelling"
        for queue in self._queues.values():
            for record in queue:
                if record.job_id == job_id:
                    queue.remove(record)
                    record.state = "cancelled"
                    record.error = "cancelled while queued"
                    self.store.save(record)
                    self._finish(record)
                    self._gauges()
                    return "cancelled"
        return None

    async def drain(self) -> None:
        """Stop taking work and wait for every running job to finish."""
        self._stopping = True
        tasks = [task for task, _ in self._running.values()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def stop(self, *, cancel_running: bool = False) -> None:
        """Shut the dispatch loop down; optionally cancel running jobs."""
        self._stopping = True
        if cancel_running:
            for job_id in list(self._running):
                self.cancel(job_id)
        await self.drain()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
