"""Asyncio client for the gateway: one small helper, shared by the CLI
and the robustness tests.

Connections are one-shot (mirroring the server's ``Connection: close``
protocol), so a client instance is just an address plus a timeout --
safe to share across tasks, trivial to hammer a gateway with hundreds
of concurrent submissions from a single test process.

Every call returns ``(status, payload, headers)`` rather than raising
on 4xx/5xx: rejection *is* the signal under test (and the CLI wants to
print the body either way).  :meth:`GatewayClient.wait` polls a job to
a terminal state, honouring the poll interval; pair it with
:meth:`submit` for a blocking "run this job" round trip.
"""

from __future__ import annotations

import json
from typing import Any

import asyncio

from .protocol import MAX_BODY_BYTES

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(RuntimeError):
    """Transport-level failure talking to the gateway (not a 4xx/5xx)."""


class GatewayClient:
    """Minimal HTTP/1.1 client against one gateway address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 9178, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any, dict[str, str]]:
        """One request/response round trip on a fresh connection."""
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"host: {self.host}:{self.port}",
            "connection: close",
            f"content-length: {len(body)}",
            "content-type: application/json",
        ]
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
        try:
            return await asyncio.wait_for(
                self._round_trip(raw), timeout=self.timeout_s
            )
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            raise GatewayError(
                f"gateway at {self.host}:{self.port} unreachable: {exc!r}"
            ) from exc
        except asyncio.TimeoutError as exc:
            raise GatewayError(
                f"gateway at {self.host}:{self.port} did not answer within "
                f"{self.timeout_s}s"
            ) from exc

    async def _round_trip(self, raw: bytes) -> tuple[int, Any, dict[str, str]]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(raw)
            await writer.drain()
            status_line = (await reader.readline()).decode("ascii", "replace")
            parts = status_line.split(maxsplit=2)
            if len(parts) < 2 or not parts[0].startswith("HTTP/"):
                raise GatewayError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = (await reader.readline()).decode("ascii", "replace").strip()
                if not line:
                    break
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            if length > MAX_BODY_BYTES:
                raise GatewayError(f"response body of {length} bytes is absurd")
            body = await reader.readexactly(length) if length else b""
            payload = json.loads(body.decode("utf-8")) if body else None
            return status, payload, headers
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- conveniences ----------------------------------------------------------

    async def health(self) -> tuple[int, Any, dict[str, str]]:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> tuple[int, Any, dict[str, str]]:
        return await self.request("GET", "/metrics")

    async def submit(
        self, client: str, kind: str, params: dict
    ) -> tuple[int, Any, dict[str, str]]:
        return await self.request(
            "POST", "/jobs", {"client": client, "kind": kind, "params": params}
        )

    async def jobs(self) -> tuple[int, Any, dict[str, str]]:
        return await self.request("GET", "/jobs")

    async def job(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        return await self.request("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        return await self.request("POST", f"/jobs/{job_id}/cancel")

    async def wait(
        self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its view.

        Raises :class:`GatewayError` when the deadline passes first --
        the caller decides whether a stuck job is a test failure or a
        cancellation target.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            status, view, _ = await self.job(job_id)
            if status == 200 and view.get("state") in ("done", "failed", "cancelled"):
                return view
            if loop.time() >= deadline:
                raise GatewayError(
                    f"job {job_id} still {view.get('state') if view else status} "
                    f"after {timeout_s}s"
                )
            await asyncio.sleep(poll_s)
