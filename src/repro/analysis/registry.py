"""Experiment registry: the machine-readable index of EXPERIMENTS.md.

One record per figure/claim-set experiment, consumed by the CLI
(``python -m repro.cli experiments``) and usable by tooling that wants
to run or cross-reference specific experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "find_experiment"]


@dataclass(frozen=True, slots=True)
class Experiment:
    """One reproducible experiment."""

    experiment_id: str
    title: str
    paper_source: str
    bench_path: str


EXPERIMENTS: list[Experiment] = [
    Experiment("E1", "Flash market share by device type", "Figure 1",
               "benchmarks/test_bench_fig1_market_share.py"),
    Experiment("E2", "Flash production carbon, 2021-2030", "§1/§3",
               "benchmarks/test_bench_e2_carbon_projection.py"),
    Experiment("E3", "Wear gap between device life and endurance", "§2.3",
               "benchmarks/test_bench_e3_wear_gap.py"),
    Experiment("E4", "Carbon credits vs flash price", "§3",
               "benchmarks/test_bench_e4_carbon_credits.py"),
    Experiment("E5", "Density and capacity gains of the SOS split", "§4.1-§4.2",
               "benchmarks/test_bench_e5_density_gain.py"),
    Experiment("E6", "Approximate storage on low-endurance PLC", "§4.2-§4.3",
               "benchmarks/test_bench_e6_approx_storage.py"),
    Experiment("E7", "Wear leveling disabled on SPARE", "§4.3",
               "benchmarks/test_bench_e7_wear_leveling.py"),
    Experiment("E8", "Capacity variance and resuscitation", "§4.3",
               "benchmarks/test_bench_e8_capacity_variance.py"),
    Experiment("E9", "Machine-driven data classification", "§4.4-§4.5",
               "benchmarks/test_bench_e9_classifier.py"),
    Experiment("E10", "Auto-delete trim under capacity pressure", "§4.5",
               "benchmarks/test_bench_e10_trim_policy.py"),
    Experiment("E11", "SOS vs baselines over a device life", "Figure 2/§4",
               "benchmarks/test_bench_e11_end_to_end.py"),
    Experiment("E12", "PLC access speeds suffice", "§4.5 Performance",
               "benchmarks/test_bench_e12_performance.py"),
    Experiment("E13", "Data reduction vs density", "§5",
               "benchmarks/test_bench_e13_data_reduction.py"),
    Experiment("E14", "Fleet replacement churn", "§2.3.2-§2.3.3",
               "benchmarks/test_bench_e14_fleet_replacement.py"),
    Experiment("E15", "Embodied vs operational carbon", "§1/§3",
               "benchmarks/test_bench_e15_embodied_vs_operational.py"),
    Experiment("E16", "Population wear distribution", "§2.3.1-§2.3.2",
               "benchmarks/test_bench_e16_population_wear.py"),
    Experiment("A1", "ECC strength on SPARE", "ablation",
               "benchmarks/test_bench_a1_ecc_ablation.py"),
    Experiment("A2", "SYS/SPARE split ratio sweep", "ablation",
               "benchmarks/test_bench_a2_split_sweep.py"),
    Experiment("A3", "Classifier conservativeness threshold", "ablation",
               "benchmarks/test_bench_a3_threshold_sweep.py"),
    Experiment("A4", "Cloud repair on/off", "ablation (§4.3)",
               "benchmarks/test_bench_a4_cloud_repair.py"),
    Experiment("A5", "Re-evaluation under preference drift", "ablation (§4.4)",
               "benchmarks/test_bench_a5_reevaluation.py"),
    Experiment("A6", "Calibration sensitivity grid", "ablation",
               "benchmarks/test_bench_a6_sensitivity.py"),
    Experiment("A7", "GC policy on the SPARE churn profile", "ablation",
               "benchmarks/test_bench_a7_gc_policy.py"),
    Experiment("A8", "Less-pervasive tracking", "ablation (§4.5 Security)",
               "benchmarks/test_bench_a8_privacy.py"),
    Experiment("A9", "Deterministic fault injection at scale", "ablation (§4.3)",
               "benchmarks/test_bench_a9_fault_ablation.py"),
    Experiment("P1", "Sweep runner scaling (serial vs parallel)", "infrastructure",
               "benchmarks/test_bench_runner_scaling.py"),
]


def find_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    wanted = experiment_id.upper()
    for experiment in EXPERIMENTS:
        if experiment.experiment_id == wanted:
            return experiment
    raise KeyError(f"unknown experiment {experiment_id!r}")
