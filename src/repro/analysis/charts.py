"""Terminal charts: bar charts and sparklines for experiment output.

The paper's Figure 1 is a pie chart and its lifetime arguments are
trend lines; the benchmark harness renders the same shapes as text so
``pytest -s`` output *is* the figure regeneration.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart", "sparkline", "series_chart"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be the same length")
    if not labels:
        return title or ""
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "█" * filled
        lines.append(
            f"{str(label).ljust(label_width)}  {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line sparkline of a series using unicode block glyphs."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    out = []
    for value in values:
        if span == 0:
            index = 4
        else:
            index = int((value - lo) / span * (len(_BLOCKS) - 1))
            index = max(0, min(len(_BLOCKS) - 1, index))
        out.append(_BLOCKS[index])
    return "".join(out)


def series_chart(
    name: str, xs: Sequence[float], ys: Sequence[float], unit: str = ""
) -> str:
    """Sparkline plus endpoints annotation for one (x, y) series."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    if not xs:
        return f"{name}: (empty)"
    return (
        f"{name}: {sparkline(ys)}  "
        f"[{xs[0]:g} -> {xs[-1]:g}]  {ys[0]:.3g}{unit} -> {ys[-1]:.3g}{unit}"
    )
