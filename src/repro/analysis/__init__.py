"""Experiment reporting: tables, series, and paper-claim checks."""

from .charts import bar_chart, series_chart, sparkline
from .claims import ClaimCheck, Comparison, claims_table
from .registry import EXPERIMENTS, Experiment, find_experiment
from .reporting import format_series, format_table

__all__ = [
    "bar_chart",
    "series_chart",
    "sparkline",
    "ClaimCheck",
    "Comparison",
    "claims_table",
    "EXPERIMENTS",
    "Experiment",
    "find_experiment",
    "format_series",
    "format_table",
]
