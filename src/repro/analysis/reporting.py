"""Shared formatting for experiment output.

Every benchmark prints the same artifacts: an aligned text table of the
rows/series the paper reports, and paper-vs-measured claim lines.  These
helpers keep that output uniform across the harness.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned text table.

    Numbers are formatted to 4 significant digits; everything else via
    ``str``.
    """
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render an (x, y) series as a compact one-per-line listing."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>12}  {_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
