"""Paper-claim bookkeeping: compare measured values against the paper.

A position paper states numbers loosely ("e.g., 5%", "over 150M", "~40%"),
so each claim carries a comparison style:

* ``APPROX`` -- measured within a relative tolerance of the paper value;
* ``AT_LEAST`` / ``AT_MOST`` -- one-sided bounds;
* ``BETWEEN`` -- the paper gives a range.

Benchmarks assemble :class:`ClaimCheck` rows and print a uniform
PAPER-vs-MEASURED table; EXPERIMENTS.md records the same rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .reporting import format_table

__all__ = ["Comparison", "ClaimCheck", "claims_table"]


class Comparison(enum.Enum):
    """How a measured value is judged against the paper's figure."""

    APPROX = "approx"
    AT_LEAST = "at_least"
    AT_MOST = "at_most"
    BETWEEN = "between"


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """One paper claim and its measured counterpart."""

    claim_id: str
    description: str
    paper_value: float
    measured: float
    comparison: Comparison = Comparison.APPROX
    rel_tol: float = 0.15
    #: upper bound for BETWEEN (paper_value is the lower bound)
    paper_upper: float | None = None

    @property
    def holds(self) -> bool:
        """Whether the measurement satisfies the claim."""
        if self.comparison is Comparison.APPROX:
            if self.paper_value == 0:
                return abs(self.measured) <= self.rel_tol
            return abs(self.measured - self.paper_value) <= self.rel_tol * abs(self.paper_value)
        if self.comparison is Comparison.AT_LEAST:
            return self.measured >= self.paper_value
        if self.comparison is Comparison.AT_MOST:
            return self.measured <= self.paper_value
        if self.paper_upper is None:
            raise ValueError("BETWEEN requires paper_upper")
        return self.paper_value <= self.measured <= self.paper_upper

    @property
    def paper_text(self) -> str:
        """Paper-side value rendered for the table."""
        if self.comparison is Comparison.BETWEEN:
            return f"[{self.paper_value:g}, {self.paper_upper:g}]"
        prefix = {
            Comparison.APPROX: "~",
            Comparison.AT_LEAST: ">=",
            Comparison.AT_MOST: "<=",
        }[self.comparison]
        return f"{prefix}{self.paper_value:g}"


def claims_table(checks: list[ClaimCheck], title: str = "paper vs measured") -> str:
    """Uniform PAPER-vs-MEASURED table for a benchmark's claims."""
    rows = [
        [c.claim_id, c.description, c.paper_text, f"{c.measured:.4g}", "OK" if c.holds else "DIVERGES"]
        for c in checks
    ]
    return format_table(["id", "claim", "paper", "measured", "verdict"], rows, title=title)
