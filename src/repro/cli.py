"""Command-line interface to the SOS reproduction.

Usage::

    python -m repro.cli <command> [options]

Commands
--------
``density``
    The §4.1/§4.2 density and carbon arithmetic for a given split.
``project``
    The 2021->2030 flash carbon projection (E2).
``market``
    Figure 1 market shares and fleet replacement churn (E1/E14).
``credits``
    Carbon-credit surcharge on flash prices (E4).
``lifetime``
    Run the lifetime engine: SOS vs baselines for a mix/years (E11).
``classify``
    Train the classifiers on a fresh synthetic corpus and report their
    operating points (E9).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reporting import format_table

__all__ = ["main"]


def _cmd_density(args: argparse.Namespace) -> None:
    from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
    from repro.core.config import default_config
    from repro.core.partitions import capacity_gain_over, density_gain
    from repro.flash.cell import CellTechnology

    config = default_config(spare_fraction=args.spare_fraction)
    sos = mixed_intensity_kg_per_gb(
        {config.sys_mode: 1 - args.spare_fraction, config.spare_mode: args.spare_fraction}
    )
    tlc = intensity_kg_per_gb(CellTechnology.TLC)
    rows = [
        ["mean operating bits/cell", f"{config.mean_operating_bits:.2f}"],
        ["density gain vs TLC", f"{density_gain(config) * 100:.1f}%"],
        ["capacity gain vs QLC",
         f"{capacity_gain_over(config, CellTechnology.QLC) * 100:.1f}%"],
        ["embodied intensity", f"{sos:.4f} kg CO2e/GB"],
        ["carbon reduction vs TLC", f"{(1 - sos / tlc) * 100:.1f}%"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"SOS split: {args.spare_fraction:.0%} SPARE"))


def _cmd_project(args: argparse.Namespace) -> None:
    from repro.carbon.projection import ProjectionConfig, project

    points = project(ProjectionConfig(bit_growth_rate=args.growth))
    rows = [
        [p.year, f"{p.capacity_eb:.0f}", f"{p.emissions_mt:.0f}",
         f"{p.people_equivalent_millions:.0f}"]
        for p in points
    ]
    print(format_table(
        ["year", "capacity (EB)", "emissions (Mt CO2e)", "people-equiv (M)"],
        rows, title="Flash production carbon projection"))


def _cmd_market(args: argparse.Namespace) -> None:
    from repro.carbon.fleet import FleetConfig, simulate_fleet
    from repro.carbon.market import MARKET_SHARE_2020

    outcome = simulate_fleet(FleetConfig())
    rows = [
        [c.name, f"{MARKET_SHARE_2020[c.name] * 100:.0f}%",
         f"{c.replacement_multiplier:.1f}x", f"{c.embodied_mt:.0f}"]
        for c in outcome.classes
    ]
    print(format_table(
        ["class", "bit share (Fig 1)", "capacity rebuilt / decade",
         "embodied Mt CO2e / decade"],
        rows, title="Flash market and replacement churn"))
    print(f"\npersonal devices: {outcome.personal_bit_share() * 100:.0f}% of "
          f"manufactured bits, rebuilt "
          f"{outcome.personal_replacement_multiplier():.1f}x per decade")


def _cmd_credits(args: argparse.Namespace) -> None:
    from repro.carbon.credits import CarbonPrice, credit_cost_per_tb, price_increase_fraction
    from repro.carbon.embodied import intensity_kg_per_gb
    from repro.flash.cell import CellTechnology

    price = CarbonPrice(usd_per_tonne=args.price)
    rows = []
    for tech in (CellTechnology.TLC, CellTechnology.QLC, CellTechnology.PLC):
        intensity = intensity_kg_per_gb(tech)
        cost = credit_cost_per_tb(price, intensity)
        rows.append([tech.name, f"${cost:.2f}",
                     f"{cost / args.ssd_price * 100:.1f}%"])
    print(format_table(
        ["technology", "credit $/TB", f"vs ${args.ssd_price:.0f}/TB price"],
        rows, title=f"Carbon credits at ${args.price:.0f}/tonne"))
    headline = price_increase_fraction(price, args.ssd_price)
    print(f"\nbaseline-intensity surcharge: {headline * 100:.1f}% of the drive price")


def _cmd_lifetime(args: argparse.Namespace) -> None:
    from repro.runner import Sweep, run_sweep, write_bench_json
    from repro.runner.points import lifetime_point
    from repro.sim.baselines import ALL_BUILDERS

    grid = tuple(
        {
            "build": name,
            "capacity_gb": args.capacity_gb,
            "mix": args.mix,
            "days": args.years * 365,
            "workload_seed": args.seed,
        }
        for name in ALL_BUILDERS
    )
    sweep = Sweep(name="cli-lifetime", fn=lifetime_point, grid=grid, base_seed=args.seed)
    outcome = run_sweep(sweep, jobs=args.jobs, cache_dir=args.cache_dir)
    rows = []
    for point in outcome.points:
        result = point.value
        final = result.final
        rows.append([
            point.params["build"], f"{result.embodied_kg:.2f}",
            f"{final.sys_wear_fraction * 100:.1f}%",
            f"{final.spare_quality:.3f}", f"{final.capacity_gb:.1f}",
            "yes" if result.survived() else "degraded",
        ])
    print(format_table(
        ["device", "embodied kg", "worst wear", "media quality",
         "capacity left (GB)", f"healthy at {args.years}y"],
        rows,
        title=f"{args.capacity_gb:.0f} GB, {args.years}y, '{args.mix}' mix"))
    if args.bench_json:
        write_bench_json(args.bench_json, [outcome], notes="repro.cli lifetime")
        print(f"\nwrote per-point timings to {args.bench_json}")


def _cmd_experiments(args: argparse.Namespace) -> None:
    from repro.analysis.registry import EXPERIMENTS

    rows = [
        [e.experiment_id, e.title, e.paper_source, e.bench_path]
        for e in EXPERIMENTS
    ]
    print(format_table(["id", "experiment", "paper", "bench"], rows,
                       title=f"{len(EXPERIMENTS)} reproducible experiments "
                             f"(run: pytest <bench> --benchmark-only -s)"))


def _cmd_classify(args: argparse.Namespace) -> None:
    from repro.classify.auto_delete import train_auto_delete
    from repro.classify.classifier import train_classifier
    from repro.classify.corpus import CorpusConfig, generate_corpus

    corpus = generate_corpus(CorpusConfig(n_files=args.files), seed=args.seed)
    _, metrics = train_classifier(corpus, now_years=2.0, seed=args.seed)
    _, auto = train_auto_delete(corpus, now_years=2.0, seed=args.seed)
    rows = [
        ["criticality accuracy", f"{metrics.accuracy:.3f}"],
        ["critical precision / recall",
         f"{metrics.precision_critical:.3f} / {metrics.recall_critical:.3f}"],
        ["files demoted to SPARE", f"{metrics.spare_fraction:.3f}"],
        ["critical files demoted", f"{metrics.critical_demotion_rate:.3f}"],
        ["auto-delete accuracy (paper cites 79%)", f"{auto.accuracy:.3f}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"classifiers on a {args.files}-file corpus"))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SOS (HotOS '23) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("density", help="density/carbon arithmetic (§4.1-§4.2)")
    p.add_argument("--spare-fraction", type=float, default=0.5)
    p.set_defaults(func=_cmd_density)

    p = sub.add_parser("project", help="2021-2030 carbon projection (E2)")
    p.add_argument("--growth", type=float, default=0.31)
    p.set_defaults(func=_cmd_project)

    p = sub.add_parser("market", help="market shares + fleet churn (E1/E14)")
    p.set_defaults(func=_cmd_market)

    p = sub.add_parser("credits", help="carbon-credit surcharge (E4)")
    p.add_argument("--price", type=float, default=111.0)
    p.add_argument("--ssd-price", type=float, default=45.0)
    p.set_defaults(func=_cmd_credits)

    p = sub.add_parser("lifetime", help="lifetime engine: SOS vs baselines (E11)")
    p.add_argument("--mix", default="typical",
                   choices=("light", "typical", "heavy", "adversarial"))
    p.add_argument("--years", type=int, default=3)
    p.add_argument("--capacity-gb", type=float, default=64.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the device sweep (1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="sweep result cache directory (default: no cache)")
    p.add_argument("--bench-json", default=None, metavar="PATH",
                   help="write per-point wall times (BENCH_runner.json format)")
    p.set_defaults(func=_cmd_lifetime)

    p = sub.add_parser("experiments", help="list all reproducible experiments")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("classify", help="train + evaluate the classifiers (E9)")
    p.add_argument("--files", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_classify)

    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
