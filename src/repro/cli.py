"""Command-line interface to the SOS reproduction.

Usage::

    python -m repro.cli <command> [options]

Commands
--------
``density``
    The §4.1/§4.2 density and carbon arithmetic for a given split.
``project``
    The 2021->2030 flash carbon projection (E2).
``market``
    Figure 1 market shares and fleet replacement churn (E1/E14).
``credits``
    Carbon-credit surcharge on flash prices (E4).
``lifetime``
    Run the lifetime engine: SOS vs baselines for a mix/years (E11).
``population``
    Simulate a device population through the sharded fleet-of-fleets
    layer (batch engine x sweep coordinator) and report the wear
    distribution (E16); scales to millions of devices with
    shard-bounded memory, and optionally races the per-device scalar
    engine for an exactness + speedup check.
``classify``
    Train the classifiers on a fresh synthetic corpus and report their
    operating points (E9).
``serve``
    Run the simulation-as-a-service gateway: admission control, quotas,
    backpressure, health-monitored job execution (see ``repro.serve``).
``submit``
    Submit a population/sweep job to a running gateway; optionally wait
    for its terminal state.
``jobs``
    List, inspect, cancel gateway jobs, or poll gateway health.
``faults selftest``
    Deterministic fault-plan replay and crash-containment smoke test.
``chaos labels|target|matrix``
    Infrastructure chaos: list the crash-point registry, run one
    deterministic matrix target, or run the full crash matrix
    (kill-at-every-label, assert bit-identical resume; see
    ``repro.chaos``).
``obs report``
    Render span timings, top counters, and event totals from a run
    directory produced by ``lifetime --trace/--metrics-json``.
``store inspect|scan|compact``
    Columnar result store (``columns.rcs``) utilities: header/index
    stats and integrity verification, off-disk column scans with
    distribution quantiles, and live-entry compaction (see
    ``repro.store``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reporting import format_table

__all__ = ["main"]


def _cmd_density(args: argparse.Namespace) -> None:
    from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
    from repro.core.config import default_config
    from repro.core.partitions import capacity_gain_over, density_gain
    from repro.flash.cell import CellTechnology

    config = default_config(spare_fraction=args.spare_fraction)
    sos = mixed_intensity_kg_per_gb(
        {config.sys_mode: 1 - args.spare_fraction, config.spare_mode: args.spare_fraction}
    )
    tlc = intensity_kg_per_gb(CellTechnology.TLC)
    rows = [
        ["mean operating bits/cell", f"{config.mean_operating_bits:.2f}"],
        ["density gain vs TLC", f"{density_gain(config) * 100:.1f}%"],
        ["capacity gain vs QLC",
         f"{capacity_gain_over(config, CellTechnology.QLC) * 100:.1f}%"],
        ["embodied intensity", f"{sos:.4f} kg CO2e/GB"],
        ["carbon reduction vs TLC", f"{(1 - sos / tlc) * 100:.1f}%"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"SOS split: {args.spare_fraction:.0%} SPARE"))


def _cmd_project(args: argparse.Namespace) -> None:
    from repro.carbon.projection import ProjectionConfig, project

    points = project(ProjectionConfig(bit_growth_rate=args.growth))
    rows = [
        [p.year, f"{p.capacity_eb:.0f}", f"{p.emissions_mt:.0f}",
         f"{p.people_equivalent_millions:.0f}"]
        for p in points
    ]
    print(format_table(
        ["year", "capacity (EB)", "emissions (Mt CO2e)", "people-equiv (M)"],
        rows, title="Flash production carbon projection"))


def _cmd_market(args: argparse.Namespace) -> None:
    from repro.carbon.fleet import FleetConfig, simulate_fleet
    from repro.carbon.market import MARKET_SHARE_2020

    outcome = simulate_fleet(FleetConfig())
    rows = [
        [c.name, f"{MARKET_SHARE_2020[c.name] * 100:.0f}%",
         f"{c.replacement_multiplier:.1f}x", f"{c.embodied_mt:.0f}"]
        for c in outcome.classes
    ]
    print(format_table(
        ["class", "bit share (Fig 1)", "capacity rebuilt / decade",
         "embodied Mt CO2e / decade"],
        rows, title="Flash market and replacement churn"))
    print(f"\npersonal devices: {outcome.personal_bit_share() * 100:.0f}% of "
          f"manufactured bits, rebuilt "
          f"{outcome.personal_replacement_multiplier():.1f}x per decade")


def _cmd_credits(args: argparse.Namespace) -> None:
    from repro.carbon.credits import CarbonPrice, credit_cost_per_tb, price_increase_fraction
    from repro.carbon.embodied import intensity_kg_per_gb
    from repro.flash.cell import CellTechnology

    price = CarbonPrice(usd_per_tonne=args.price)
    rows = []
    for tech in (CellTechnology.TLC, CellTechnology.QLC, CellTechnology.PLC):
        intensity = intensity_kg_per_gb(tech)
        cost = credit_cost_per_tb(price, intensity)
        rows.append([tech.name, f"${cost:.2f}",
                     f"{cost / args.ssd_price * 100:.1f}%"])
    print(format_table(
        ["technology", "credit $/TB", f"vs ${args.ssd_price:.0f}/TB price"],
        rows, title=f"Carbon credits at ${args.price:.0f}/tonne"))
    headline = price_increase_fraction(price, args.ssd_price)
    print(f"\nbaseline-intensity surcharge: {headline * 100:.1f}% of the drive price")


def _run_exit_code(completed: int, failed: int) -> int:
    """Exit code of a ``--keep-going`` run: 0 ok, 1 partial, 2 all failed.

    Scripts and CI gate on this: a run that silently dropped points must
    not exit 0, and a run that produced *nothing* is distinguishable
    from one that merely degraded.
    """
    if failed == 0:
        return 0
    return 1 if completed > 0 else 2


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.obs import (
        merge_snapshots,
        observed,
        write_metrics_json,
        write_trace_jsonl,
    )
    from repro.runner import Sweep, run_sweep, write_bench_json
    from repro.runner.points import lifetime_point
    from repro.sim.baselines import ALL_BUILDERS

    grid = tuple(
        {
            "build": name,
            "capacity_gb": args.capacity_gb,
            "mix": args.mix,
            "days": args.years * 365,
            "workload_seed": args.seed,
        }
        for name in ALL_BUILDERS
    )
    sweep = Sweep(name="cli-lifetime", fn=lifetime_point, grid=grid, base_seed=args.seed)
    collect = bool(args.trace or args.metrics_json)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if collect:
            with observed(trace=False) as coordinator_obs:
                outcome = run_sweep(
                    sweep,
                    jobs=args.jobs,
                    cache_dir=args.cache_dir,
                    retries=args.retries,
                    timeout_s=args.timeout,
                    keep_going=args.keep_going,
                    durability=args.durability,
                    collect_obs=True,
                )
        else:
            outcome = run_sweep(
                sweep,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                retries=args.retries,
                timeout_s=args.timeout,
                keep_going=args.keep_going,
                durability=args.durability,
            )
    finally:
        if profiler is not None:
            profiler.disable()
    if args.profile:
        profiler.dump_stats(args.profile)
        print(f"wrote cProfile stats to {args.profile} "
              "(inspect: python -m pstats)")
    if collect:
        merged = outcome.merged_metrics()
        snapshots = [coordinator_obs.registry.snapshot()]
        if merged is not None:
            snapshots.append(merged)
        merged = merge_snapshots(*snapshots)
        if args.metrics_json:
            write_metrics_json(
                args.metrics_json, merged,
                context={"sweep": sweep.name, "jobs": args.jobs,
                         "seed": args.seed, "mix": args.mix},
            )
            print(f"wrote merged metrics to {args.metrics_json}")
        if args.trace:
            count = write_trace_jsonl(args.trace, outcome.merged_trace())
            print(f"wrote {count} trace events to {args.trace}")
    rows = []
    for point in outcome.points:
        result = point.value
        final = result.final
        rows.append([
            point.params["build"], f"{result.embodied_kg:.2f}",
            f"{final.sys_wear_fraction * 100:.1f}%",
            f"{final.spare_quality:.3f}", f"{final.capacity_gb:.1f}",
            "yes" if result.survived() else "degraded",
        ])
    print(format_table(
        ["device", "embodied kg", "worst wear", "media quality",
         "capacity left (GB)", f"healthy at {args.years}y"],
        rows,
        title=f"{args.capacity_gb:.0f} GB, {args.years}y, '{args.mix}' mix"))
    if args.bench_json:
        write_bench_json(args.bench_json, [outcome], notes="repro.cli lifetime")
        print(f"\nwrote per-point timings to {args.bench_json}")
    if outcome.errors:
        print(f"\n{len(outcome.errors)} point(s) failed:")
        for err in outcome.errors:
            print(f"  [{err.kind}] {err.params.get('build', err.index)}: "
                  f"{err.message} ({err.attempts} attempt(s))")
    return _run_exit_code(len(outcome.points), len(outcome.errors))


def _cmd_population(args: argparse.Namespace) -> int:
    """``repro population``: sharded fleet run over a device population.

    The population is cut into ``--shard-size``-device shards; each
    shard runs as one fault-tolerant, cached sweep point that steps its
    devices through the batched fleet engine in ``--chunk``-device
    vectorized passes and reduces to a mergeable wear digest, so peak
    memory follows the shard size even at ``--devices 1000000``.
    ``--compare-scalar`` additionally runs every device through the
    per-device scalar engine and verifies the sharded wear values match
    it exactly (exact-mode fleets only).
    """
    import resource

    import numpy as np

    from repro.fleet import WEAR_BIN_WIDTH, FleetPlan, run_fleet
    from repro.runner import Sweep, run_sweep, write_bench_json
    from repro.runner.points import (
        DEFAULT_MIX_WEIGHTS,
        assign_mixes,
        lifetime_point,
    )

    days = int(args.years * 365)
    fidelity = getattr(args, "fidelity", "epoch")
    if args.compare_scalar and fidelity != "epoch":
        print("--compare-scalar compares against the scalar *epoch* engine; "
              "it cannot be combined with --fidelity ftl")
        return 2
    plan = FleetPlan(
        n_devices=args.devices,
        days=days,
        capacity_gb=args.capacity_gb,
        seed=args.seed,
        shard_size=args.shard_size or args.chunk,
        chunk=args.chunk,
        build=args.build,
        exact_cap=args.exact_cap,
        fidelity=fidelity,
    )
    if args.compare_scalar and not plan.exact:
        print(f"--compare-scalar needs per-device values: raise --exact-cap "
              f"to at least {plan.n_devices} (currently {plan.exact_cap})")
        return 2
    fleet = run_fleet(
        plan,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        timeout_s=args.timeout,
        keep_going=args.keep_going,
        name="cli-population-batch",
        durability=args.durability,
    )
    stats = fleet.summary()
    results = [fleet.sweep]
    # ru_maxrss is KiB on linux
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    kind = "" if stats["exact"] else f" (est. +-{WEAR_BIN_WIDTH:.3f})"
    rows = [
        ["devices", f"{stats['devices']} ({stats['shards']} shard(s) of <= "
                    f"{plan.shard_size}, chunk {plan.chunk})"],
        ["median wear", f"{stats['median'] * 100:.1f}%{kind}"],
        ["p90 wear", f"{stats['p90'] * 100:.1f}%{kind}"],
        ["p99 wear", f"{stats['p99'] * 100:.1f}%{kind}"],
        ["max wear", f"{stats['max'] * 100:.1f}%"],
        ["worn out before disposal", f"{stats['worn_out_fraction'] * 100:.1f}%"],
        ["quantile mode", "exact" if stats["exact"] else "histogram estimate"],
        ["fleet wall time", f"{stats['wall_s']:.2f} s"],
        ["coordinator peak RSS", f"{peak_rss_mb:.0f} MB"],
    ]

    worst = 0.0
    if args.compare_scalar:
        wear = np.asarray(fleet.wear_values())
        mixes = assign_mixes(args.seed, DEFAULT_MIX_WEIGHTS, 0, args.devices)
        scalar_grid = tuple(
            {"build": args.build, "capacity_gb": args.capacity_gb, "mix": mix,
             "days": days, "workload_seed": plan.workload_seed_base + u}
            for u, mix in enumerate(mixes)
        )
        scalar_sweep = Sweep(name="cli-population-scalar", fn=lifetime_point,
                             grid=scalar_grid, base_seed=args.seed)
        scalar_outcome = run_sweep(scalar_sweep, jobs=args.jobs,
                                   cache_dir=args.cache_dir)
        scalar_wear = np.array(
            [p.value.final.sys_wear_fraction for p in scalar_outcome.points]
        )
        results.append(scalar_outcome)
        worst = float(np.max(np.abs(scalar_wear - wear))) if len(wear) else 0.0
        rows += [
            ["scalar wall time", f"{scalar_outcome.total_wall_s:.2f} s"],
            ["batch speedup",
             f"{scalar_outcome.total_wall_s / max(stats['wall_s'], 1e-9):.1f}x"],
            ["max |scalar - batch| wear", f"{worst:.2e}"],
        ]

    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.devices} x {args.capacity_gb:.0f} GB '{args.build}' "
              f"devices, {args.years}y service life"))
    storage = stats["storage"]  # empty without --cache-dir
    if any(storage.get(key) for key in (
            "passthrough", "store_errors",
            "corrupt_quarantined", "invalid_payloads")):
        detail = ", ".join(
            f"{key}={value}" for key, value in storage.items()
            if key != "durability"
        )
        print(f"\nWARNING: result cache degraded ({detail}); "
              "fleet completed read-through")
    if args.bench_json:
        write_bench_json(args.bench_json, results, notes="repro.cli population")
        print(f"\nwrote per-point timings to {args.bench_json}")
    if fleet.sweep.errors:
        print(f"\n{len(fleet.sweep.errors)} shard(s) failed "
              f"({stats['missing_devices']} of {stats['requested_devices']} "
              "device(s) missing from the distribution):")
        for err in fleet.sweep.errors:
            print(f"  [{err.kind}] shard @{err.params.get('start', err.index)}: "
                  f"{err.message} ({err.attempts} attempt(s))")
        return _run_exit_code(
            len(fleet.sweep.points), len(fleet.sweep.errors)
        )
    # fully-alive TLC fleets are bit-identical; resuscitating builds may
    # differ by float-reduction order, bounded well under 1e-9
    if args.compare_scalar and worst > 1e-9:
        print("\nWARNING: batched wear diverged from the scalar engine")
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """``repro faults selftest``: deterministic fault-plan replay smoke.

    Four checks, each cheap enough for CI:

    1. plan determinism -- identical (config, seed, horizon, targets)
       generates an identical event log and digest;
    2. zero-rate transparency -- an all-zero-rate plan leaves the
       lifetime engine bit-identical to running with no plan at all;
    3. schedule replay -- serial and 2-worker sweeps over the same
       faulty grid report identical fault counters;
    4. crash containment -- a sweep with one crashing worker finishes
       under ``--keep-going`` with every healthy point completed and the
       crasher reported as a structured error.
    """
    import tempfile

    from repro.faults import FaultConfig, FaultPlan
    from repro.runner import Sweep, run_sweep
    from repro.runner.faultfns import crash_point
    from repro.runner.points import lifetime_point
    from repro.sim.baselines import build_tlc_baseline
    from repro.sim.engine import run_lifetime
    from repro.workloads.mobile import MobileWorkload, WorkloadConfig

    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))
        if not ok:
            failures.append(name)

    print("fault-injection selftest")
    config = FaultConfig(
        block_infant_mortality=0.05,
        transient_read_rate=0.4,
        power_loss_rate=0.1,
        cloud_outage_rate=0.05,
    )
    targets = {"main": 8}
    plans = [
        FaultPlan.generate(config, seed=args.seed, horizon_days=180, targets=targets)
        for _ in range(2)
    ]
    check(
        "plan determinism",
        plans[0].digest() == plans[1].digest()
        and plans[0].event_log() == plans[1].event_log(),
        f"{len(plans[0])} events, digest {plans[0].digest()[:12]}",
    )

    summaries = MobileWorkload(
        WorkloadConfig(mix="typical", days=180, seed=args.seed)
    ).daily_summaries()
    zero_plan = FaultPlan.generate(
        FaultConfig(), seed=args.seed, horizon_days=180, targets=targets
    )
    bare = run_lifetime(build_tlc_baseline(32.0), summaries)
    gated = run_lifetime(build_tlc_baseline(32.0), summaries, fault_plan=zero_plan)
    check(
        "zero-rate transparency",
        bare.samples == gated.samples and gated.faults.total_events == 0,
        f"{len(bare.samples)} samples compared",
    )

    faults = {"block_infant_mortality": 0.05, "transient_read_rate": 0.4,
              "power_loss_rate": 0.1, "cloud_outage_rate": 0.05}
    grid = tuple(
        {"build": "tlc_baseline", "capacity_gb": 32.0, "mix": "typical", "days": 180,
         "workload_seed": args.seed + i, "faults": faults}
        for i in range(3)
    )
    sweep = Sweep(name="faults-selftest", fn=lifetime_point, grid=grid,
                  base_seed=args.seed)
    serial = run_sweep(sweep, jobs=1)
    parallel = run_sweep(sweep, jobs=2)
    serial_counters = [p.value.faults.as_dict() for p in serial.points]
    parallel_counters = [p.value.faults.as_dict() for p in parallel.points]
    total_events = sum(p.value.faults.total_events for p in serial.points)
    check(
        "serial == parallel replay",
        serial_counters == parallel_counters and total_events > 0,
        f"{total_events} fault events",
    )

    with tempfile.TemporaryDirectory() as tmp:
        crash_grid = tuple(
            {"index": i, "crash": i == 1} for i in range(3)
        )
        crash_sweep = Sweep(name="faults-selftest-crash", fn=crash_point,
                            grid=crash_grid, base_seed=args.seed)
        outcome = run_sweep(crash_sweep, jobs=2, cache_dir=tmp, keep_going=True)
        check(
            "crash containment",
            len(outcome.points) == 2
            and len(outcome.errors) == 1
            and outcome.errors[0].kind == "crash"
            and outcome.errors[0].index == 1,
            f"{len(outcome.points)} ok, {len(outcome.errors)} error(s), "
            f"{outcome.pool_rebuilds} pool rebuild(s)",
        )

    if failures:
        print(f"selftest FAILED: {', '.join(failures)}")
        return 1
    print("selftest passed")
    return 0


def _cmd_chaos_labels(args: argparse.Namespace) -> int:
    """``repro chaos labels``: the closed crash-point registry."""
    from repro.chaos import CRASH_POINTS, MATRIX_TARGETS

    covered = {
        label: sorted(t for t, labels in MATRIX_TARGETS.items() if label in labels)
        for label in CRASH_POINTS
    }
    rows = [
        [label, ", ".join(covered[label]) or "(uncovered)"]
        for label in CRASH_POINTS
    ]
    print(format_table(["crash point", "matrix target(s)"], rows,
                       title=f"{len(CRASH_POINTS)} labeled crash points "
                             f"(arm: REPRO_CHAOS_CRASH=<label>[:hits])"))
    return 0


def _cmd_chaos_target(args: argparse.Namespace) -> int:
    """``repro chaos target``: one matrix workload, canonical stdout.

    This is the subprocess side of the crash matrix: the driver runs it
    uninterrupted for a baseline, armed to die at a label, and again
    over the crashed state dir -- the canonical JSON printed here is
    what must come back bit-identical.
    """
    from repro.chaos import run_target
    from repro.chaos.driver import canonical

    print(canonical(run_target(args.target, args.state_dir)))
    return 0


def _cmd_chaos_matrix(args: argparse.Namespace) -> int:
    """``repro chaos matrix``: kill at every label, assert identical resume."""
    from repro.chaos import MATRIX_TARGETS, run_crash_matrix

    targets = args.targets or sorted(MATRIX_TARGETS)
    cells = sum(len(MATRIX_TARGETS[t]) for t in targets)
    print(f"crash matrix: {len(targets)} target(s), {cells} cell(s)")

    def on_row(row) -> None:
        mark = "ok" if row.ok else "FAIL"
        detail = "" if row.ok else f": {row.detail}"
        print(f"  [{mark}] {row.target} @ {row.label}{detail}", flush=True)

    report = run_crash_matrix(targets, base_dir=args.base_dir, on_row=on_row)
    failed = [row for row in report.rows if not row.ok]
    if failed:
        print(f"crash matrix FAILED: {len(failed)} of {len(report.rows)} cell(s)")
        return 1
    print(f"crash matrix passed: every crash resumed bit-identically "
          f"({len(report.rows)} cell(s))")
    return 0


def _store_path(raw: str):
    """Resolve a store argument: the file itself, or a cache dir holding
    one (the ``columns.rcs`` the result cache writes)."""
    from pathlib import Path

    from repro.runner.cache import ResultCache

    path = Path(raw)
    if path.is_dir():
        path = path / ResultCache.STORE_FILE
    if not path.exists():
        raise SystemExit(f"no column store at {path}")
    return path


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    """``repro store inspect``: stats + integrity verdict, read-only."""
    from repro.store import ColumnStore

    store = ColumnStore(_store_path(args.store), mode="read")
    stats = store.stats().to_dict()
    rows = [[key, str(value)] for key, value in stats.items()]
    print(format_table(["field", "value"], rows, title="column store"))
    problems = store.verify()
    if problems:
        print(f"verify: {len(problems)} problem(s)")
        for problem in problems[:20]:
            print(f"  {problem}")
        return 1
    print("verify: clean (every frame and entry validated)")
    return 0


def _cmd_store_scan(args: argparse.Namespace) -> int:
    """``repro store scan``: stream keys/columns, or one column's
    distribution -- quantiles answered off-disk, no pickles rehydrated."""
    import numpy as np

    from repro.store import ColumnStore, StoreError

    store = ColumnStore(_store_path(args.store), mode="read")
    if args.column is None:
        rows = []
        for key in store.keys():
            for name in store.columns(key):
                rows.append([key[:16], name])
        print(format_table(
            ["key (prefix)", "column"], rows,
            title=f"{len(store.keys())} key(s)",
        ))
        return 0
    try:
        values = store.column_values(args.column)
    except StoreError as err:
        raise SystemExit(f"scan failed: {err}")
    if values.size == 0:
        print(f"column {args.column!r}: no values")
        return 1
    quantiles = [0.5, 0.9, 0.99]
    rows = [
        ["values", str(values.size)],
        ["min", f"{values.min():.6g}"],
        ["max", f"{values.max():.6g}"],
        *[
            [f"p{int(q * 100)}", f"{float(np.quantile(values, q)):.6g}"]
            for q in quantiles
        ],
    ]
    print(format_table(["stat", "value"], rows, title=f"column {args.column!r}"))
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    """``repro store compact``: rewrite with live entries only."""
    from repro.store import ColumnStore

    store = ColumnStore(_store_path(args.store), mode="append")
    report = store.compact(codec=args.codec)
    saved = report["before_bytes"] - report["after_bytes"]
    print(
        f"compacted {store.path}: {report['before_bytes']} -> "
        f"{report['after_bytes']} bytes ({saved:+d} reclaimed), "
        f"{report['keys']} key(s), {report['dropped_entries']} "
        f"unreadable entr(ies) dropped"
    )
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """``repro obs report``: render observability artifacts as tables."""
    from repro.obs import format_obs_report, load_run_artifacts

    snapshot, events = load_run_artifacts(args.run)
    print(format_obs_report(snapshot, events, top=args.top))
    return 0 if snapshot is not None or events is not None else 1


def _parse_gateway(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--gateway must be host:port, got {value!r}"
        )
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the gateway until SIGINT/SIGTERM, then drain."""
    import asyncio
    import signal as _signal
    from pathlib import Path

    from repro.serve import (
        ClientQuota,
        Gateway,
        GatewayConfig,
        HealthThresholds,
    )

    config = GatewayConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        max_running=args.max_running,
        max_queue=args.max_queue,
        job_workers=args.job_workers,
        retries=args.retries,
        timeout_s=args.timeout,
        durability=args.durability,
        rate_per_s=args.rate,
        burst=args.burst,
        quota=ClientQuota(
            max_concurrent=args.max_concurrent,
            max_units_per_window=args.max_units_per_window,
            window_s=args.window,
        ),
        thresholds=HealthThresholds(
            max_error_rate=args.max_error_rate,
        ),
    )

    async def _serve() -> int:
        gateway = Gateway(config)
        host, port = await gateway.start()
        if args.port_file:
            # written atomically so a watcher never reads a half-written
            # port; the smoke script and restart tests key off this file
            tmp = Path(args.port_file).with_suffix(".tmp")
            tmp.write_text(f"{port}\n")
            tmp.replace(args.port_file)
        print(f"gateway listening on {host}:{port} "
              f"(state: {args.state_dir}, "
              f"{len(gateway.recovered)} job(s) recovered)", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        server_task = asyncio.create_task(gateway.serve_forever())
        await stop.wait()
        print("draining: no new connections, finishing in-flight jobs",
              flush=True)
        server_task.cancel()
        await gateway.stop()
        return 0

    return asyncio.run(_serve())


def _cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: one job to a running gateway; optional wait.

    Exit codes (script-friendly, same ladder as ``lifetime``): 0 job
    accepted (or, with ``--wait``, done and complete), 1 done but
    partial, 2 failed/cancelled, 3 rejected by admission control.
    """
    import asyncio
    import json as _json

    from repro.serve import GatewayClient, GatewayError

    host, port = args.gateway
    if args.kind == "population":
        params = {
            "devices": args.devices,
            "days": int(args.years * 365),
            "capacity_gb": args.capacity_gb,
            "seed": args.seed,
            "build": args.build,
            "chunk": args.chunk,
        }
        if args.shard_size:
            params["shard_size"] = args.shard_size
    else:
        with open(args.grid_json, encoding="utf-8") as handle:
            grid = _json.load(handle)
        params = {"fn": args.fn, "grid": grid, "base_seed": args.seed}

    async def _submit() -> int:
        client = GatewayClient(host, port, timeout_s=args.poll_timeout)
        status, body, headers = await client.submit(
            args.client, args.kind, params
        )
        if status not in (200, 202):
            retry = headers.get("retry-after", "?")
            print(f"rejected ({status}): {body.get('error', body)} "
                  f"[retry-after: {retry}s]")
            return 3
        job_id = body["job_id"]
        dedup = " (deduplicated)" if body.get("deduplicated") else ""
        print(f"job {job_id} {body['state']}{dedup}")
        if not args.wait:
            return 0
        view = await client.wait(job_id, timeout_s=args.wait_timeout)
        print(_json.dumps(view, indent=2, sort_keys=True))
        if view["state"] == "done":
            result = view.get("result") or {}
            return 0 if result.get("complete", True) else 1
        return 2

    try:
        return asyncio.run(_submit())
    except GatewayError as exc:
        print(f"error: {exc}")
        return 3


def _cmd_jobs(args: argparse.Namespace) -> int:
    """``repro jobs``: list/inspect/cancel jobs or poll gateway health."""
    import asyncio
    import json as _json

    from repro.serve import GatewayClient, GatewayError

    host, port = args.gateway

    async def _jobs() -> int:
        client = GatewayClient(host, port)
        if args.health:
            status, body, _ = await client.health()
            print(_json.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        if args.cancel:
            status, body, _ = await client.cancel(args.cancel)
            print(_json.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 202 else 1
        if args.id:
            status, body, _ = await client.job(args.id)
            print(_json.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        _, body, _ = await client.jobs()
        rows = [
            [j["job_id"], j["client"], j["kind"], j["state"],
             f"{j['progress'].get('shards_done', 0)}"
             f"/{j['progress'].get('shards_total', '?')}"
             if j["progress"] else "-"]
            for j in body["jobs"]
        ]
        print(format_table(
            ["job", "client", "kind", "state", "progress"], rows,
            title=f"{len(rows)} job(s) at {host}:{port}"))
        return 0

    try:
        return asyncio.run(_jobs())
    except GatewayError as exc:
        print(f"error: {exc}")
        return 3


def _cmd_experiments(args: argparse.Namespace) -> None:
    from repro.analysis.registry import EXPERIMENTS

    rows = [
        [e.experiment_id, e.title, e.paper_source, e.bench_path]
        for e in EXPERIMENTS
    ]
    print(format_table(["id", "experiment", "paper", "bench"], rows,
                       title=f"{len(EXPERIMENTS)} reproducible experiments "
                             f"(run: pytest <bench> --benchmark-only -s)"))


def _cmd_classify(args: argparse.Namespace) -> None:
    from repro.classify.auto_delete import train_auto_delete
    from repro.classify.classifier import train_classifier
    from repro.classify.corpus import CorpusConfig, generate_corpus

    corpus = generate_corpus(CorpusConfig(n_files=args.files), seed=args.seed)
    _, metrics = train_classifier(corpus, now_years=2.0, seed=args.seed)
    _, auto = train_auto_delete(corpus, now_years=2.0, seed=args.seed)
    rows = [
        ["criticality accuracy", f"{metrics.accuracy:.3f}"],
        ["critical precision / recall",
         f"{metrics.precision_critical:.3f} / {metrics.recall_critical:.3f}"],
        ["files demoted to SPARE", f"{metrics.spare_fraction:.3f}"],
        ["critical files demoted", f"{metrics.critical_demotion_rate:.3f}"],
        ["auto-delete accuracy (paper cites 79%)", f"{auto.accuracy:.3f}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"classifiers on a {args.files}-file corpus"))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SOS (HotOS '23) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("density", help="density/carbon arithmetic (§4.1-§4.2)")
    p.add_argument("--spare-fraction", type=float, default=0.5)
    p.set_defaults(func=_cmd_density)

    p = sub.add_parser("project", help="2021-2030 carbon projection (E2)")
    p.add_argument("--growth", type=float, default=0.31)
    p.set_defaults(func=_cmd_project)

    p = sub.add_parser("market", help="market shares + fleet churn (E1/E14)")
    p.set_defaults(func=_cmd_market)

    p = sub.add_parser("credits", help="carbon-credit surcharge (E4)")
    p.add_argument("--price", type=float, default=111.0)
    p.add_argument("--ssd-price", type=float, default=45.0)
    p.set_defaults(func=_cmd_credits)

    p = sub.add_parser("lifetime", help="lifetime engine: SOS vs baselines (E11)")
    p.add_argument("--mix", default="typical",
                   choices=("light", "typical", "heavy", "adversarial"))
    p.add_argument("--years", type=int, default=3)
    p.add_argument("--capacity-gb", type=float, default=64.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the device sweep (1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="sweep result cache directory (default: no cache)")
    p.add_argument("--bench-json", default=None, metavar="PATH",
                   help="write per-point wall times (BENCH_runner.json format)")
    p.add_argument("--retries", type=int, default=0,
                   help="re-attempts per failed point (exponential backoff)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-point wall-clock limit (parallel runs only)")
    p.add_argument("--keep-going", action="store_true",
                   help="report failed points as structured errors instead "
                        "of aborting the sweep")
    p.add_argument("--durability", default="rename",
                   choices=("none", "rename", "fsync"),
                   help="cache write durability: none (in place; CRC catches "
                        "crash-torn records), rename (atomic tmp+rename, "
                        "default), fsync (rename + fsync of file and parent "
                        "dir)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write the deterministic JSONL event trace here")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="write the merged metrics snapshot here "
                        "(repro.obs.metrics/v1)")
    p.add_argument("--profile", default=None, metavar="PATH",
                   help="profile the sweep with cProfile and dump stats here "
                        "(coordinator + serial points; workers are separate "
                        "processes)")
    p.set_defaults(func=_cmd_lifetime)

    p = sub.add_parser(
        "population",
        help="sharded fleet engine: wear distribution over a population (E16)",
    )
    p.add_argument("--devices", "--users", type=int, default=200,
                   dest="devices", help="population size (devices)")
    p.add_argument("--years", type=float, default=2.5)
    p.add_argument("--capacity-gb", type=float, default=64.0)
    p.add_argument("--build", default="tlc_baseline",
                   choices=("tlc_baseline", "qlc_baseline", "plc_naive", "sos"))
    p.add_argument("--seed", type=int, default=606)
    p.add_argument("--shard-size", type=int, default=0,
                   help="devices per sweep point (cache/retry/timeout unit; "
                        "0 = same as --chunk)")
    p.add_argument("--chunk", type=int, default=50,
                   help="devices per vectorized batch-engine pass inside a "
                        "shard (bounds worker memory; results are chunk "
                        "invariant)")
    p.add_argument("--exact-cap", type=int, default=100_000,
                   help="fleets up to this size keep per-device wear values "
                        "(bit-exact quantiles); larger fleets use histogram "
                        "estimates")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the shard sweep (1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="shard result cache directory (default: no cache); "
                        "an interrupted fleet resumes from completed shards")
    p.add_argument("--retries", type=int, default=0,
                   help="re-attempts per failed shard (exponential backoff)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-shard wall-clock limit (parallel runs only)")
    p.add_argument("--keep-going", action="store_true",
                   help="report failed shards as structured errors instead "
                        "of aborting the fleet")
    p.add_argument("--durability", default="rename",
                   choices=("none", "rename", "fsync"),
                   help="shard cache write durability (see lifetime "
                        "--durability)")
    p.add_argument("--compare-scalar", action="store_true",
                   help="also run the per-device scalar engine and verify "
                        "the sharded wear values match it (exact mode only)")
    p.add_argument("--fidelity", default="epoch", choices=("epoch", "ftl"),
                   help="device simulation fidelity: 'epoch' runs the batched "
                        "lifetime model, 'ftl' replays every device through "
                        "the page-mapped FTL (GC, wear leveling, per-block "
                        "PEC) on the analytic fast path")
    p.add_argument("--bench-json", default=None, metavar="PATH",
                   help="write per-point wall times (BENCH_runner.json format)")
    p.set_defaults(func=_cmd_population)

    p = sub.add_parser("faults", help="fault-injection utilities")
    faults_sub = p.add_subparsers(dest="faults_command", required=True)
    p = faults_sub.add_parser(
        "selftest", help="deterministic fault-plan replay + crash-containment smoke"
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("chaos", help="fs/crash fault-injection utilities")
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)
    p = chaos_sub.add_parser("labels", help="list the crash-point registry")
    p.set_defaults(func=_cmd_chaos_labels)
    p = chaos_sub.add_parser(
        "target", help="run one deterministic matrix workload (driver-facing)"
    )
    p.add_argument("target", choices=("fleet", "journal", "store", "sweep"))
    p.add_argument("--state-dir", required=True,
                   help="cache/journal directory the workload persists into")
    p.set_defaults(func=_cmd_chaos_target)
    p = chaos_sub.add_parser(
        "matrix",
        help="kill a sweep/fleet/journal at every labeled crash point and "
             "assert the resumed output is bit-identical",
    )
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="targets to run: fleet, journal, store, sweep "
                        "(default: all)")
    p.add_argument("--base-dir", default=None,
                   help="working directory for matrix state "
                        "(default: a fresh temp dir)")
    p.set_defaults(func=_cmd_chaos_matrix)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "report", help="render metrics/trace artifacts from a run directory"
    )
    p.add_argument("run", help="run directory (metrics.json / trace.jsonl) "
                               "or a single artifact path")
    p.add_argument("--top", type=int, default=10,
                   help="counters to show (largest first)")
    p.set_defaults(func=_cmd_obs_report)

    p = sub.add_parser("store", help="columnar result store utilities")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser(
        "inspect", help="stats + integrity verification (read-only)"
    )
    p.add_argument("store", help="store file or cache dir holding columns.rcs")
    p.set_defaults(func=_cmd_store_inspect)
    p = store_sub.add_parser(
        "scan", help="list keys/columns, or one column's off-disk quantiles"
    )
    p.add_argument("store", help="store file or cache dir holding columns.rcs")
    p.add_argument(
        "--column", default=None,
        help="scan this column and print its distribution (e.g. obs.wear)",
    )
    p.set_defaults(func=_cmd_store_scan)
    p = store_sub.add_parser("compact", help="rewrite with live entries only")
    p.add_argument("store", help="store file or cache dir holding columns.rcs")
    p.add_argument(
        "--codec", default=None, choices=("none", "zlib", "lzma"),
        help="recompress with this codec (default: keep the store's)",
    )
    p.set_defaults(func=_cmd_store_compact)

    p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service gateway (repro.serve)",
    )
    p.add_argument("--state-dir", required=True,
                   help="journal + result-cache directory; a restarted "
                        "gateway resumes interrupted jobs from here")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9178,
                   help="listen port (0 = ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening "
                        "(for scripts that start the gateway on port 0)")
    p.add_argument("--max-running", type=int, default=2,
                   help="jobs executing concurrently")
    p.add_argument("--max-queue", type=int, default=16,
                   help="admitted jobs the queue holds before answering "
                        "429 backpressure")
    p.add_argument("--job-workers", type=int, default=2,
                   help="worker processes per job's sweep")
    p.add_argument("--retries", type=int, default=2,
                   help="per-point retry budget inside each job")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-point timeout inside each job")
    p.add_argument("--durability", default="rename",
                   choices=("none", "rename", "fsync"),
                   help="journal + result-cache write durability (see "
                        "lifetime --durability)")
    p.add_argument("--rate", type=float, default=10.0,
                   help="sustained submissions/second per client")
    p.add_argument("--burst", type=float, default=20.0,
                   help="submission burst a quiet client may save up")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="queued-or-running jobs per client")
    p.add_argument("--max-units-per-window", type=int, default=1_000_000,
                   help="devices/points a client may admit per window")
    p.add_argument("--window", type=float, default=60.0,
                   help="sliding quota window (seconds)")
    p.add_argument("--max-error-rate", type=float, default=0.5,
                   help="rolling job failure rate beyond which the "
                        "gateway stops admitting (sheds) new work")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running gateway")
    p.add_argument("kind", choices=("population", "sweep"))
    p.add_argument("--gateway", type=_parse_gateway, default=("127.0.0.1", 9178),
                   help="gateway address as host:port")
    p.add_argument("--client", default="cli",
                   help="client id the gateway meters quotas against")
    p.add_argument("--devices", type=int, default=200,
                   help="population size (population jobs)")
    p.add_argument("--years", type=float, default=2.5)
    p.add_argument("--capacity-gb", type=float, default=64.0)
    p.add_argument("--build", default="tlc_baseline",
                   choices=("tlc_baseline", "qlc_baseline", "plc_naive", "sos"))
    p.add_argument("--seed", type=int, default=606)
    p.add_argument("--shard-size", type=int, default=0)
    p.add_argument("--chunk", type=int, default=50)
    p.add_argument("--fn", default="lifetime",
                   help="registered point function (sweep jobs)")
    p.add_argument("--grid-json", default=None, metavar="PATH",
                   help="JSON list of per-point params (sweep jobs)")
    p.add_argument("--wait", action="store_true",
                   help="poll the job to a terminal state and exit "
                        "0 complete / 1 partial / 2 failed")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.add_argument("--poll-timeout", type=float, default=30.0,
                   help="per-request transport timeout")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="inspect a running gateway's jobs")
    p.add_argument("--gateway", type=_parse_gateway, default=("127.0.0.1", 9178),
                   help="gateway address as host:port")
    p.add_argument("--id", default=None, help="show one job in full")
    p.add_argument("--cancel", default=None, metavar="JOB_ID",
                   help="cancel a queued or running job")
    p.add_argument("--health", action="store_true",
                   help="print the /healthz report (exit 1 when shedding)")
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser("experiments", help="list all reproducible experiments")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("classify", help="train + evaluate the classifiers (E9)")
    p.add_argument("--files", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_classify)

    args = parser.parse_args(argv)
    # commands that can fail return an int; display-only commands return None
    return args.func(args) or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
