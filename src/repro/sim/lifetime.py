"""Epoch-aggregated device lifetime model.

Multi-year experiments (E3, E8, E11) cannot run the bit-exact chip --
a 64 GB device sees ~10^13 bit operations over a phone's life -- so this
model aggregates at two levels:

* time: one step per simulated day;
* space: each partition is divided into ``n_groups`` *block groups*
  (~5% of capacity each) that wear, age, retire, and resuscitate as
  units.

Both fidelities share the same parameter tables
(:mod:`repro.flash.reliability`, :mod:`repro.flash.error_model`,
:mod:`repro.ecc.model`), so the epoch model is the analytic closure of
the bit-exact simulator, not a separate theory; the test suite checks
they agree on RBER and failure probabilities at matched operating points.

Wear placement policy per partition:

* ``wear_leveling=True``: writes spread evenly over live groups (plus a
  small WL write-amplification overhead) -- classic SSD behaviour;
* ``wear_leveling=False`` (SOS SPARE): *churn* writes concentrate on a
  hot subset of groups while *new* data appends round-robin to the
  coldest groups -- worn blocks are simply allowed to wear (§4.3).

Group state is stored as structure-of-arrays on the partition (one numpy
array per field) so the daily hot path -- write placement, RBER
evaluation, quality and failure aggregation -- runs as whole-partition
array operations.  :class:`BlockGroup` remains the public per-group
handle: it is a write-through view onto one slot of those arrays, so
tests and callers can keep reading and poking individual groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.policy import ProtectionPolicy
from repro.flash.cell import CellMode
from repro.flash.error_model import cached_error_model
from repro.flash.reliability import endurance_pec
from repro.obs import get_observer

__all__ = [
    "GROUP_STATE_FIELDS",
    "PartitionSpec",
    "BlockGroup",
    "Partition",
    "LifetimeDevice",
]

#: Per-group SoA fields shared by the scalar :class:`Partition` and the
#: batched fleet engine (:mod:`repro.sim.batch`), which stacks the same
#: arrays with a leading device axis.  ``mode_bits`` stands in for the
#: per-group :class:`CellMode`: the technology is fixed by the spec, only
#: the operating bits change under resuscitation.
GROUP_STATE_FIELDS = (
    "capacity_gb",
    "pec",
    "write_time",
    "live_gb",
    "retired",
    "refreshes",
    "mode_bits",
)

#: Extra write volume caused by static wear leveling migrations.
WL_WRITE_OVERHEAD = 0.10

#: Fraction of groups absorbing churn when wear leveling is off.
HOT_GROUP_FRACTION = 0.25


@dataclass(frozen=True, slots=True)
class PartitionSpec:
    """Static configuration of one modelled partition."""

    name: str
    mode: CellMode
    protection: ProtectionPolicy
    capacity_gb: float
    waf: float = 2.5
    wear_leveling: bool = True
    #: RBER ceiling for group health (ECC capability or quality budget)
    max_rber: float = 5e-3
    #: retention horizon for health checks (years)
    health_horizon_years: float = 1.0
    #: reduced-density operating bits ladder for resuscitation (§4.3)
    resuscitation_bits: tuple[int, ...] = ()
    #: periodic refresh (scrub) when quality forecast violates the floor
    scrub_enabled: bool = False
    scrub_quality_floor: float = 0.85
    #: BER->quality exponent for the partition's data (P-frame proxy)
    quality_sensitivity: float = 800.0
    n_groups: int = 20


class BlockGroup:
    """A cohort of blocks wearing and aging together.

    View onto one slot of the owning partition's state arrays: reads and
    writes go straight through, so mutating a group (as tests do when
    staging wear) is equivalent to mutating the partition state.
    """

    __slots__ = ("_partition", "_index")

    def __init__(self, partition: "Partition", index: int) -> None:
        self._partition = partition
        self._index = index

    # -- array-backed fields ----------------------------------------------------

    @property
    def mode(self) -> CellMode:
        return self._partition._modes[self._index]

    @mode.setter
    def mode(self, value: CellMode) -> None:
        self._partition._set_mode(self._index, value)

    @property
    def capacity_gb(self) -> float:
        return float(self._partition._capacity[self._index])

    @capacity_gb.setter
    def capacity_gb(self, value: float) -> None:
        self._partition._capacity[self._index] = value

    @property
    def pec(self) -> float:
        return float(self._partition._pec[self._index])

    @pec.setter
    def pec(self, value: float) -> None:
        self._partition._pec[self._index] = value

    @property
    def mean_write_time(self) -> float:
        """Mean simulation time at which live data was written."""
        return float(self._partition._write_time[self._index])

    @mean_write_time.setter
    def mean_write_time(self, value: float) -> None:
        self._partition._write_time[self._index] = value

    @property
    def live_gb(self) -> float:
        return float(self._partition._live[self._index])

    @live_gb.setter
    def live_gb(self, value: float) -> None:
        self._partition._live[self._index] = value

    @property
    def retired(self) -> bool:
        return bool(self._partition._retired[self._index])

    @retired.setter
    def retired(self, value: bool) -> None:
        self._partition._retired[self._index] = value

    @property
    def refreshes(self) -> int:
        return int(self._partition._refreshes[self._index])

    @refreshes.setter
    def refreshes(self, value: int) -> None:
        self._partition._refreshes[self._index] = value

    # -- behaviour --------------------------------------------------------------

    def data_age(self, now: float) -> float:
        """Mean retention age of the group's live data."""
        if self.live_gb <= 0:
            return 0.0
        return max(0.0, now - self.mean_write_time)

    def absorb_write(self, gb: float, now: float, waf: float) -> None:
        """Account host+amplified writes into this group."""
        if self.retired or self.capacity_gb <= 0 or gb <= 0:
            return
        self._partition._absorb(np.array([self._index]), gb, now, waf)

    def rber(self, now: float, extra_age: float = 0.0) -> float:
        """Predicted RBER of the group's data (optionally looking ahead)."""
        model = cached_error_model(self.mode)
        return model.rber(pec=self.pec, years_since_write=self.data_age(now) + extra_age)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockGroup(mode={self.mode.name}, capacity_gb={self.capacity_gb:.3f}, "
            f"pec={self.pec:.1f}, live_gb={self.live_gb:.3f}, retired={self.retired})"
        )


class Partition:
    """Runtime state of one partition in the epoch model."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec
        n = spec.n_groups
        per_group = spec.capacity_gb / n
        self._capacity = np.full(n, per_group, dtype=float)
        self._pec = np.zeros(n, dtype=float)
        self._write_time = np.zeros(n, dtype=float)
        self._live = np.zeros(n, dtype=float)
        self._retired = np.zeros(n, dtype=bool)
        self._refreshes = np.zeros(n, dtype=np.int64)
        self._modes: list[CellMode] = [spec.mode] * n
        #: lazily maintained: the single CellMode shared by every group, or
        #: None once resuscitation (or a test) makes modes heterogeneous
        self._uniform_mode: CellMode | None = spec.mode
        self.groups = [BlockGroup(self, i) for i in range(n)]
        self._cold_cursor = 0
        self.refresh_writes_gb = 0.0
        self.retired_count = 0
        self.resuscitated_count = 0
        self.uncorrectable_events = 0.0

    # -- capacity ---------------------------------------------------------------

    def live_groups(self) -> list[BlockGroup]:
        """Groups still in service."""
        return [g for g, dead in zip(self.groups, self._retired) if not dead]

    def _live_indices(self) -> np.ndarray:
        return np.flatnonzero(~self._retired)

    def _holder_indices(self) -> np.ndarray:
        """Live groups currently holding data."""
        return np.flatnonzero(~self._retired & (self._live > 0))

    def capacity_gb(self) -> float:
        """Current usable capacity (shrinks with retirement, §4.3)."""
        return float(self._capacity[~self._retired].sum())

    def live_data_gb(self) -> float:
        """Live data currently resident."""
        return float(self._live[~self._retired].sum())

    def mean_pec(self) -> float:
        """Capacity-weighted mean PEC over live groups."""
        alive = ~self._retired
        total = self._capacity[alive].sum()
        if total == 0:
            return 0.0
        return float((self._pec[alive] * self._capacity[alive]).sum() / total)

    def max_pec(self) -> float:
        """Highest group PEC."""
        alive = ~self._retired
        if not alive.any():
            return 0.0
        return float(self._pec[alive].max())

    def wear_used_fraction(self) -> float:
        """Mean PEC over rated endurance of the operating mode."""
        return self.mean_pec() / endurance_pec(self.spec.mode)

    # -- SoA state exchange -----------------------------------------------------

    def export_group_state(self) -> dict[str, np.ndarray]:
        """Copy the per-group SoA state (:data:`GROUP_STATE_FIELDS`).

        The batched fleet engine stacks these arrays across devices; the
        pair with :meth:`import_group_state` round-trips a partition
        through the batch representation exactly.
        """
        return {
            "capacity_gb": self._capacity.copy(),
            "pec": self._pec.copy(),
            "write_time": self._write_time.copy(),
            "live_gb": self._live.copy(),
            "retired": self._retired.copy(),
            "refreshes": self._refreshes.copy(),
            "mode_bits": np.array(
                [m.operating_bits for m in self._modes], dtype=np.int64
            ),
        }

    def import_group_state(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`export_group_state`."""
        n = self.spec.n_groups
        for name in GROUP_STATE_FIELDS:
            if np.shape(state[name]) != (n,):
                raise ValueError(
                    f"state field {name!r} has shape {np.shape(state[name])}, "
                    f"expected ({n},)"
                )
        self._capacity[:] = state["capacity_gb"]
        self._pec[:] = state["pec"]
        self._write_time[:] = state["write_time"]
        self._live[:] = state["live_gb"]
        self._retired[:] = state["retired"]
        self._refreshes[:] = state["refreshes"]
        technology = self.spec.mode.technology
        self._modes = [
            CellMode(technology, int(bits)) for bits in state["mode_bits"]
        ]
        first = self._modes[0]
        self._uniform_mode = (
            first if all(m == first for m in self._modes) else None
        )

    # -- writes --------------------------------------------------------------------

    def _set_mode(self, index: int, mode: CellMode) -> None:
        self._modes[index] = mode
        self._uniform_mode = mode if all(m == mode for m in self._modes) else None

    def _absorb(self, idx: np.ndarray, gb: float, now: float, waf: float) -> None:
        """Account ``gb`` of host+amplified writes into *each* group in ``idx``.

        ``idx`` must name non-retired groups with positive capacity and
        ``gb`` must be positive (both hold for every internal caller, and
        the guard in :meth:`BlockGroup.absorb_write` covers the view path),
        so ``new_live`` is strictly positive and the write-time blend needs
        no zero-division guard.
        """
        cap = self._capacity[idx]
        self._pec[idx] += gb * waf / cap
        new_live = np.minimum(cap, self._live[idx] + gb)
        # blend write times: new bytes are written "now"
        old_weight = np.maximum(0.0, new_live - gb) / new_live
        self._write_time[idx] = old_weight * self._write_time[idx] + (1.0 - old_weight) * now
        self._live[idx] = new_live

    def host_write(self, gb: float, now: float, churn: bool) -> None:
        """Apply host writes; churn concentrates on hot groups if WL off."""
        if gb <= 0:
            return
        live = self._live_indices()
        if live.size == 0:
            return
        waf = self.spec.waf
        if self.spec.wear_leveling:
            waf *= 1.0 + WL_WRITE_OVERHEAD
            self._absorb(live, gb / live.size, now, waf)
            return
        if churn:
            hot_count = max(1, int(live.size * HOT_GROUP_FRACTION))
            order = np.argsort(-self._pec[live], kind="stable")
            hot = live[order[:hot_count]]
            self._absorb(hot, gb / hot.size, now, waf)
        else:
            # append new data round-robin over the coldest groups
            target = live[self._cold_cursor % live.size]
            self._cold_cursor += 1
            self._absorb(np.array([target]), gb, now, waf)

    def host_delete(self, gb: float) -> None:
        """Remove live data (spread proportionally over groups)."""
        total = self.live_data_gb()
        if total <= 0 or gb <= 0:
            return
        fraction = min(1.0, gb / total)
        alive = ~self._retired
        self._live[alive] *= 1.0 - fraction

    # -- quality / reliability --------------------------------------------------------

    def _rber_many(
        self, idx: np.ndarray, now: float, extra_age: float = 0.0, from_data_age: bool = True
    ) -> np.ndarray:
        """RBER for each group in ``idx``, batched per operating mode."""
        if from_data_age:
            ages = np.where(
                self._live[idx] > 0, np.maximum(0.0, now - self._write_time[idx]), 0.0
            ) + extra_age
        else:
            ages = np.full(idx.size, extra_age)
        if self._uniform_mode is not None:
            return cached_error_model(self._uniform_mode).rber_many(self._pec[idx], ages)
        out = np.empty(idx.size, dtype=float)
        by_mode: dict[CellMode, list[int]] = {}
        for pos, i in enumerate(idx):
            by_mode.setdefault(self._modes[i], []).append(pos)
        for mode, positions in by_mode.items():
            model = cached_error_model(mode)
            out[positions] = model.rber_many(self._pec[idx[positions]], ages[positions])
        return out

    def worst_group_rber(self, now: float, horizon: float = 0.0) -> float:
        """Highest predicted RBER among live data-holding groups."""
        holders = self._holder_indices()
        if holders.size == 0:
            return 0.0
        return float(self._rber_many(holders, now, extra_age=horizon).max())

    def mean_quality(self, now: float) -> float:
        """Data-weighted quality proxy after the partition's protection."""
        holders = self._holder_indices()
        if holders.size == 0:
            return 1.0
        residual = self.spec.protection.residual_ber_many(self._rber_many(holders, now))
        quality = np.exp(-self.spec.quality_sensitivity * residual)
        live = self._live[holders]
        return float((quality * live).sum() / live.sum())

    def expected_uncorrectable(self, now: float, page_bits: int = 4096 * 8) -> float:
        """Expected uncorrectable-page events across live data, this instant."""
        holders = self._holder_indices()
        if holders.size == 0:
            return 0.0
        pages = self._live[holders] * 1e9 * 8 / page_bits
        p_fail = self.spec.protection.page_failure_prob_many(
            self._rber_many(holders, now), page_bits
        )
        return float((pages * p_fail).sum())

    # -- fault injection ---------------------------------------------------------------

    def retire_group(self, index: int) -> bool:
        """Force-retire one group (infant-mortality fault injection).

        Unlike wear-driven retirement, the death is not predicted at the
        health horizon -- the group simply dies, taking its live data
        with it (the epoch model has no per-page rescue path).  Returns
        False when the group was already retired.
        """
        if self._retired[index]:
            return False
        self._retired[index] = True
        self._live[index] = 0.0
        self.retired_count += 1
        return True

    def power_loss_rewrite(self, index: int, now: float) -> float:
        """Recover a power-loss-interrupted program on one group.

        The interrupted write unit (modelled as up to 5% of the group's
        capacity, bounded by its live data) is torn and must be
        re-programmed, costing extra wear and refresh writes.  Returns
        the GB re-written (0.0 when the group holds nothing to tear).
        """
        if self._retired[index] or self._capacity[index] <= 0:
            return 0.0
        gb = min(float(self._live[index]), float(self._capacity[index]) * 0.05)
        if gb <= 0.0:
            return 0.0
        # data age is unchanged: the torn unit was freshly written anyway
        self._pec[index] += gb * self.spec.waf / self._capacity[index]
        self.refresh_writes_gb += gb
        return gb

    # -- maintenance --------------------------------------------------------------------

    def maintain(self, now: float, scrub_allowed: bool = True) -> None:
        """Health checks: scrub, retire, resuscitate (order matters:
        scrub first so a refresh can save a group from retirement).

        ``scrub_allowed=False`` defers the rescue pass (fault plans use
        it to model repair sources being unreachable) while the
        retire/resuscitate health check still runs -- degraded media must
        keep being managed even when it cannot be refreshed.
        """
        with get_observer().span("lifetime.maintain"):
            if self.spec.scrub_enabled and scrub_allowed:
                self._scrub(now)
            self._health_check(now)

    def _scrub(self, now: float) -> None:
        holders = self._holder_indices()
        if holders.size == 0:
            return
        look_ahead = self._rber_many(
            holders, now, extra_age=self.spec.health_horizon_years
        )
        residual = self.spec.protection.residual_ber_many(look_ahead)
        quality = np.exp(-self.spec.quality_sensitivity * residual)
        refresh = holders[quality < self.spec.scrub_quality_floor]
        if refresh.size == 0:
            return
        # rewrite each group's live data fresh (costs one group PEC
        # worth of writes somewhere in the partition)
        live = self._live[refresh]
        self.refresh_writes_gb += float(live.sum())
        self._pec[refresh] += live * self.spec.waf / self._capacity[refresh]
        self._write_time[refresh] = now
        self._refreshes[refresh] += 1
        get_observer().event(
            "scrub_refresh", t=now, partition=self.spec.name,
            groups=int(refresh.size), gb=float(live.sum()),
        )

    def _health_check(self, now: float) -> None:
        live = self._live_indices()
        if live.size == 0:
            return
        predicted = self._rber_many(
            live, now, extra_age=self.spec.health_horizon_years, from_data_age=False
        )
        obs = get_observer()
        for i in live[predicted > self.spec.max_rber]:
            mode = self._modes[i]
            resuscitated = False
            for bits in self.spec.resuscitation_bits:
                if bits >= mode.operating_bits:
                    continue
                candidate = CellMode(mode.technology, bits)
                cand_rber = cached_error_model(candidate).rber(
                    pec=self._pec[i], years_since_write=self.spec.health_horizon_years
                )
                if cand_rber <= self.spec.max_rber:
                    # density drop: capacity shrinks proportionally; live
                    # data is re-hosted (counted as refresh writes)
                    ratio = bits / mode.operating_bits
                    self.refresh_writes_gb += float(self._live[i])
                    self._capacity[i] *= ratio
                    self._live[i] = min(self._live[i], self._capacity[i])
                    self._set_mode(int(i), candidate)
                    self._write_time[i] = now
                    self.resuscitated_count += 1
                    resuscitated = True
                    obs.event(
                        "block_resuscitated", t=now, partition=self.spec.name,
                        group=int(i), bits=int(bits),
                    )
                    break
            if not resuscitated:
                self._retired[i] = True
                self._live[i] = 0.0
                self.retired_count += 1
                obs.event(
                    "block_retired", t=now, partition=self.spec.name,
                    group=int(i), reason="wear",
                )


class LifetimeDevice:
    """A device of one or more partitions stepped day by day."""

    def __init__(self, partitions: list[PartitionSpec]) -> None:
        if not partitions:
            raise ValueError("at least one partition required")
        self.partitions = {spec.name: Partition(spec) for spec in partitions}
        self.now_years = 0.0

    def partition(self, name: str) -> Partition:
        """Access a partition by name."""
        return self.partitions[name]

    def capacity_gb(self) -> float:
        """Total current usable capacity."""
        return sum(p.capacity_gb() for p in self.partitions.values())

    def step_day(
        self,
        writes: dict[str, tuple[float, float]],
        maintain: bool = True,
        scrub_allowed: bool = True,
    ) -> None:
        """Advance one day.

        Parameters
        ----------
        writes:
            partition name -> (new_data_gb, churn_gb) for the day.
        maintain:
            Run scrub/health maintenance after applying writes.
        scrub_allowed:
            Passed through to :meth:`Partition.maintain`; False defers
            the day's scrub pass (repair source unreachable).
        """
        dt = 1.0 / 365.0
        self.now_years += dt
        for name, (new_gb, churn_gb) in writes.items():
            partition = self.partitions[name]
            partition.host_write(new_gb, self.now_years, churn=False)
            partition.host_write(churn_gb, self.now_years, churn=True)
        if maintain:
            for partition in self.partitions.values():
                partition.maintain(self.now_years, scrub_allowed=scrub_allowed)
