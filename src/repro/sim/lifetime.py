"""Epoch-aggregated device lifetime model.

Multi-year experiments (E3, E8, E11) cannot run the bit-exact chip --
a 64 GB device sees ~10^13 bit operations over a phone's life -- so this
model aggregates at two levels:

* time: one step per simulated day;
* space: each partition is divided into ``n_groups`` *block groups*
  (~5% of capacity each) that wear, age, retire, and resuscitate as
  units.

Both fidelities share the same parameter tables
(:mod:`repro.flash.reliability`, :mod:`repro.flash.error_model`,
:mod:`repro.ecc.model`), so the epoch model is the analytic closure of
the bit-exact simulator, not a separate theory; the test suite checks
they agree on RBER and failure probabilities at matched operating points.

Wear placement policy per partition:

* ``wear_leveling=True``: writes spread evenly over live groups (plus a
  small WL write-amplification overhead) -- classic SSD behaviour;
* ``wear_leveling=False`` (SOS SPARE): *churn* writes concentrate on a
  hot subset of groups while *new* data appends round-robin to the
  coldest groups -- worn blocks are simply allowed to wear (§4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ecc.policy import ProtectionPolicy
from repro.flash.cell import CellMode
from repro.flash.error_model import ErrorModel
from repro.flash.reliability import endurance_pec

__all__ = ["PartitionSpec", "BlockGroup", "Partition", "LifetimeDevice"]

#: Extra write volume caused by static wear leveling migrations.
WL_WRITE_OVERHEAD = 0.10

#: Fraction of groups absorbing churn when wear leveling is off.
HOT_GROUP_FRACTION = 0.25


@dataclass(frozen=True, slots=True)
class PartitionSpec:
    """Static configuration of one modelled partition."""

    name: str
    mode: CellMode
    protection: ProtectionPolicy
    capacity_gb: float
    waf: float = 2.5
    wear_leveling: bool = True
    #: RBER ceiling for group health (ECC capability or quality budget)
    max_rber: float = 5e-3
    #: retention horizon for health checks (years)
    health_horizon_years: float = 1.0
    #: reduced-density operating bits ladder for resuscitation (§4.3)
    resuscitation_bits: tuple[int, ...] = ()
    #: periodic refresh (scrub) when quality forecast violates the floor
    scrub_enabled: bool = False
    scrub_quality_floor: float = 0.85
    #: BER->quality exponent for the partition's data (P-frame proxy)
    quality_sensitivity: float = 800.0
    n_groups: int = 20


@dataclass(slots=True)
class BlockGroup:
    """A cohort of blocks wearing and aging together."""

    mode: CellMode
    capacity_gb: float
    pec: float = 0.0
    #: mean simulation time at which live data was written
    mean_write_time: float = 0.0
    live_gb: float = 0.0
    retired: bool = False
    refreshes: int = 0

    def data_age(self, now: float) -> float:
        """Mean retention age of the group's live data."""
        if self.live_gb <= 0:
            return 0.0
        return max(0.0, now - self.mean_write_time)

    def absorb_write(self, gb: float, now: float, waf: float) -> None:
        """Account host+amplified writes into this group."""
        if self.retired or self.capacity_gb <= 0:
            return
        self.pec += gb * waf / self.capacity_gb
        new_live = min(self.capacity_gb, self.live_gb + gb)
        if new_live > 0:
            # blend write times: new bytes are written "now"
            old_weight = max(0.0, new_live - gb) / new_live
            self.mean_write_time = old_weight * self.mean_write_time + (1 - old_weight) * now
        self.live_gb = new_live

    def rber(self, now: float, extra_age: float = 0.0) -> float:
        """Predicted RBER of the group's data (optionally looking ahead)."""
        model = ErrorModel(self.mode)
        return model.rber(pec=self.pec, years_since_write=self.data_age(now) + extra_age)


class Partition:
    """Runtime state of one partition in the epoch model."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec
        per_group = spec.capacity_gb / spec.n_groups
        self.groups = [BlockGroup(spec.mode, per_group) for _ in range(spec.n_groups)]
        self._cold_cursor = 0
        self.refresh_writes_gb = 0.0
        self.retired_count = 0
        self.resuscitated_count = 0
        self.uncorrectable_events = 0.0

    # -- capacity ---------------------------------------------------------------

    def live_groups(self) -> list[BlockGroup]:
        """Groups still in service."""
        return [g for g in self.groups if not g.retired]

    def capacity_gb(self) -> float:
        """Current usable capacity (shrinks with retirement, §4.3)."""
        return sum(g.capacity_gb for g in self.live_groups())

    def live_data_gb(self) -> float:
        """Live data currently resident."""
        return sum(g.live_gb for g in self.live_groups())

    def mean_pec(self) -> float:
        """Capacity-weighted mean PEC over live groups."""
        live = self.live_groups()
        total = sum(g.capacity_gb for g in live)
        if total == 0:
            return 0.0
        return sum(g.pec * g.capacity_gb for g in live) / total

    def max_pec(self) -> float:
        """Highest group PEC."""
        live = self.live_groups()
        return max((g.pec for g in live), default=0.0)

    def wear_used_fraction(self) -> float:
        """Mean PEC over rated endurance of the operating mode."""
        return self.mean_pec() / endurance_pec(self.spec.mode)

    # -- writes --------------------------------------------------------------------

    def host_write(self, gb: float, now: float, churn: bool) -> None:
        """Apply host writes; churn concentrates on hot groups if WL off."""
        if gb <= 0:
            return
        live = self.live_groups()
        if not live:
            return
        waf = self.spec.waf
        if self.spec.wear_leveling:
            waf *= 1.0 + WL_WRITE_OVERHEAD
            share = gb / len(live)
            for group in live:
                group.absorb_write(share, now, waf)
            return
        if churn:
            hot_count = max(1, int(len(live) * HOT_GROUP_FRACTION))
            hot = sorted(live, key=lambda g: -g.pec)[:hot_count]
            share = gb / len(hot)
            for group in hot:
                group.absorb_write(share, now, waf)
        else:
            # append new data round-robin over the coldest groups
            target = live[self._cold_cursor % len(live)]
            self._cold_cursor += 1
            target.absorb_write(gb, now, waf)

    def host_delete(self, gb: float) -> None:
        """Remove live data (spread proportionally over groups)."""
        total = self.live_data_gb()
        if total <= 0 or gb <= 0:
            return
        fraction = min(1.0, gb / total)
        for group in self.live_groups():
            group.live_gb *= 1.0 - fraction

    # -- quality / reliability --------------------------------------------------------

    def worst_group_rber(self, now: float, horizon: float = 0.0) -> float:
        """Highest predicted RBER among live data-holding groups."""
        holders = [g for g in self.live_groups() if g.live_gb > 0]
        if not holders:
            return 0.0
        return max(g.rber(now, extra_age=horizon) for g in holders)

    def mean_quality(self, now: float) -> float:
        """Data-weighted quality proxy after the partition's protection."""
        holders = [g for g in self.live_groups() if g.live_gb > 0]
        if not holders:
            return 1.0
        total = sum(g.live_gb for g in holders)
        quality = 0.0
        for group in holders:
            residual = self.spec.protection.residual_ber(group.rber(now))
            quality += math.exp(-self.spec.quality_sensitivity * residual) * group.live_gb
        return quality / total

    def expected_uncorrectable(self, now: float, page_bits: int = 4096 * 8) -> float:
        """Expected uncorrectable-page events across live data, this instant."""
        events = 0.0
        for group in self.live_groups():
            if group.live_gb <= 0:
                continue
            pages = group.live_gb * 1e9 * 8 / page_bits
            p_fail = self.spec.protection.page_failure_prob(group.rber(now), page_bits)
            events += pages * p_fail
        return events

    # -- maintenance --------------------------------------------------------------------

    def maintain(self, now: float) -> None:
        """Health checks: scrub, retire, resuscitate (order matters:
        scrub first so a refresh can save a group from retirement)."""
        if self.spec.scrub_enabled:
            self._scrub(now)
        self._health_check(now)

    def _scrub(self, now: float) -> None:
        for group in self.live_groups():
            if group.live_gb <= 0:
                continue
            look_ahead = group.rber(now, extra_age=self.spec.health_horizon_years)
            residual = self.spec.protection.residual_ber(look_ahead)
            quality = math.exp(-self.spec.quality_sensitivity * residual)
            if quality < self.spec.scrub_quality_floor:
                # rewrite the group's live data fresh (costs one group PEC
                # worth of writes somewhere in the partition)
                self.refresh_writes_gb += group.live_gb
                group.pec += group.live_gb * self.spec.waf / group.capacity_gb
                group.mean_write_time = now
                group.refreshes += 1

    def _health_check(self, now: float) -> None:
        for group in self.live_groups():
            model = ErrorModel(group.mode)
            predicted = model.rber(
                pec=group.pec, years_since_write=self.spec.health_horizon_years
            )
            if predicted <= self.spec.max_rber:
                continue
            resuscitated = False
            for bits in self.spec.resuscitation_bits:
                if bits >= group.mode.operating_bits:
                    continue
                candidate = CellMode(group.mode.technology, bits)
                cand_rber = ErrorModel(candidate).rber(
                    pec=group.pec, years_since_write=self.spec.health_horizon_years
                )
                if cand_rber <= self.spec.max_rber:
                    # density drop: capacity shrinks proportionally; live
                    # data is re-hosted (counted as refresh writes)
                    ratio = bits / group.mode.operating_bits
                    self.refresh_writes_gb += group.live_gb
                    group.capacity_gb *= ratio
                    group.live_gb = min(group.live_gb, group.capacity_gb)
                    group.mode = candidate
                    group.mean_write_time = now
                    self.resuscitated_count += 1
                    resuscitated = True
                    break
            if not resuscitated:
                group.retired = True
                group.live_gb = 0.0
                self.retired_count += 1


class LifetimeDevice:
    """A device of one or more partitions stepped day by day."""

    def __init__(self, partitions: list[PartitionSpec]) -> None:
        if not partitions:
            raise ValueError("at least one partition required")
        self.partitions = {spec.name: Partition(spec) for spec in partitions}
        self.now_years = 0.0

    def partition(self, name: str) -> Partition:
        """Access a partition by name."""
        return self.partitions[name]

    def capacity_gb(self) -> float:
        """Total current usable capacity."""
        return sum(p.capacity_gb() for p in self.partitions.values())

    def step_day(self, writes: dict[str, tuple[float, float]], maintain: bool = True) -> None:
        """Advance one day.

        Parameters
        ----------
        writes:
            partition name -> (new_data_gb, churn_gb) for the day.
        maintain:
            Run scrub/health maintenance after applying writes.
        """
        dt = 1.0 / 365.0
        self.now_years += dt
        for name, (new_gb, churn_gb) in writes.items():
            partition = self.partitions[name]
            partition.host_write(new_gb, self.now_years, churn=False)
            partition.host_write(churn_gb, self.now_years, churn=True)
        if maintain:
            for partition in self.partitions.values():
                partition.maintain(self.now_years)
