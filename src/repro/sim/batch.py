"""Batched fleet engine: whole device populations in one vectorized pass.

The population experiments (E14 fleet replacement, E16 200-user wear,
the A6 sensitivity grids) need *many* epoch-model devices, each cheap on
its own: the per-device cost of :func:`repro.sim.engine.run_lifetime` is
dominated by interpreter overhead in the daily loop, not by arithmetic.
This module stacks N devices into one struct-of-arrays state -- every
per-group array of :class:`repro.sim.lifetime.Partition` gains a leading
device axis, shape ``(n_devices, n_groups)`` -- and steps the whole
population through each simulated day as array operations over the
device axis: write routing, wear accrual, scrub/refresh, the
retire/resuscitate ladder, delete apportionment, and sampling.

Equivalence contract with the scalar engine (pinned by tier-1 tests):

* integer outputs (retired/resuscitated/refresh counts, fault counters,
  sampled days) are **exactly** equal;
* float outputs match within tight relative tolerance.  Elementwise
  state updates replicate the scalar code's operation order, so fleets
  whose groups all stay alive and data-holding (the wear-leveled
  baselines without faults) are bit-identical end to end; once groups
  retire, masked reductions group additions differently than the scalar
  engine's compacted reductions and agreement is ~1e-12 relative.

Devices in one batch must share their build topology (same partitions,
same specs); only the write-amplification factor ``waf`` may vary per
device, which is what the A6 sensitivity grid sweeps.  Heterogeneous
populations batch per homogeneous sub-population (see
``runner.points``).

Observability: one batched pass charges N logical span calls
(``obs.span(name, calls=N)``) and bumps shared counters by N, so
metric snapshots from a batched run merge/compare 1:1 against N scalar
runs (modulo wall times and float histogram totals).  Trace events gain
a ``device`` index field and are grouped by day rather than by device.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.faults.plan import FaultPlan, FaultSummary
from repro.flash.cell import CellMode
from repro.flash.error_model import cached_error_model
from repro.flash.reliability import endurance_pec
from repro.obs import get_observer
from repro.workloads.traces import DailySummary

from .baselines import DeviceBuild
from .engine import DaySample, LifetimeResult, SimConfig
from .lifetime import (
    HOT_GROUP_FRACTION,
    WL_WRITE_OVERHEAD,
    Partition,
    PartitionSpec,
)

__all__ = [
    "BatchLifetimeDevice",
    "BatchPartition",
    "SummaryBatch",
    "run_lifetime_batch",
]


@dataclass(slots=True)
class SummaryBatch:
    """Per-device daily volumes as ``(n_devices, n_days)`` arrays.

    All devices must share the same ``day`` sequence (they are stepped in
    lockstep).  ``read_gb`` is omitted: the epoch engine never consumes
    it.
    """

    day: np.ndarray  # (n_days,)
    new_media_gb: np.ndarray  # (n_devices, n_days)
    new_other_gb: np.ndarray
    overwrite_gb: np.ndarray
    delete_gb: np.ndarray

    @property
    def n_devices(self) -> int:
        return int(self.new_media_gb.shape[0])

    @property
    def n_days(self) -> int:
        return int(self.day.shape[0])

    @classmethod
    def from_summaries(
        cls, per_device: Sequence[Sequence[DailySummary]]
    ) -> "SummaryBatch":
        """Stack per-device :class:`DailySummary` lists."""
        if not per_device:
            raise ValueError("at least one device's summaries required")
        day = np.array([s.day for s in per_device[0]], dtype=np.int64)
        for series in per_device[1:]:
            if [s.day for s in series] != day.tolist():
                raise ValueError("all devices must share the same day sequence")
        def field(name: str) -> np.ndarray:
            return np.array(
                [[getattr(s, name) for s in series] for series in per_device],
                dtype=float,
            )
        return cls(
            day=day,
            new_media_gb=field("new_media_gb"),
            new_other_gb=field("new_other_gb"),
            overwrite_gb=field("overwrite_gb"),
            delete_gb=field("delete_gb"),
        )

    @classmethod
    def from_volume_arrays(
        cls, per_device: Sequence[Mapping[str, np.ndarray]]
    ) -> "SummaryBatch":
        """Stack :meth:`MobileWorkload.daily_volume_arrays` outputs."""
        if not per_device:
            raise ValueError("at least one device's volumes required")
        day = np.asarray(per_device[0]["day"], dtype=np.int64)
        for volumes in per_device[1:]:
            if not np.array_equal(np.asarray(volumes["day"]), day):
                raise ValueError("all devices must share the same day sequence")
        def field(name: str) -> np.ndarray:
            return np.stack([np.asarray(v[name], dtype=float) for v in per_device])
        return cls(
            day=day,
            new_media_gb=field("new_media_gb"),
            new_other_gb=field("new_other_gb"),
            overwrite_gb=field("overwrite_gb"),
            delete_gb=field("delete_gb"),
        )


class BatchPartition:
    """N stacked copies of one :class:`Partition`, stepped together.

    State arrays mirror the scalar partition's SoA fields with a leading
    device axis; per-group operating modes are tracked as indexes into a
    fixed *mode ladder* (``[spec.mode] + resuscitation candidates``), so
    heterogeneous post-resuscitation populations stay vectorizable.
    """

    def __init__(
        self,
        spec: PartitionSpec,
        n_devices: int,
        waf: np.ndarray | None = None,
    ) -> None:
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        self.spec = spec
        self.n_devices = n_devices
        g = spec.n_groups
        per_group = spec.capacity_gb / g
        # float state stays float64 (the scalar-equivalence contract is
        # bit-level); the integer lanes are tightened -- refresh counts
        # fit int32 and mode indexes fit int8 -- so a shard's per-lane
        # footprint is dominated by the five float64 arrays
        self._capacity = np.full((n_devices, g), per_group, dtype=float)
        self._pec = np.zeros((n_devices, g), dtype=float)
        self._write_time = np.zeros((n_devices, g), dtype=float)
        self._live = np.zeros((n_devices, g), dtype=float)
        self._retired = np.zeros((n_devices, g), dtype=bool)
        self._refreshes = np.zeros((n_devices, g), dtype=np.int32)
        ladder = [spec.mode]
        for bits in spec.resuscitation_bits:
            if bits >= spec.mode.operating_bits:
                continue  # scalar engine skips these for every group
            if any(m.operating_bits == bits for m in ladder):
                continue
            ladder.append(CellMode(spec.mode.technology, bits))
        self._mode_ladder: list[CellMode] = ladder
        self._ladder_bits = np.array(
            [m.operating_bits for m in ladder], dtype=np.int64
        )
        self._mode_idx = np.zeros((n_devices, g), dtype=np.int8)
        #: False while every group still runs spec.mode (fast RBER path)
        self._heterogeneous = False
        self._cold_cursor = np.zeros(n_devices, dtype=np.int64)
        self.refresh_writes_gb = np.zeros(n_devices, dtype=float)
        self.retired_count = np.zeros(n_devices, dtype=np.int64)
        self.resuscitated_count = np.zeros(n_devices, dtype=np.int64)
        if waf is None:
            self._waf = np.full(n_devices, spec.waf, dtype=float)
        else:
            self._waf = np.asarray(waf, dtype=float).copy()
            if self._waf.shape != (n_devices,):
                raise ValueError("waf must have shape (n_devices,)")

    # -- scalar interop ---------------------------------------------------------

    @classmethod
    def from_partitions(cls, partitions: Sequence[Partition]) -> "BatchPartition":
        """Stack scalar partitions (specs must match except ``waf``)."""
        if not partitions:
            raise ValueError("at least one partition required")
        base = partitions[0].spec
        canonical = replace(base, waf=0.0)
        for p in partitions[1:]:
            if replace(p.spec, waf=0.0) != canonical:
                raise ValueError(
                    "batched partitions must share their spec (only waf may vary)"
                )
        self = cls(
            base,
            len(partitions),
            waf=np.array([p.spec.waf for p in partitions], dtype=float),
        )
        states = [p.export_group_state() for p in partitions]
        self._capacity = np.stack([s["capacity_gb"] for s in states])
        self._pec = np.stack([s["pec"] for s in states])
        self._write_time = np.stack([s["write_time"] for s in states])
        self._live = np.stack([s["live_gb"] for s in states])
        self._retired = np.stack([s["retired"] for s in states])
        self._refreshes = np.stack(
            [s["refreshes"] for s in states]
        ).astype(np.int32)
        mode_bits = np.stack([s["mode_bits"] for s in states])
        self._mode_idx = self._mode_idx_from_bits(mode_bits)
        self._heterogeneous = bool((self._mode_idx != 0).any())
        self._cold_cursor = np.array(
            [p._cold_cursor for p in partitions], dtype=np.int64
        )
        self.refresh_writes_gb = np.array(
            [p.refresh_writes_gb for p in partitions], dtype=float
        )
        self.retired_count = np.array(
            [p.retired_count for p in partitions], dtype=np.int64
        )
        self.resuscitated_count = np.array(
            [p.resuscitated_count for p in partitions], dtype=np.int64
        )
        return self

    def _mode_idx_from_bits(self, mode_bits: np.ndarray) -> np.ndarray:
        """Map per-group operating bits onto mode-ladder indexes."""
        lut = np.full(int(self._ladder_bits.max()) + 1, -1, dtype=np.int8)
        lut[self._ladder_bits] = np.arange(
            len(self._mode_ladder), dtype=np.int8
        )
        if mode_bits.max() >= lut.size or (lut[mode_bits] < 0).any():
            raise ValueError(
                "partition group mode outside the spec's resuscitation ladder"
            )
        return lut[mode_bits]

    # -- shard-local state export -------------------------------------------------

    def export_state(self) -> dict[str, np.ndarray]:
        """Whole-shard state as one dict of stacked arrays.

        The vectorized analogue of per-device
        :meth:`~repro.sim.lifetime.Partition.export_group_state`: every
        array keeps its leading device axis, so a shard checkpoints (and
        a fleet coordinator persists) N devices in one O(arrays) copy
        instead of N python-level exports.  Round-trips exactly through
        :meth:`import_state`.
        """
        return {
            "capacity_gb": self._capacity.copy(),
            "pec": self._pec.copy(),
            "write_time": self._write_time.copy(),
            "live_gb": self._live.copy(),
            "retired": self._retired.copy(),
            "refreshes": self._refreshes.copy(),
            "mode_bits": self._ladder_bits[self._mode_idx],
            "cold_cursor": self._cold_cursor.copy(),
            "refresh_writes_gb": self.refresh_writes_gb.copy(),
            "retired_count": self.retired_count.copy(),
            "resuscitated_count": self.resuscitated_count.copy(),
            "waf": self._waf.copy(),
        }

    def import_state(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`export_state` (shapes must match the shard)."""
        shape = (self.n_devices, self.spec.n_groups)
        for name in ("capacity_gb", "pec", "write_time", "live_gb",
                     "retired", "refreshes", "mode_bits"):
            if np.shape(state[name]) != shape:
                raise ValueError(
                    f"state field {name!r} has shape {np.shape(state[name])}, "
                    f"expected {shape}"
                )
        for name in ("cold_cursor", "refresh_writes_gb", "retired_count",
                     "resuscitated_count", "waf"):
            if np.shape(state[name]) != (self.n_devices,):
                raise ValueError(
                    f"state field {name!r} has shape {np.shape(state[name])}, "
                    f"expected ({self.n_devices},)"
                )
        self._capacity = np.asarray(state["capacity_gb"], dtype=float).copy()
        self._pec = np.asarray(state["pec"], dtype=float).copy()
        self._write_time = np.asarray(state["write_time"], dtype=float).copy()
        self._live = np.asarray(state["live_gb"], dtype=float).copy()
        self._retired = np.asarray(state["retired"], dtype=bool).copy()
        self._refreshes = np.asarray(state["refreshes"], dtype=np.int32).copy()
        self._mode_idx = self._mode_idx_from_bits(
            np.asarray(state["mode_bits"], dtype=np.int64)
        )
        self._heterogeneous = bool((self._mode_idx != 0).any())
        self._cold_cursor = np.asarray(
            state["cold_cursor"], dtype=np.int64
        ).copy()
        self.refresh_writes_gb = np.asarray(
            state["refresh_writes_gb"], dtype=float
        ).copy()
        self.retired_count = np.asarray(
            state["retired_count"], dtype=np.int64
        ).copy()
        self.resuscitated_count = np.asarray(
            state["resuscitated_count"], dtype=np.int64
        ).copy()
        self._waf = np.asarray(state["waf"], dtype=float).copy()

    def scatter_to(self, partitions: Sequence[Partition]) -> None:
        """Write per-device slices back into scalar partitions."""
        if len(partitions) != self.n_devices:
            raise ValueError("partition count must match n_devices")
        for d, part in enumerate(partitions):
            part.import_group_state(
                {
                    "capacity_gb": self._capacity[d],
                    "pec": self._pec[d],
                    "write_time": self._write_time[d],
                    "live_gb": self._live[d],
                    "retired": self._retired[d],
                    "refreshes": self._refreshes[d],
                    "mode_bits": self._ladder_bits[self._mode_idx[d]],
                }
            )
            part._cold_cursor = int(self._cold_cursor[d])
            part.refresh_writes_gb = float(self.refresh_writes_gb[d])
            part.retired_count = int(self.retired_count[d])
            part.resuscitated_count = int(self.resuscitated_count[d])

    # -- per-device aggregates --------------------------------------------------

    def capacity_gb(self) -> np.ndarray:
        """Usable capacity per device, ``(n_devices,)``."""
        return np.where(~self._retired, self._capacity, 0.0).sum(axis=1)

    def live_data_gb(self) -> np.ndarray:
        """Live data per device, ``(n_devices,)``."""
        return np.where(~self._retired, self._live, 0.0).sum(axis=1)

    def mean_pec(self) -> np.ndarray:
        """Capacity-weighted mean PEC over live groups, per device."""
        alive = ~self._retired
        cap = np.where(alive, self._capacity, 0.0)
        total = cap.sum(axis=1)
        weighted = (np.where(alive, self._pec, 0.0) * cap).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = weighted / total
        return np.where(total == 0.0, 0.0, out)

    def wear_used_fraction(self) -> np.ndarray:
        """Mean PEC over rated endurance of the operating mode."""
        return self.mean_pec() / endurance_pec(self.spec.mode)

    def mean_quality(self, now: float) -> np.ndarray:
        """Data-weighted post-protection quality proxy, per device."""
        holders = ~self._retired & (self._live > 0.0)
        residual = self.spec.protection.residual_ber_many(self._rber(now))
        quality = np.exp(-self.spec.quality_sensitivity * residual)
        live = np.where(holders, self._live, 0.0)
        total = live.sum(axis=1)
        weighted = (quality * live).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = weighted / total
        return np.where(total > 0.0, out, 1.0)

    def expected_uncorrectable(
        self, now: float, page_bits: int = 4096 * 8
    ) -> np.ndarray:
        """Expected uncorrectable-page events across live data, per device."""
        holders = ~self._retired & (self._live > 0.0)
        pages = np.where(holders, self._live, 0.0) * 1e9 * 8 / page_bits
        p_fail = self.spec.protection.page_failure_prob_many(
            self._rber(now), page_bits
        )
        return (pages * p_fail).sum(axis=1)

    # -- writes -----------------------------------------------------------------

    def _absorb(
        self, mask: np.ndarray, gb: np.ndarray, now: float, waf: np.ndarray
    ) -> None:
        """Account per-group host+amplified writes where ``mask``.

        ``gb`` broadcasts to ``(n_devices, n_groups)``; lanes outside
        ``mask`` keep their state (their junk arithmetic -- 0/0 on empty
        groups -- is discarded by the ``where`` writes).
        """
        cap = self._capacity
        with np.errstate(divide="ignore", invalid="ignore"):
            inc = gb * waf / cap
            new_live = np.minimum(cap, self._live + gb)
            old_weight = np.maximum(0.0, new_live - gb) / new_live
            blended = old_weight * self._write_time + (1.0 - old_weight) * now
        self._pec = np.where(mask, self._pec + inc, self._pec)
        self._write_time = np.where(mask, blended, self._write_time)
        self._live = np.where(mask, new_live, self._live)

    def host_write(self, gb: np.ndarray, now: float, churn: bool) -> None:
        """Apply per-device host writes (vectorized ``Partition.host_write``)."""
        gb = np.asarray(gb, dtype=float)
        alive = ~self._retired
        live_count = alive.sum(axis=1)
        active = (gb > 0.0) & (live_count > 0)
        if not active.any():
            return
        waf = self._waf[:, None]
        denom = np.maximum(live_count, 1)
        if self.spec.wear_leveling:
            waf = waf * (1.0 + WL_WRITE_OVERHEAD)
            share = (gb / denom)[:, None]
            self._absorb(alive & active[:, None], share, now, waf)
            return
        if churn:
            hot_count = np.maximum(
                1, (live_count * HOT_GROUP_FRACTION).astype(np.int64)
            )
            # rank live groups by descending PEC, stable on index; retired
            # lanes sort last behind +inf keys
            key = np.where(alive, -self._pec, np.inf)
            order = np.argsort(key, axis=1, kind="stable")
            rank = np.empty_like(order)
            np.put_along_axis(
                rank,
                order,
                np.broadcast_to(np.arange(self.spec.n_groups), order.shape),
                axis=1,
            )
            hot = alive & (rank < hot_count[:, None])
            share = (gb / hot_count)[:, None]
            self._absorb(hot & active[:, None], share, now, waf)
        else:
            # append round-robin to the k-th live group per device: the
            # first column where the running count of live groups hits k+1
            k = self._cold_cursor % denom
            csum = np.cumsum(alive, axis=1)
            target = np.argmax(csum == (k + 1)[:, None], axis=1)
            mask = np.zeros_like(alive)
            devices = np.flatnonzero(active)
            mask[devices, target[devices]] = True
            self._absorb(mask, gb[:, None], now, waf)
            self._cold_cursor[devices] += 1

    def host_delete(self, gb: np.ndarray) -> None:
        """Remove per-device live data proportionally over groups."""
        gb = np.asarray(gb, dtype=float)
        total = self.live_data_gb()
        active = (total > 0.0) & (gb > 0.0)
        if not active.any():
            return
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.minimum(1.0, gb / total)
        factor = np.where(active, 1.0 - fraction, 1.0)
        self._live = np.where(
            ~self._retired, self._live * factor[:, None], self._live
        )

    # -- quality / reliability --------------------------------------------------

    def _rber(
        self, now: float, extra_age: float = 0.0, from_data_age: bool = True
    ) -> np.ndarray:
        """RBER for every (device, group) lane, batched per operating mode."""
        if from_data_age:
            ages = np.where(
                self._live > 0.0,
                np.maximum(0.0, now - self._write_time),
                0.0,
            ) + extra_age
        else:
            ages = np.full(self._pec.shape, extra_age)
        if not self._heterogeneous:
            return cached_error_model(self.spec.mode).rber_many(self._pec, ages)
        out = np.empty_like(self._pec)
        for idx, mode in enumerate(self._mode_ladder):
            sel = self._mode_idx == idx
            if sel.any():
                out[sel] = cached_error_model(mode).rber_many(
                    self._pec[sel], ages[sel]
                )
        return out

    # -- fault injection --------------------------------------------------------

    def retire_group(self, device: int, index: int) -> bool:
        """Force-retire one group of one device (infant mortality)."""
        if self._retired[device, index]:
            return False
        self._retired[device, index] = True
        self._live[device, index] = 0.0
        self.retired_count[device] += 1
        return True

    def power_loss_rewrite(self, device: int, index: int, now: float) -> float:
        """Recover a torn program on one group of one device."""
        if self._retired[device, index] or self._capacity[device, index] <= 0:
            return 0.0
        gb = min(
            float(self._live[device, index]),
            float(self._capacity[device, index]) * 0.05,
        )
        if gb <= 0.0:
            return 0.0
        self._pec[device, index] += (
            gb * self._waf[device] / self._capacity[device, index]
        )
        self.refresh_writes_gb[device] += gb
        return gb

    # -- maintenance ------------------------------------------------------------

    def maintain(self, now: float, scrub_allowed: np.ndarray) -> None:
        """Scrub then health-check the whole population for one day."""
        with get_observer().span("lifetime.maintain", calls=self.n_devices):
            if self.spec.scrub_enabled:
                self._scrub(now, scrub_allowed)
            self._health_check(now)

    def _scrub(self, now: float, allowed: np.ndarray) -> None:
        holders = ~self._retired & (self._live > 0.0) & allowed[:, None]
        if not holders.any():
            return
        look_ahead = self._rber(now, extra_age=self.spec.health_horizon_years)
        residual = self.spec.protection.residual_ber_many(look_ahead)
        quality = np.exp(-self.spec.quality_sensitivity * residual)
        refresh = holders & (quality < self.spec.scrub_quality_floor)
        if not refresh.any():
            return
        live = np.where(refresh, self._live, 0.0)
        gb = live.sum(axis=1)
        self.refresh_writes_gb += gb
        with np.errstate(divide="ignore", invalid="ignore"):
            inc = live * self._waf[:, None] / self._capacity
        self._pec = np.where(refresh, self._pec + inc, self._pec)
        self._write_time = np.where(refresh, now, self._write_time)
        self._refreshes += refresh
        obs = get_observer()
        if obs.enabled:
            groups = refresh.sum(axis=1)
            for d in np.flatnonzero(groups):
                obs.event(
                    "scrub_refresh", t=now, partition=self.spec.name,
                    device=int(d), groups=int(groups[d]), gb=float(gb[d]),
                )

    def _health_check(self, now: float) -> None:
        alive = ~self._retired
        if not alive.any():
            return
        horizon = self.spec.health_horizon_years
        predicted = self._rber(now, extra_age=horizon, from_data_age=False)
        failing = alive & (predicted > self.spec.max_rber)
        if not failing.any():
            return
        obs = get_observer()
        current_bits = self._ladder_bits[self._mode_idx]
        remaining = failing.copy()
        for cand_idx in range(1, len(self._mode_ladder)):
            cand_mode = self._mode_ladder[cand_idx]
            cand_bits = int(self._ladder_bits[cand_idx])
            eligible = remaining & (current_bits > cand_bits)
            if not eligible.any():
                continue
            cand_rber = cached_error_model(cand_mode).rber_many(
                self._pec, np.full(self._pec.shape, horizon)
            )
            ok = eligible & (cand_rber <= self.spec.max_rber)
            if not ok.any():
                continue
            # density drop: capacity shrinks proportionally; live data is
            # re-hosted (counted as refresh writes)
            ratio = cand_bits / current_bits
            self.refresh_writes_gb += np.where(ok, self._live, 0.0).sum(axis=1)
            self._capacity = np.where(ok, self._capacity * ratio, self._capacity)
            self._live = np.where(
                ok, np.minimum(self._live, self._capacity), self._live
            )
            self._mode_idx = np.where(ok, np.int8(cand_idx), self._mode_idx)
            self._write_time = np.where(ok, now, self._write_time)
            self.resuscitated_count += ok.sum(axis=1)
            self._heterogeneous = True
            if obs.enabled:
                for d, g in zip(*np.nonzero(ok)):
                    obs.event(
                        "block_resuscitated", t=now, partition=self.spec.name,
                        device=int(d), group=int(g), bits=cand_bits,
                    )
            remaining &= ~ok
        if remaining.any():
            self._retired |= remaining
            self._live = np.where(remaining, 0.0, self._live)
            self.retired_count += remaining.sum(axis=1)
            if obs.enabled:
                for d, g in zip(*np.nonzero(remaining)):
                    obs.event(
                        "block_retired", t=now, partition=self.spec.name,
                        device=int(d), group=int(g), reason="wear",
                    )


class BatchLifetimeDevice:
    """N devices of identical topology stepped day by day in lockstep."""

    def __init__(self, partitions: dict[str, BatchPartition]) -> None:
        if not partitions:
            raise ValueError("at least one partition required")
        self.partitions = dict(partitions)
        self.n_devices = next(iter(self.partitions.values())).n_devices
        for p in self.partitions.values():
            if p.n_devices != self.n_devices:
                raise ValueError("all partitions must batch the same devices")
        self.now_years = 0.0

    @classmethod
    def from_devices(cls, devices: Sequence) -> "BatchLifetimeDevice":
        """Stack scalar :class:`LifetimeDevice` instances."""
        names = list(devices[0].partitions)
        for device in devices[1:]:
            if list(device.partitions) != names:
                raise ValueError("all devices must share partition names/order")
        batch = cls(
            {
                name: BatchPartition.from_partitions(
                    [device.partitions[name] for device in devices]
                )
                for name in names
            }
        )
        batch.now_years = devices[0].now_years
        return batch

    def capacity_gb(self) -> np.ndarray:
        """Total current usable capacity per device, ``(n_devices,)``."""
        total = np.zeros(self.n_devices)
        for p in self.partitions.values():
            total = total + p.capacity_gb()
        return total

    def export_state(self) -> dict:
        """Whole-fleet-shard checkpoint: clock plus every partition's arrays."""
        return {
            "now_years": self.now_years,
            "partitions": {
                name: p.export_state() for name, p in self.partitions.items()
            },
        }

    def import_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state`; partition names must match."""
        if set(state["partitions"]) != set(self.partitions):
            raise ValueError(
                "state partitions do not match this batch's partitions"
            )
        for name, partition in self.partitions.items():
            partition.import_state(state["partitions"][name])
        self.now_years = float(state["now_years"])

    def step_day(
        self,
        writes: dict[str, tuple[np.ndarray, np.ndarray]],
        scrub_allowed: np.ndarray,
    ) -> None:
        """Advance all devices one day (vectorized ``LifetimeDevice.step_day``)."""
        dt = 1.0 / 365.0
        self.now_years += dt
        for name, (new_gb, churn_gb) in writes.items():
            partition = self.partitions[name]
            partition.host_write(new_gb, self.now_years, churn=False)
            partition.host_write(churn_gb, self.now_years, churn=True)
        for partition in self.partitions.values():
            partition.maintain(self.now_years, scrub_allowed)


def _apply_day_faults_batch(
    device: BatchLifetimeDevice,
    plan: FaultPlan,
    counters: FaultSummary,
    position: int,
    d: int,
) -> None:
    """Apply one device's scheduled faults for one day (scalar-sparse)."""
    obs = get_observer()
    now = device.now_years
    for target, unit in plan.infant_deaths(position):
        partition = device.partitions.get(target)
        if partition is not None and unit < partition.spec.n_groups:
            if partition.retire_group(d, unit):
                counters.infant_deaths += 1
                obs.event("block_retired", t=now, partition=target, device=d,
                          group=int(unit), reason="infant_mortality")
    for target, unit, attempts_needed in plan.transient_reads(position):
        if target not in device.partitions:
            continue
        counters.transient_reads += 1
        retries = min(attempts_needed - 1, plan.config.max_read_retries)
        counters.read_retry_attempts += retries
        if attempts_needed - 1 <= plan.config.max_read_retries:
            counters.reads_recovered += 1
            obs.event("transient_read", t=now, partition=target, device=d,
                      recovered=True, retries=int(retries))
        else:
            counters.reads_unrecovered += 1
            obs.event("transient_read", t=now, partition=target, device=d,
                      recovered=False, retries=int(retries))
    for target, unit in plan.torn_programs(position):
        partition = device.partitions.get(target)
        if partition is not None and unit < partition.spec.n_groups:
            rewritten = partition.power_loss_rewrite(d, unit, now)
            counters.torn_programs += 1
            counters.torn_rewrite_gb += rewritten
            obs.event("torn_program", t=now, partition=target, device=d,
                      group=int(unit), rewrite_gb=float(rewritten))


def run_lifetime_batch(
    builds: Sequence[DeviceBuild],
    summaries: SummaryBatch | Sequence[Sequence[DailySummary]],
    config: SimConfig | None = None,
    fault_plans: Sequence[FaultPlan | None] | None = None,
) -> list[LifetimeResult]:
    """Run N device builds through their daily workloads in one pass.

    The population analogue of :func:`repro.sim.engine.run_lifetime`:
    one :class:`LifetimeResult` per build, matching N scalar runs (see
    the module docstring for the equivalence contract).  Builds must
    share topology and specs (``waf`` may vary); each build's scalar
    device is updated in place with its final state, as the scalar
    engine does.
    """
    config = config or SimConfig()
    if not builds:
        raise ValueError("at least one build required")
    if not isinstance(summaries, SummaryBatch):
        summaries = SummaryBatch.from_summaries(summaries)
    n = len(builds)
    if summaries.n_devices != n:
        raise ValueError(
            f"{n} builds but volumes for {summaries.n_devices} devices"
        )
    plans: list[FaultPlan | None]
    if fault_plans is None:
        plans = [None] * n
    else:
        plans = list(fault_plans)
        if len(plans) != n:
            raise ValueError(f"{n} builds but {len(plans)} fault plans")
    device = BatchLifetimeDevice.from_devices([b.device for b in builds])
    results = [
        LifetimeResult(
            build_name=build.name,
            capacity_gb=build.capacity_gb,
            intensity_kg_per_gb=build.intensity_kg_per_gb,
            faults=FaultSummary() if plan is not None else None,
        )
        for build, plan in zip(builds, plans)
    ]
    has_faults = any(plan is not None for plan in plans)
    single = "main" in device.partitions
    spare = device.partitions.get("spare")
    sys_part = device.partitions.get("sys") or device.partitions.get("main")
    assert sys_part is not None
    n_scrub_parts = sum(
        1 for p in device.partitions.values() if p.spec.scrub_enabled
    )
    n_days = summaries.n_days
    obs = get_observer()
    with obs.span("engine.run", calls=n):
        for position in range(n_days):
            media = summaries.new_media_gb[:, position]
            other = summaries.new_other_gb[:, position]
            overwrite = summaries.overwrite_gb[:, position]
            if single:
                writes = {"main": (media + other, overwrite)}
            else:
                demoted = media * config.media_demotion_rate
                kept = media - demoted
                sys_new = other + kept + demoted
                writes = {
                    "sys": (sys_new, overwrite),
                    "spare": (demoted, np.zeros_like(demoted)),
                }
            obs.count("engine.days", n)
            if obs.enabled:
                day_total = sum(new + churn for new, churn in writes.values())
                for value in day_total:
                    obs.observe("engine.day_write_gb", float(value))
            scrub_allowed = np.ones(n, dtype=bool)
            if has_faults:
                for d, plan in enumerate(plans):
                    if plan is not None and plan.in_cloud_outage(position):
                        counters = results[d].faults
                        assert counters is not None
                        counters.cloud_outage_days += 1
                        counters.scrubs_deferred += n_scrub_parts
                        scrub_allowed[d] = False
            device.step_day(writes, scrub_allowed)
            if has_faults:
                day_value = int(summaries.day[position])
                for d, plan in enumerate(plans):
                    if plan is None:
                        continue
                    if not scrub_allowed[d]:
                        obs.event("cloud_outage_day", t=device.now_years,
                                  day=day_value, device=d)
                    counters = results[d].faults
                    assert counters is not None
                    _apply_day_faults_batch(device, plan, counters, position, d)
            # deletions: apportion the day's volume across pressured
            # partitions by live-data share (same rule as the scalar engine)
            delete = summaries.delete_gb[:, position]
            pressured: dict[str, np.ndarray] = {}
            lives: dict[str, np.ndarray] = {}
            live_total = np.zeros(n)
            for name, partition in device.partitions.items():
                cap = partition.capacity_gb()
                live = partition.live_data_gb()
                with np.errstate(divide="ignore", invalid="ignore"):
                    utilization = live / cap
                utilization = np.where(cap > 0.0, utilization, 1.0)
                mask = utilization > 0.85
                pressured[name] = mask
                lives[name] = live
                live_total = live_total + np.where(mask, live, 0.0)
            apply_delete = live_total > 0.0
            for name, partition in device.partitions.items():
                mask = pressured[name] & apply_delete
                if not mask.any():
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    share = delete * lives[name] / live_total
                partition.host_delete(np.where(mask, share, 0.0))
            day_value = int(summaries.day[position])
            if day_value % config.sample_every_days == 0 or position == n_days - 1:
                now = device.now_years
                capacity = device.capacity_gb()
                sys_wear = sys_part.wear_used_fraction()
                spare_wear = (
                    spare.wear_used_fraction() if spare is not None else sys_wear
                )
                spare_quality = (
                    spare.mean_quality(now)
                    if spare is not None
                    else sys_part.mean_quality(now)
                )
                sys_unc = sys_part.expected_uncorrectable(now)
                retired = np.zeros(n, dtype=np.int64)
                resuscitated = np.zeros(n, dtype=np.int64)
                for partition in device.partitions.values():
                    retired = retired + partition.retired_count
                    resuscitated = resuscitated + partition.resuscitated_count
                for d in range(n):
                    results[d].samples.append(
                        DaySample(
                            day=day_value,
                            years=now,
                            capacity_gb=float(capacity[d]),
                            sys_wear_fraction=float(sys_wear[d]),
                            spare_wear_fraction=float(spare_wear[d]),
                            spare_quality=float(spare_quality[d]),
                            sys_uncorrectable=float(sys_unc[d]),
                            retired_groups=int(retired[d]),
                            resuscitated_groups=int(resuscitated[d]),
                        )
                    )
    # mirror the scalar engine's in-place device mutation: each build's
    # device ends the run holding its final state
    for name, partition in device.partitions.items():
        partition.scatter_to([b.device.partitions[name] for b in builds])
    for build in builds:
        build.device.now_years = device.now_years
    return results
