"""Op-level trace replay against the bit-exact SOS device.

Bridges :class:`~repro.workloads.mobile.MobileWorkload` (or any saved
trace) to a :class:`~repro.core.sos_device.SOSDevice`: each CREATE /
OVERWRITE / READ / DELETE is applied through the host file system, the
daemon runs on its configured cadence, and capacity pressure is absorbed
by the trim policy.  This is the "real" small-scale twin of the epoch
engine -- slower, but every page is an actual payload with actual ECC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sos_device import SOSDevice
from repro.ftl.ftl import OutOfSpaceError
from repro.host.files import FileAttributes
from repro.host.filesystem import FsFullError
from repro.workloads.traces import OpKind, TraceOp

__all__ = ["ReplayStats", "replay"]


@dataclass(slots=True)
class ReplayStats:
    """Counters from one replay run."""

    creates: int = 0
    overwrites: int = 0
    reads: int = 0
    deletes: int = 0
    skipped_full: int = 0
    skipped_exists: int = 0
    daemon_runs: int = 0
    trim_events: int = 0


#: Outcomes of :func:`_create`.
_CREATED = "created"
_EXISTS = "exists"
_FULL = "full"


def _create(device, op, attrs, rng, page, stats) -> str:
    """Create a file; on partition exhaustion, run the daemon (demotion
    frees SYS, trim frees capacity) and retry once.

    Returns one of ``_CREATED``, ``_EXISTS`` (duplicate path), or
    ``_FULL`` (out of space even after the daemon ran) so the caller can
    count duplicate-path creates separately from ENOSPC skips.
    """
    for attempt in range(2):
        try:
            device.create_file(
                op.path, op.file_kind, op.size_bytes, attributes=attrs,
                content=lambda o: rng.bytes(min(page, 256)),
            )
            stats.creates += 1
            return _CREATED
        except FileExistsError:
            return _EXISTS
        except (FsFullError, OutOfSpaceError):
            if attempt == 1:
                return _FULL
            device.run_daemon()
            stats.daemon_runs += 1
    return _FULL


def _count_skip(stats: ReplayStats, outcome: str) -> None:
    """Attribute a failed create to the matching skip counter."""
    if outcome == _EXISTS:
        stats.skipped_exists += 1
    elif outcome == _FULL:
        stats.skipped_full += 1


def replay(
    device: SOSDevice,
    ops: list[TraceOp],
    daemon_every_days: int = 7,
    seed: int = 0,
) -> ReplayStats:
    """Replay a trace against a device, day by day.

    Parameters
    ----------
    device:
        Target device (drives its own clock from the trace's day column).
    ops:
        Operations sorted by day (as produced by
        :meth:`MobileWorkload.ops`).
    daemon_every_days:
        Daemon cadence in simulated days.
    seed:
        Payload-content RNG seed.

    Notes
    -----
    CREATEs that exceed current capacity are skipped and counted in
    ``skipped_full`` -- a real device would return ENOSPC to the app; the
    trim policy then frees space on the next daemon run.  CREATEs naming
    a path that already exists are counted in ``skipped_exists`` (EEXIST,
    not a capacity event).
    """
    rng = np.random.default_rng(seed)
    stats = ReplayStats()
    current_day = -1
    page = device.block_layer.page_bytes
    for op in ops:
        if op.day != current_day:
            current_day = op.day
            device.advance_time(current_day / 365.0)
            if current_day % daemon_every_days == 0:
                run = device.run_daemon()
                stats.daemon_runs += 1
                if run.trim is not None:
                    stats.trim_events += 1
        if op.kind is OpKind.CREATE:
            attrs = FileAttributes(
                created_years=device.now_years,
                last_access_years=device.now_years,
                cloud_backed=op.cloud_backed,
            )
            outcome = _create(device, op, attrs, rng, page, stats)
            if outcome != _CREATED:
                _count_skip(stats, outcome)
        elif op.kind is OpKind.OVERWRITE:
            try:
                record = device.filesystem.lookup(op.path)
            except FileNotFoundError:
                outcome = _create(device, op, None, rng, page, stats)
                if outcome != _CREATED:
                    _count_skip(stats, outcome)
                    continue
                record = device.filesystem.lookup(op.path)
            ordinal = int(rng.integers(0, len(record.extents)))
            try:
                device.filesystem.overwrite_page(
                    op.path, ordinal, rng.bytes(min(page, 256))
                )
                stats.overwrites += 1
            except OutOfSpaceError:
                stats.skipped_full += 1
        elif op.kind is OpKind.READ:
            try:
                device.filesystem.read_file(op.path)
                stats.reads += 1
            except FileNotFoundError:
                pass
        elif op.kind is OpKind.DELETE:
            try:
                device.delete_file(op.path)
                stats.deletes += 1
            except FileNotFoundError:
                pass
    return stats
