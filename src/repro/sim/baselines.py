"""Device configurations for lifetime comparisons: SOS and its baselines.

§4's comparison set, all at equal *user-visible capacity*:

* **TLC baseline** -- today's personal device: native TLC, strong ECC,
  wear-leveled (the status quo SOS improves on);
* **QLC baseline** -- the density step vendors are taking anyway;
* **PLC naive** -- all-PLC at native density with conventional
  management, no SOS protections (what "just use denser flash" without
  the co-design would look like);
* **SOS** -- the paper's split: half pseudo-QLC SYS (strong ECC, WL on),
  half native-PLC SPARE (no ECC, WL off, scrub + resuscitation ladder).

Each builder also reports the device's embodied-carbon intensity so the
lifetime engine can put carbon and reliability on one table (E11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode

from .lifetime import LifetimeDevice, PartitionSpec

__all__ = ["DeviceBuild", "build_tlc_baseline", "build_qlc_baseline", "build_plc_naive", "build_sos", "ALL_BUILDERS"]


@dataclass(frozen=True, slots=True)
class DeviceBuild:
    """A lifetime-model device plus its carbon bookkeeping."""

    name: str
    device: LifetimeDevice
    capacity_gb: float
    intensity_kg_per_gb: float

    @property
    def embodied_kg(self) -> float:
        """Total embodied carbon of the device."""
        return self.capacity_gb * self.intensity_kg_per_gb


def build_tlc_baseline(capacity_gb: float = 64.0) -> DeviceBuild:
    """Conventional TLC personal device."""
    spec = PartitionSpec(
        name="main",
        mode=native_mode(CellTechnology.TLC),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=capacity_gb,
        wear_leveling=True,
    )
    return DeviceBuild(
        name="tlc_baseline",
        device=LifetimeDevice([spec]),
        capacity_gb=capacity_gb,
        intensity_kg_per_gb=intensity_kg_per_gb(CellTechnology.TLC),
    )


def build_qlc_baseline(capacity_gb: float = 64.0) -> DeviceBuild:
    """Conventional QLC device (the vendor density roadmap)."""
    spec = PartitionSpec(
        name="main",
        mode=native_mode(CellTechnology.QLC),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=capacity_gb,
        wear_leveling=True,
    )
    return DeviceBuild(
        name="qlc_baseline",
        device=LifetimeDevice([spec]),
        capacity_gb=capacity_gb,
        intensity_kg_per_gb=intensity_kg_per_gb(CellTechnology.QLC),
    )


def build_plc_naive(capacity_gb: float = 64.0) -> DeviceBuild:
    """All-PLC at native density with conventional management only.

    Maximum density, but critical data shares the low-endurance,
    short-retention medium with everything else -- the configuration
    §4.2 exists to avoid.
    """
    spec = PartitionSpec(
        name="main",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=capacity_gb,
        wear_leveling=True,
    )
    return DeviceBuild(
        name="plc_naive",
        device=LifetimeDevice([spec]),
        capacity_gb=capacity_gb,
        intensity_kg_per_gb=intensity_kg_per_gb(CellTechnology.PLC),
    )


def build_sos(
    capacity_gb: float = 64.0,
    spare_fraction: float = 0.5,
    spare_protection: ProtectionLevel = ProtectionLevel.NONE,
    scrub_enabled: bool = True,
    spare_wear_leveling: bool = False,
) -> DeviceBuild:
    """The paper's SOS split (parameterized for the ablations)."""
    plc = CellTechnology.PLC
    sys_spec = PartitionSpec(
        name="sys",
        mode=pseudo_mode(plc, 4),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=capacity_gb * (1.0 - spare_fraction),
        wear_leveling=True,
        max_rber=5e-3,
    )
    spare_spec = PartitionSpec(
        name="spare",
        mode=native_mode(plc),
        protection=POLICIES[spare_protection],
        capacity_gb=capacity_gb * spare_fraction,
        wear_leveling=spare_wear_leveling,
        max_rber=4e-4,
        resuscitation_bits=(3, 1),
        scrub_enabled=scrub_enabled,
        scrub_quality_floor=0.85,
    )
    intensity = mixed_intensity_kg_per_gb(
        {pseudo_mode(plc, 4): 1.0 - spare_fraction, native_mode(plc): spare_fraction}
    )
    return DeviceBuild(
        name="sos",
        device=LifetimeDevice([sys_spec, spare_spec]),
        capacity_gb=capacity_gb,
        intensity_kg_per_gb=intensity,
    )


ALL_BUILDERS = {
    "tlc_baseline": build_tlc_baseline,
    "qlc_baseline": build_qlc_baseline,
    "plc_naive": build_plc_naive,
    "sos": build_sos,
}
