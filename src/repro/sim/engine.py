"""Lifetime simulation engine: drive a device build with a workload.

Maps each day's :class:`~repro.workloads.traces.DailySummary` onto the
device's partitions:

* single-partition baselines take everything on ``main``;
* SOS routes media writes to SPARE (after the classifier demotes them)
  and everything else to SYS.  The demotion detour -- new data lands on
  SYS first, the daemon moves media later (§4.4) -- is modelled as the
  media volume writing *once* to SYS and *once* to SPARE, scaled by the
  classifier's demotion rate.

Deletion volume keeps utilization stationary; per-day metrics are
sampled at a configurable cadence.

A precomputed :class:`~repro.faults.plan.FaultPlan` can be threaded
through :func:`run_lifetime`: infant-mortality deaths retire block
groups, transient reads exercise the bounded-retry accounting, torn
programs cost recovery rewrites, and cloud-outage windows defer the
scrub pass (the epoch model's stand-in for the §4.3 repair path).  Fault
days are indexed by *position* in the summary list, not the trace's
``day`` field, so sliced or 1-indexed traces replay the same schedule.
With no plan (or an all-zero-rate plan) results are bit-identical to the
fault-free engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultSummary
from repro.obs import get_observer
from repro.workloads.traces import DailySummary

from .baselines import DeviceBuild

__all__ = ["SimConfig", "DaySample", "LifetimeResult", "run_lifetime"]


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Engine parameters.

    Attributes
    ----------
    media_demotion_rate:
        Fraction of media bytes the classifier demotes to SPARE (SOS
        only).  The default reflects the measured classifier operating
        point (~0.8 of media is low-value).
    sample_every_days:
        Metric sampling cadence.
    """

    media_demotion_rate: float = 0.8
    sample_every_days: int = 30


@dataclass(frozen=True, slots=True)
class DaySample:
    """Sampled device state at one point in time."""

    day: int
    years: float
    capacity_gb: float
    sys_wear_fraction: float
    spare_wear_fraction: float
    spare_quality: float
    sys_uncorrectable: float
    retired_groups: int
    resuscitated_groups: int


@dataclass(slots=True)
class LifetimeResult:
    """Full output of one lifetime run."""

    build_name: str
    capacity_gb: float
    intensity_kg_per_gb: float
    samples: list[DaySample] = field(default_factory=list)
    #: structured fault counters; None when the run had no fault plan
    faults: FaultSummary | None = None

    @property
    def embodied_kg(self) -> float:
        """Embodied carbon of the device under test."""
        return self.capacity_gb * self.intensity_kg_per_gb

    @property
    def final(self) -> DaySample:
        """Last sample (end-of-life state)."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return self.samples[-1]

    def survived(self, min_capacity_fraction: float = 0.9, quality_floor: float = 0.8) -> bool:
        """Did the device end its life usable?

        Usable = capacity above ``min_capacity_fraction`` of the original
        and (where applicable) SPARE quality above ``quality_floor``.
        """
        last = self.final
        return (
            last.capacity_gb >= min_capacity_fraction * self.capacity_gb
            and last.spare_quality >= quality_floor
        )


def _route_writes(
    build: DeviceBuild, summary: DailySummary, config: SimConfig
) -> dict[str, tuple[float, float]]:
    """Split a day's volumes across the build's partitions."""
    if "main" in build.device.partitions:
        new = summary.new_media_gb + summary.new_other_gb
        return {"main": (new, summary.overwrite_gb)}
    demoted = summary.new_media_gb * config.media_demotion_rate
    kept = summary.new_media_gb - demoted
    # demoted media writes SYS first (landing zone), then SPARE
    sys_new = summary.new_other_gb + kept + demoted
    return {
        "sys": (sys_new, summary.overwrite_gb),
        "spare": (demoted, 0.0),
    }


def _apply_day_faults(
    device, plan: FaultPlan, summary_counters: FaultSummary, position: int
) -> None:
    """Apply one day's scheduled faults to the epoch device."""
    obs = get_observer()
    now = device.now_years
    for target, unit in plan.infant_deaths(position):
        partition = device.partitions.get(target)
        if partition is not None and unit < partition.spec.n_groups:
            if partition.retire_group(unit):
                summary_counters.infant_deaths += 1
                obs.event("block_retired", t=now, partition=target, group=int(unit),
                          reason="infant_mortality")
    for target, unit, attempts_needed in plan.transient_reads(position):
        if target not in device.partitions:
            continue
        summary_counters.transient_reads += 1
        retries = min(attempts_needed - 1, plan.config.max_read_retries)
        summary_counters.read_retry_attempts += retries
        if attempts_needed - 1 <= plan.config.max_read_retries:
            summary_counters.reads_recovered += 1
            obs.event("transient_read", t=now, partition=target, recovered=True,
                      retries=int(retries))
        else:
            # retry budget exhausted: graceful degradation, count and go on
            summary_counters.reads_unrecovered += 1
            obs.event("transient_read", t=now, partition=target, recovered=False,
                      retries=int(retries))
    for target, unit in plan.torn_programs(position):
        partition = device.partitions.get(target)
        if partition is not None and unit < partition.spec.n_groups:
            rewritten = partition.power_loss_rewrite(unit, device.now_years)
            summary_counters.torn_programs += 1
            summary_counters.torn_rewrite_gb += rewritten
            obs.event("torn_program", t=now, partition=target, group=int(unit),
                      rewrite_gb=float(rewritten))


def run_lifetime(
    build: DeviceBuild,
    summaries: list[DailySummary],
    config: SimConfig | None = None,
    fault_plan: FaultPlan | None = None,
) -> LifetimeResult:
    """Run a device build through a daily workload, sampling metrics."""
    config = config or SimConfig()
    result = LifetimeResult(
        build_name=build.name,
        capacity_gb=build.capacity_gb,
        intensity_kg_per_gb=build.intensity_kg_per_gb,
        faults=FaultSummary() if fault_plan is not None else None,
    )
    device = build.device
    spare = device.partitions.get("spare")
    sys_part = device.partitions.get("sys") or device.partitions.get("main")
    obs = get_observer()
    with obs.span("engine.run"):
        for position, summary in enumerate(summaries):
            writes = _route_writes(build, summary, config)
            obs.count("engine.days")
            obs.observe(
                "engine.day_write_gb",
                sum(new + churn for new, churn in writes.values()),
            )
            scrub_allowed = True
            if fault_plan is not None:
                assert result.faults is not None
                if fault_plan.in_cloud_outage(position):
                    result.faults.cloud_outage_days += 1
                    scrub_allowed = False
                    result.faults.scrubs_deferred += sum(
                        1 for p in device.partitions.values() if p.spec.scrub_enabled
                    )
            device.step_day(writes, scrub_allowed=scrub_allowed)
            if fault_plan is not None:
                if not scrub_allowed:
                    obs.event("cloud_outage_day", t=device.now_years, day=summary.day)
                _apply_day_faults(device, fault_plan, result.faults, position)
            # deletions keep the working set stationary: the day's delete
            # volume is apportioned across pressured partitions by live-data
            # share, so multi-partition builds delete the same total volume
            # as single-partition ones
            pressured = []
            for partition in device.partitions.values():
                utilization = (
                    partition.live_data_gb() / partition.capacity_gb()
                    if partition.capacity_gb() > 0
                    else 1.0
                )
                if utilization > 0.85:
                    pressured.append(partition)
            live_total = sum(p.live_data_gb() for p in pressured)
            if live_total > 0:
                for partition in pressured:
                    partition.host_delete(
                        summary.delete_gb * partition.live_data_gb() / live_total
                    )
            # sample the last summary by position: trace days may be sliced
            # or 1-indexed, so the day value alone cannot identify the end
            if summary.day % config.sample_every_days == 0 or position == len(summaries) - 1:
                assert sys_part is not None
                result.samples.append(
                    DaySample(
                        day=summary.day,
                        years=device.now_years,
                        capacity_gb=device.capacity_gb(),
                        sys_wear_fraction=sys_part.wear_used_fraction(),
                        spare_wear_fraction=(
                            spare.wear_used_fraction() if spare else sys_part.wear_used_fraction()
                        ),
                        spare_quality=(
                            spare.mean_quality(device.now_years)
                            if spare
                            else sys_part.mean_quality(device.now_years)
                        ),
                        sys_uncorrectable=sys_part.expected_uncorrectable(device.now_years),
                        retired_groups=sum(p.retired_count for p in device.partitions.values()),
                        resuscitated_groups=sum(
                            p.resuscitated_count for p in device.partitions.values()
                        ),
                    )
                )
    return result
