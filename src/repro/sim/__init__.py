"""Lifetime simulation: epoch-aggregated device models and the engine.

The multi-year half of the reproduction: block-group wear/retention
models sharing the flash/ECC parameter tables with the bit-exact chip,
device builds for SOS and its baselines, and the daily-step engine that
produces E3/E8/E11's series.
"""

from .baselines import (
    ALL_BUILDERS,
    DeviceBuild,
    build_plc_naive,
    build_qlc_baseline,
    build_sos,
    build_tlc_baseline,
)
from .batch import (
    BatchLifetimeDevice,
    BatchPartition,
    SummaryBatch,
    run_lifetime_batch,
)
from .engine import DaySample, LifetimeResult, SimConfig, run_lifetime
from .lifetime import BlockGroup, LifetimeDevice, Partition, PartitionSpec
from .replay import ReplayStats, replay

__all__ = [
    "ALL_BUILDERS",
    "DeviceBuild",
    "build_plc_naive",
    "build_qlc_baseline",
    "build_sos",
    "build_tlc_baseline",
    "BatchLifetimeDevice",
    "BatchPartition",
    "SummaryBatch",
    "run_lifetime_batch",
    "DaySample",
    "LifetimeResult",
    "SimConfig",
    "run_lifetime",
    "BlockGroup",
    "LifetimeDevice",
    "Partition",
    "PartitionSpec",
    "ReplayStats",
    "replay",
]
