"""Hierarchical metrics registry with associatively mergeable snapshots.

Three instrument kinds, chosen so that every snapshot is plain JSON-able
data and two snapshots from *any* partition of the same work merge into
the same result regardless of grouping or order:

* :class:`Counter` -- monotonically accumulating value; merge = sum;
* :class:`Gauge` -- last-observed level; merge = max (the only
  order-insensitive reduction of "a level seen somewhere");
* :class:`Histogram` -- fixed log-spaced bins shared by construction, so
  bin counts merge element-wise; arbitrary split/merge orders preserve
  every bin count exactly (integer addition is associative and
  commutative, which is what makes parallel sweep rollups deterministic).

Span timings (wall seconds per named phase) ride along in the snapshot
under ``"spans"``; their call counts are deterministic but their wall
times are not, so :func:`strip_timings` produces the deterministic view
used when comparing serial and parallel runs.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotAccumulator",
    "default_histogram_bounds",
    "empty_snapshot",
    "merge_snapshots",
    "strip_timings",
]


def default_histogram_bounds() -> list[float]:
    """Fixed log-spaced bin upper bounds: half-decade steps, 1e-6..1e4.

    Every histogram sharing these bounds merges bin-for-bin; values above
    the last bound land in the overflow bin.
    """
    return [10.0 ** (e / 2.0) for e in range(-12, 9)]


class Counter:
    """Monotonically accumulating metric (merge = sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only accumulate; use a gauge for levels")
        self.value += amount


class Gauge:
    """Last-observed level (merge = max over observed levels)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound histogram; ``counts[i]`` holds values <= ``bounds[i]``.

    The final slot is the overflow bin.  Bounds are fixed at creation so
    histograms of the same name always merge element-wise.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: list[float] | None = None) -> None:
        self.bounds = list(bounds) if bounds is not None else default_histogram_bounds()
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value


class _SpanStat:
    __slots__ = ("calls", "wall_s")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0


class MetricsRegistry:
    """Named instruments plus plain-dict snapshots.

    Instrument names are dotted paths (``"engine.day"``, ``"scrub.pass"``);
    the hierarchy is purely lexical -- reports group by prefix.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, _SpanStat] = {}

    # -- instrument access (get-or-create) ----------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: list[float] | None = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def span_record(self, name: str, wall_s: float, calls: int = 1) -> None:
        """Charge one completed span invocation.

        ``calls`` > 1 attributes the block's wall time to that many
        logical invocations (one batched array pass standing in for N
        per-device calls), keeping call counts workload-deterministic.
        """
        stat = self._spans.get(name)
        if stat is None:
            stat = self._spans[name] = _SpanStat()
        stat.calls += calls
        stat.wall_s += wall_s

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain JSON-able dict of every instrument's current state."""
        return {
            "counters": {k: v.value for k, v in sorted(self._counters.items())},
            "gauges": {
                k: v.value for k, v in sorted(self._gauges.items()) if v.value is not None
            },
            "histograms": {
                k: {
                    "bounds": list(v.bounds),
                    "counts": list(v.counts),
                    "count": v.count,
                    "total": v.total,
                }
                for k, v in sorted(self._histograms.items())
            },
            "spans": {
                k: {"calls": v.calls, "wall_s": v.wall_s}
                for k, v in sorted(self._spans.items())
            },
        }


def empty_snapshot() -> dict:
    """The identity element of :func:`merge_snapshots`."""
    return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge metric snapshots associatively and commutatively.

    Counters and histogram bins add, gauges take the max, spans add both
    calls and wall time.  Histograms of the same name must share bounds;
    mismatched bounds raise ``ValueError`` rather than silently skewing
    bins.
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        _merge_into(merged, snapshot)
    # keep key order deterministic regardless of merge order
    return _sorted_snapshot(merged)


def _merge_into(merged: dict, snapshot: dict) -> None:
    """Fold one snapshot into a mutable merge accumulator."""
    for name, value in snapshot.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    for name, value in snapshot.get("gauges", {}).items():
        seen = merged["gauges"].get(name)
        merged["gauges"][name] = value if seen is None else max(seen, value)
    for name, hist in snapshot.get("histograms", {}).items():
        seen = merged["histograms"].get(name)
        if seen is None:
            merged["histograms"][name] = {
                "bounds": list(hist["bounds"]),
                "counts": list(hist["counts"]),
                "count": hist["count"],
                "total": hist["total"],
            }
            continue
        if seen["bounds"] != list(hist["bounds"]):
            raise ValueError(f"histogram '{name}' merged with mismatched bounds")
        seen["counts"] = [a + b for a, b in zip(seen["counts"], hist["counts"])]
        seen["count"] += hist["count"]
        seen["total"] += hist["total"]
    for name, span in snapshot.get("spans", {}).items():
        seen = merged["spans"].get(name)
        if seen is None:
            merged["spans"][name] = {"calls": span["calls"], "wall_s": span["wall_s"]}
        else:
            seen["calls"] += span["calls"]
            seen["wall_s"] += span["wall_s"]


def _sorted_snapshot(merged: dict) -> dict:
    """Deterministic key order plus fresh inner containers, so a caller
    holding the result never aliases the accumulator's mutable state."""
    return {
        "counters": dict(sorted(merged["counters"].items())),
        "gauges": dict(sorted(merged["gauges"].items())),
        "histograms": {
            k: {**v, "bounds": list(v["bounds"]), "counts": list(v["counts"])}
            for k, v in sorted(merged["histograms"].items())
        },
        "spans": {k: dict(v) for k, v in sorted(merged["spans"].items())},
    }


class SnapshotAccumulator:
    """Streaming, memory-bounded :func:`merge_snapshots`.

    Fleet-scale rollups cannot afford to hold one snapshot per shard and
    merge at the end; this accumulator folds each snapshot in as it
    arrives (``add``) and holds only the running merge.  Because the
    underlying merge is associative and commutative, feeding snapshots
    in *any* order -- shard completion order included -- produces the
    same result as a single :func:`merge_snapshots` call over the whole
    set, which keeps parallel fleet rollups deterministic.
    """

    def __init__(self) -> None:
        self._merged = empty_snapshot()
        self._count = 0

    def add(self, snapshot: dict) -> None:
        """Fold one snapshot into the running merge."""
        _merge_into(self._merged, snapshot)
        self._count += 1

    @property
    def count(self) -> int:
        """Snapshots folded in so far."""
        return self._count

    def snapshot(self) -> dict:
        """Current merged snapshot (deterministic key order), or a fresh
        empty snapshot when nothing has been added."""
        return _sorted_snapshot(self._merged)


def strip_timings(snapshot: dict) -> dict:
    """Deterministic view of a snapshot: span wall times removed.

    Span *call counts* are a property of the simulated work and stay;
    wall seconds depend on the host and scheduling, so comparisons
    between serial and parallel runs go through this view.
    """
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            k: {key: (list(v[key]) if isinstance(v[key], list) else v[key]) for key in v}
            for k, v in snapshot.get("histograms", {}).items()
        },
        "spans": {k: {"calls": v["calls"]} for k, v in snapshot.get("spans", {}).items()},
    }
