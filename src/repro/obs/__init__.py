"""Observability layer: metrics registry, phase spans, JSONL tracing.

Design constraints (guarded by tests):

* **off by default, zero overhead** -- the global observer is a shared
  no-op singleton; instrumented code paths allocate nothing and results
  are bit-identical with observability on or off;
* **deterministic** -- events carry simulation time only, snapshots
  merge associatively, and sweep traces are seed-ordered, so serial and
  parallel runs of the same grid produce identical merged artifacts;
* **plain data** -- snapshots and events are JSON-able dicts end to end,
  so they pickle across worker processes and diff as text.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotAccumulator,
    default_histogram_bounds,
    empty_snapshot,
    merge_snapshots,
    strip_timings,
)
from .observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    get_observer,
    observed,
    set_observer,
)
from .report import METRICS_SCHEMA, format_obs_report, load_run_artifacts, write_metrics_json
from .trace import event_line, merge_point_traces, read_trace_jsonl, write_trace_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "SnapshotAccumulator",
    "default_histogram_bounds",
    "empty_snapshot",
    "event_line",
    "format_obs_report",
    "get_observer",
    "load_run_artifacts",
    "merge_point_traces",
    "merge_snapshots",
    "observed",
    "read_trace_jsonl",
    "set_observer",
    "strip_timings",
    "write_metrics_json",
    "write_trace_jsonl",
]
