"""Render metrics/trace artifacts from a run directory.

The CLI writes two artifacts per observed run:

* ``metrics.json`` -- ``{"schema": "repro.obs.metrics/v1", "metrics":
  <snapshot>}`` (see :mod:`repro.obs.metrics`);
* ``trace.jsonl`` -- the deterministic event stream (see
  :mod:`repro.obs.trace`).

``repro obs report RUN_DIR`` loads whichever are present and renders
span timings, the top-N counters, and event-kind totals as text tables.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from pathlib import Path

from repro.analysis.reporting import format_table

from .trace import read_trace_jsonl

__all__ = ["METRICS_SCHEMA", "format_obs_report", "load_run_artifacts", "write_metrics_json"]

#: Schema tag stamped into every metrics.json artifact.
METRICS_SCHEMA = "repro.obs.metrics/v1"


def write_metrics_json(path: str | Path, snapshot: dict, context: dict | None = None) -> dict:
    """Write a metrics artifact and return its payload."""
    payload = {"schema": METRICS_SCHEMA, "context": context or {}, "metrics": snapshot}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def load_run_artifacts(path: str | Path) -> tuple[dict | None, list[dict] | None]:
    """Load ``(metrics snapshot, trace events)`` from a run directory.

    ``path`` may also point directly at a ``metrics.json`` or a
    ``*.jsonl`` trace file; missing artifacts come back as None.
    """
    path = Path(path)
    metrics_path: Path | None = None
    trace_path: Path | None = None
    if path.is_dir():
        candidate = path / "metrics.json"
        metrics_path = candidate if candidate.exists() else None
        candidate = path / "trace.jsonl"
        trace_path = candidate if candidate.exists() else None
    elif path.suffix == ".jsonl":
        trace_path = path
    else:
        metrics_path = path
    snapshot = None
    if metrics_path is not None and metrics_path.exists():
        payload = json.loads(metrics_path.read_text())
        snapshot = payload.get("metrics", payload)
    events = read_trace_jsonl(trace_path) if trace_path is not None else None
    return snapshot, events


def format_obs_report(
    snapshot: dict | None, events: list[dict] | None, top: int = 10
) -> str:
    """Render span timings, top counters, and event totals as text."""
    sections: list[str] = []
    if snapshot is not None:
        spans = snapshot.get("spans", {})
        if spans:
            rows = [
                [name, stat["calls"], f"{stat.get('wall_s', 0.0) * 1e3:.2f}",
                 f"{stat.get('wall_s', 0.0) * 1e3 / max(1, stat['calls']):.4f}"]
                for name, stat in sorted(
                    spans.items(), key=lambda kv: -kv[1].get("wall_s", 0.0)
                )
            ]
            sections.append(
                format_table(["span", "calls", "total ms", "ms/call"], rows,
                             title="phase spans")
            )
        counters = snapshot.get("counters", {})
        if counters:
            ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
            sections.append(
                format_table(["counter", "value"], [[k, v] for k, v in ranked],
                             title=f"top {min(top, len(counters))} counters")
            )
        histograms = snapshot.get("histograms", {})
        if histograms:
            rows = [
                [name, h["count"], f"{h['total']:.4g}",
                 f"{h['total'] / h['count']:.4g}" if h["count"] else "-"]
                for name, h in sorted(histograms.items())
            ]
            sections.append(
                format_table(["histogram", "samples", "total", "mean"], rows,
                             title="histograms")
            )
    if events is not None:
        tally = _TallyCounter(event.get("kind", "?") for event in events)
        rows = [[kind, count] for kind, count in tally.most_common()]
        sections.append(
            format_table(["event kind", "count"], rows,
                         title=f"trace: {len(events)} events")
        )
    if not sections:
        return "no observability artifacts found (expected metrics.json / trace.jsonl)"
    return "\n\n".join(sections)
