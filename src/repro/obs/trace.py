"""Deterministic JSONL event traces.

One event per line, canonical encoding (sorted keys, minimal
separators), no wall-clock anywhere in the payload -- a fixed-seed run
serializes to the identical bytes every time, so traces can be
snapshot-tested and diffed across runs, hosts, and worker counts.

Sweep traces are *seed-ordered*: each point's events are tagged with the
point's grid index and concatenated in grid order, which is independent
of completion order (per-point seeds derive from the index, so grid
order is seed order).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "event_line",
    "merge_point_traces",
    "read_trace_jsonl",
    "write_trace_jsonl",
]


def event_line(event: dict) -> str:
    """Canonical single-line JSON encoding of one event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def write_trace_jsonl(path: str | Path, events: Iterable[dict]) -> int:
    """Write events one-per-line; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        for event in events:
            handle.write(event_line(event) + "\n")
            count += 1
    return count


def read_trace_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace back into a list of event dicts."""
    events = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def merge_point_traces(point_events: Mapping[int, list[dict]]) -> list[dict]:
    """Combine per-point event lists into one seed-ordered trace.

    Events gain a ``"point"`` tag; points appear in grid-index order and
    each point's events keep their simulation order, so the merged trace
    is identical however the points were scheduled.
    """
    merged: list[dict] = []
    for index in sorted(point_events):
        for event in point_events[index]:
            merged.append({"point": index, **event})
    return merged
