"""Process-global observer: phase spans, counters, and an event stream.

The default observer is a shared no-op singleton, so instrumented hot
paths cost one attribute lookup and one no-op method call when
observability is off -- no allocation, no branching at call sites, and
bit-identical simulation results (the observer never touches RNG or
simulation state either way).

Enable collection for a scope with :func:`observed`::

    with observed() as obs:
        run_lifetime(build, summaries)
    snapshot = obs.registry.snapshot()
    events = obs.events

Events are *deterministic by construction*: they carry simulation time
(``t``), never wall-clock, and are appended in simulation order, so a
fixed-seed run always produces the identical event list.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .metrics import MetricsRegistry

__all__ = [
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "get_observer",
    "observed",
    "set_observer",
]


class _NullSpan:
    """Reusable no-op context manager (one shared instance, ever)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """Observability disabled: every operation is a no-op.

    Shared singleton (:data:`NULL_OBSERVER`); ``span`` returns one shared
    context manager, so the disabled path allocates nothing per event.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, calls: int = 1) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: int | float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, kind: str, t: float, **fields: object) -> None:
        return None


NULL_OBSERVER = NullObserver()


class _Span:
    """Times one ``with obs.span(name):`` block into the registry."""

    __slots__ = ("_registry", "_name", "_calls", "_start")

    def __init__(self, registry: MetricsRegistry, name: str, calls: int = 1) -> None:
        self._registry = registry
        self._name = name
        self._calls = calls

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry.span_record(
            self._name, time.perf_counter() - self._start, calls=self._calls
        )
        return False


class Observer:
    """Collecting observer: metrics registry plus an ordered event list.

    Parameters
    ----------
    trace:
        When False, events still bump their ``events.<kind>`` counter but
        are not retained -- metrics without the memory cost of a trace.
    """

    __slots__ = ("registry", "trace", "events")

    enabled = True

    def __init__(self, trace: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.trace = trace
        self.events: list[dict] = []

    def span(self, name: str, calls: int = 1) -> _Span:
        """Time a block; ``calls`` is the number of logical invocations
        the block stands for (the batched fleet engine times one array
        pass covering N devices, so span *call counts* stay comparable
        with N per-device runs)."""
        return _Span(self.registry, name, calls)

    def count(self, name: str, amount: int | float = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def event(self, kind: str, t: float, **fields: object) -> None:
        """Record one structured, sim-time-stamped event."""
        self.registry.counter(f"events.{kind}").inc()
        if self.trace:
            self.events.append({"t": float(t), "kind": kind, **fields})


_OBSERVER: NullObserver | Observer = NULL_OBSERVER


def get_observer() -> NullObserver | Observer:
    """The process-global observer (the no-op singleton by default)."""
    return _OBSERVER


def set_observer(observer: NullObserver | Observer) -> NullObserver | Observer:
    """Install ``observer`` globally; returns the previous one."""
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = observer
    return previous


@contextmanager
def observed(trace: bool = True) -> Iterator[Observer]:
    """Collect metrics and events for the duration of the block."""
    observer = Observer(trace=trace)
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
