"""Carbon accounting: embodied intensity, market shares, credits, projections.

Encodes the constants the paper's §1/§3 arguments are built from
(0.16 kg CO2e/GB, 765 EB 2021 production, Figure 1 market shares,
$111/t EU ETS peak) and the models that recompute its headline numbers.
"""

from .credits import (
    EU_ETS_PEAK_2022,
    CarbonPrice,
    credit_cost_per_tb,
    price_increase_fraction,
)
from .embodied import (
    BASELINE_INTENSITY_KG_PER_GB,
    BASELINE_TECHNOLOGY,
    DeviceCarbon,
    device_embodied_kg,
    intensity_kg_per_gb,
    mixed_intensity_kg_per_gb,
)
from .fleet import ClassOutcome, FleetConfig, FleetOutcome, simulate_fleet
from .operational import (
    GRID_KG_PER_KWH,
    POWER_PROFILES,
    PowerProfile,
    UsePhase,
    use_phase,
)
from .market import (
    DEVICE_CLASSES,
    MARKET_SHARE_2020,
    DeviceClass,
    decade_production_multiplier,
    personal_share,
    replacements_per_decade,
)
from .projection import (
    WORLD_PER_CAPITA_TONNES,
    ProjectionConfig,
    YearPoint,
    people_equivalent,
    project,
)

__all__ = [
    "EU_ETS_PEAK_2022",
    "CarbonPrice",
    "credit_cost_per_tb",
    "price_increase_fraction",
    "BASELINE_INTENSITY_KG_PER_GB",
    "BASELINE_TECHNOLOGY",
    "DeviceCarbon",
    "device_embodied_kg",
    "intensity_kg_per_gb",
    "mixed_intensity_kg_per_gb",
    "ClassOutcome",
    "FleetConfig",
    "FleetOutcome",
    "simulate_fleet",
    "GRID_KG_PER_KWH",
    "POWER_PROFILES",
    "PowerProfile",
    "UsePhase",
    "use_phase",
    "DEVICE_CLASSES",
    "MARKET_SHARE_2020",
    "DeviceClass",
    "decade_production_multiplier",
    "personal_share",
    "replacements_per_decade",
    "WORLD_PER_CAPITA_TONNES",
    "ProjectionConfig",
    "YearPoint",
    "people_equivalent",
    "project",
]
