"""Flash market composition (Figure 1) and replacement-rate model.

Figure 1 shows 2020 NAND bit demand by device type [Statista]: smartphones
dominate, and together with tablets and memory cards, *personal* devices
absorb roughly half of annual flash bit production -- the population SOS
targets (§2.3.2).  The replacement model encodes the lifetime gap: the
encasing device is replaced every 2-3 years while its flash could survive
an order of magnitude longer, so "over half of all flash bits manufactured
annually will be discarded and replaced over three times in the coming
decade".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MARKET_SHARE_2020",
    "personal_share",
    "DeviceClass",
    "DEVICE_CLASSES",
    "replacements_per_decade",
    "decade_production_multiplier",
]

#: Figure 1: flash market share by device type (2020 bit demand).
MARKET_SHARE_2020: dict[str, float] = {
    "smartphone": 0.38,
    "ssd": 0.32,
    "memory_card": 0.14,
    "tablet": 0.08,
    "other": 0.08,
}

#: Device types counted as "personal storage" by §2.3.2 (phone and tablet
#: explicitly; memory cards ride in the same devices).
_PERSONAL_TYPES = ("smartphone", "tablet", "memory_card")


def personal_share(
    shares: dict[str, float] | None = None, include_memory_cards: bool = True
) -> float:
    """Fraction of flash bits going to personal devices.

    With memory cards included this is ~0.60; phones+tablets alone are
    0.46 -- both consistent with the paper's "approximately half".
    """
    shares = MARKET_SHARE_2020 if shares is None else shares
    types = _PERSONAL_TYPES if include_memory_cards else _PERSONAL_TYPES[:2]
    return sum(shares[t] for t in types)


@dataclass(frozen=True, slots=True)
class DeviceClass:
    """Lifetime characteristics of one device class.

    Attributes
    ----------
    name:
        Device class name (matches a market-share key).
    replacement_years:
        Mean service life of the encasing device before disposal.
    flash_reuse_probability:
        Probability the flash outlives the device *and is reused* (§2.3.3
        argues this is ~0 for soldered mobile storage).
    """

    name: str
    replacement_years: float
    flash_reuse_probability: float = 0.0


#: Replacement characteristics per class (§2.3.1-§2.3.2: phones 2-3 years,
#: SSDs ~5-year warranties with ~1%/yr failure, cards 5-10 year warranties).
DEVICE_CLASSES: dict[str, DeviceClass] = {
    "smartphone": DeviceClass("smartphone", replacement_years=2.5),
    "tablet": DeviceClass("tablet", replacement_years=3.5),
    "memory_card": DeviceClass("memory_card", replacement_years=4.0),
    "ssd": DeviceClass("ssd", replacement_years=6.0),
    "other": DeviceClass("other", replacement_years=5.0),
}


def replacements_per_decade(device: DeviceClass) -> float:
    """How many times a device class is replaced in ten years."""
    return 10.0 / device.replacement_years


def decade_production_multiplier(
    shares: dict[str, float] | None = None,
    classes: dict[str, DeviceClass] | None = None,
) -> dict[str, float]:
    """Per-class replacement counts over a decade, weighted by bit share.

    The headline check for §2.3.2: personal classes (>= half the bits)
    replace >= 3x per decade, multiplying production demand accordingly.
    """
    shares = MARKET_SHARE_2020 if shares is None else shares
    classes = DEVICE_CLASSES if classes is None else classes
    return {
        name: replacements_per_decade(classes[name]) for name in shares
    }
