"""Carbon-credit pricing and its impact on flash economics.

§3 closes with the cost argument: at the recent EU ETS peak of $111 per
tonne CO2e, the embodied carbon of flash (0.16 kg/GB) corresponds to a
~40% surcharge on a $45/TB QLC SSD -- "carbon-related direct costs may
soon become a major factor in the flash storage market".
"""

from __future__ import annotations

from dataclasses import dataclass

from .embodied import BASELINE_INTENSITY_KG_PER_GB

__all__ = ["CarbonPrice", "EU_ETS_PEAK_2022", "credit_cost_per_tb", "price_increase_fraction"]


@dataclass(frozen=True, slots=True)
class CarbonPrice:
    """A carbon-credit price point."""

    usd_per_tonne: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.usd_per_tonne < 0:
            raise ValueError("carbon price cannot be negative")

    @property
    def usd_per_kg(self) -> float:
        """Price per kg CO2e."""
        return self.usd_per_tonne / 1000.0


#: "European Union prices have recently peaked at $111/CO2e ton" (§3).
EU_ETS_PEAK_2022 = CarbonPrice(usd_per_tonne=111.0, label="EU ETS 2022 peak")


def credit_cost_per_tb(
    price: CarbonPrice, intensity_kg_per_gb: float = BASELINE_INTENSITY_KG_PER_GB
) -> float:
    """Carbon-credit cost (USD) embedded in one TB of flash."""
    return price.usd_per_kg * intensity_kg_per_gb * 1000.0  # 1000 GB/TB


def price_increase_fraction(
    price: CarbonPrice,
    ssd_usd_per_tb: float,
    intensity_kg_per_gb: float = BASELINE_INTENSITY_KG_PER_GB,
) -> float:
    """Carbon cost as a fraction of the SSD's market price per TB.

    The paper's example: $111/t on 0.16 kg/GB over a $45/TB QLC drive
    is ~0.40 (a 40% price increase).
    """
    if ssd_usd_per_tb <= 0:
        raise ValueError("SSD price must be positive")
    return credit_cost_per_tb(price, intensity_kg_per_gb) / ssd_usd_per_tb
