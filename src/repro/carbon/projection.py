"""Flash production and carbon-footprint projection, 2021 -> 2030.

Reproduces §1/§3's trajectory:

* 2021 flash capacity production ~765 EB [Forbes/FMS '22];
* embodied emissions 0.16 kg CO2e/GB -> ~122 Mt CO2e, "equivalent to the
  average annual CO2 emissions of 28M people" at the ~4.4 t/person world
  average [World Bank];
* bit production grows with data demand (20-30%/yr) *plus* flash's rising
  share of storage sales (SSDs displacing HDDs, higher-capacity phones);
* per-GB intensity falls as 3D layer stacking improves material
  utilization (vendors project ~4x density by 2030), but -- the paper's
  point -- slower than demand grows, because added layers add process
  steps: we model intensity reaching ``intensity_factor_2030`` (default
  0.5x) rather than the full 1/4;
* by 2030 the footprint reaches "the equivalent of over 150M people",
  about 1.7% of world emissions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProjectionConfig", "YearPoint", "project", "people_equivalent"]

#: World Bank world-average per-capita emissions (tonnes CO2e / person / yr).
WORLD_PER_CAPITA_TONNES = 4.4

#: Projected world annual emissions circa 2030 (Mt CO2e) for share-of-world
#: calculations (~40 Gt trajectory).
WORLD_EMISSIONS_2030_MT = 40_000.0


@dataclass(frozen=True, slots=True)
class ProjectionConfig:
    """Projection knobs (defaults calibrated to the paper's citations).

    Attributes
    ----------
    base_year / end_year:
        Projection window.
    base_capacity_eb:
        Flash bits produced in the base year (765 EB in 2021).
    base_intensity_kg_per_gb:
        Embodied intensity in the base year (0.16 kg/GB).
    bit_growth_rate:
        Annual growth of flash bit production.  Data demand grows 20-30%
        and flash's share of storage rises; 0.31 combines both.
    intensity_factor_end:
        Per-GB intensity at ``end_year`` relative to base (0.5 = halved;
        geometric interpolation between).
    """

    base_year: int = 2021
    end_year: int = 2030
    base_capacity_eb: float = 765.0
    base_intensity_kg_per_gb: float = 0.16
    bit_growth_rate: float = 0.31
    intensity_factor_end: float = 0.5


@dataclass(frozen=True, slots=True)
class YearPoint:
    """Projection output for one year."""

    year: int
    capacity_eb: float
    intensity_kg_per_gb: float
    emissions_mt: float
    people_equivalent_millions: float
    share_of_world_2030: float


def people_equivalent(emissions_mt: float) -> float:
    """Millions of people whose annual emissions match ``emissions_mt``."""
    return emissions_mt * 1e6 / WORLD_PER_CAPITA_TONNES / 1e6


def project(config: ProjectionConfig | None = None) -> list[YearPoint]:
    """Year-by-year projection from ``base_year`` to ``end_year``."""
    config = config or ProjectionConfig()
    if config.end_year < config.base_year:
        raise ValueError("end_year must be >= base_year")
    span = config.end_year - config.base_year
    points: list[YearPoint] = []
    for offset in range(span + 1):
        year = config.base_year + offset
        capacity_eb = config.base_capacity_eb * (1.0 + config.bit_growth_rate) ** offset
        if span == 0:
            factor = 1.0
        else:
            factor = config.intensity_factor_end ** (offset / span)
        intensity = config.base_intensity_kg_per_gb * factor
        capacity_gb = capacity_eb * 1e9
        emissions_mt = capacity_gb * intensity / 1e9  # kg -> Mt
        points.append(
            YearPoint(
                year=year,
                capacity_eb=capacity_eb,
                intensity_kg_per_gb=intensity,
                emissions_mt=emissions_mt,
                people_equivalent_millions=people_equivalent(emissions_mt),
                share_of_world_2030=emissions_mt / WORLD_EMISSIONS_2030_MT,
            )
        )
    return points
