"""Device-fleet simulation: replacement cycles drive flash production.

§2.3.2's conclusion -- "over half of all flash bits manufactured
annually will be discarded and replaced over three times in the coming
decade" -- is a statement about fleets, not single devices.  This module
simulates a population of devices per market class over a decade:

* each class replaces its devices every ``replacement_years`` (phones
  2.5y, SSDs 6y, ...), discarding the old flash (§2.3.3: reuse ~never
  happens);
* the installed base grows with demand, so production covers *growth*
  plus *replacement*;
* the flash inside each discarded personal device has consumed only a
  small fraction of its endurance (E3) -- the waste SOS monetizes.

The simulator reports, per class, how many times the original capacity
was re-manufactured over the horizon and how much embodied carbon the
replacement churn represents.
"""

from __future__ import annotations

from dataclasses import dataclass

from .embodied import BASELINE_INTENSITY_KG_PER_GB
from .market import DEVICE_CLASSES, MARKET_SHARE_2020, DeviceClass

__all__ = ["FleetConfig", "ClassOutcome", "FleetOutcome", "simulate_fleet"]


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Fleet simulation parameters.

    Attributes
    ----------
    horizon_years:
        Simulated span (the paper talks about "the coming decade").
    base_capacity_eb:
        Installed flash base at year 0, split by market share.
    demand_growth:
        Annual growth of the installed base (new use cases).
    intensity_kg_per_gb:
        Embodied intensity applied to manufactured bits.
    """

    horizon_years: int = 10
    base_capacity_eb: float = 2000.0
    demand_growth: float = 0.10
    intensity_kg_per_gb: float = BASELINE_INTENSITY_KG_PER_GB


@dataclass(frozen=True, slots=True)
class ClassOutcome:
    """Decade outcome for one device class."""

    name: str
    share: float
    installed_eb_start: float
    installed_eb_end: float
    manufactured_eb: float
    replacement_multiplier: float
    embodied_mt: float


@dataclass(frozen=True, slots=True)
class FleetOutcome:
    """Aggregate decade outcome."""

    classes: list[ClassOutcome]

    @property
    def total_manufactured_eb(self) -> float:
        """All bits manufactured over the horizon."""
        return sum(c.manufactured_eb for c in self.classes)

    @property
    def total_embodied_mt(self) -> float:
        """Embodied carbon of all manufacturing over the horizon."""
        return sum(c.embodied_mt for c in self.classes)

    def personal_replacement_multiplier(self) -> float:
        """Share-weighted replacement multiplier of personal classes."""
        personal = [c for c in self.classes if c.name in ("smartphone", "tablet", "memory_card")]
        weight = sum(c.share for c in personal)
        return sum(c.share * c.replacement_multiplier for c in personal) / weight

    def personal_bit_share(self) -> float:
        """Fraction of manufactured bits going to personal classes."""
        personal = sum(
            c.manufactured_eb
            for c in self.classes
            if c.name in ("smartphone", "tablet", "memory_card")
        )
        return personal / self.total_manufactured_eb


def _simulate_class(
    device: DeviceClass, share: float, config: FleetConfig
) -> ClassOutcome:
    installed = config.base_capacity_eb * share
    start = installed
    manufactured = 0.0
    for _year in range(config.horizon_years):
        # growth requires new bits; replacement re-manufactures a
        # 1/replacement_years slice of the installed base every year
        growth = installed * config.demand_growth
        replacement = installed * (1.0 - device.flash_reuse_probability) / device.replacement_years
        manufactured += growth + replacement
        installed += growth
    embodied_kg = manufactured * 1e9 * config.intensity_kg_per_gb  # EB -> GB
    return ClassOutcome(
        name=device.name,
        share=share,
        installed_eb_start=start,
        installed_eb_end=installed,
        manufactured_eb=manufactured,
        replacement_multiplier=manufactured / start,
        embodied_mt=embodied_kg / 1e9,
    )


def simulate_fleet(config: FleetConfig | None = None) -> FleetOutcome:
    """Simulate all market classes over the horizon."""
    config = config or FleetConfig()
    outcomes = [
        _simulate_class(DEVICE_CLASSES[name], share, config)
        for name, share in MARKET_SHARE_2020.items()
    ]
    return FleetOutcome(classes=outcomes)
