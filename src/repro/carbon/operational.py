"""Operational (use-phase) energy and carbon of flash storage.

§1/§3's premise: "power consumption during systems operational phase has
significantly improved ... As a result, production-related emissions
effectively account for most of the carbon footprint of modern devices"
[Gupta et al. 'Chasing Carbon', Tannu & Nair].  SOS attacks embodied
carbon precisely because the operational side is already small.

This module quantifies that premise: a power profile per storage class
(mobile UFS parts idle in the milliwatts and are active a few percent of
the time; enterprise SSDs burn watts around the clock), integrated over
the device's service life and converted through a grid carbon intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .embodied import BASELINE_INTENSITY_KG_PER_GB

__all__ = ["PowerProfile", "POWER_PROFILES", "UsePhase", "use_phase", "GRID_KG_PER_KWH"]

#: World-average grid carbon intensity (kg CO2e per kWh), ~2022.
GRID_KG_PER_KWH = 0.44

_HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True, slots=True)
class PowerProfile:
    """Power behaviour of one storage class.

    Attributes
    ----------
    active_w / idle_w:
        Power draw while serving I/O and while idle.
    duty_cycle:
        Fraction of powered time spent active.
    powered_fraction:
        Fraction of wall-clock time the device is powered at all
        (phones sleep; servers do not).
    """

    name: str
    active_w: float
    idle_w: float
    duty_cycle: float
    powered_fraction: float = 1.0

    def mean_watts(self) -> float:
        """Average draw over wall-clock time."""
        powered = self.active_w * self.duty_cycle + self.idle_w * (1 - self.duty_cycle)
        return powered * self.powered_fraction


#: Published-datasheet-class profiles (UFS mobile storage vs SATA/NVMe SSDs).
POWER_PROFILES: dict[str, PowerProfile] = {
    "mobile_ufs": PowerProfile(
        name="mobile_ufs", active_w=0.3, idle_w=0.005, duty_cycle=0.02,
        powered_fraction=0.9,
    ),
    "consumer_ssd": PowerProfile(
        name="consumer_ssd", active_w=4.0, idle_w=0.3, duty_cycle=0.05,
        powered_fraction=0.35,
    ),
    "enterprise_ssd": PowerProfile(
        name="enterprise_ssd", active_w=9.0, idle_w=2.5, duty_cycle=0.30,
        powered_fraction=1.0,
    ),
}


@dataclass(frozen=True, slots=True)
class UsePhase:
    """Lifetime operational energy/carbon vs embodied carbon."""

    profile: str
    capacity_gb: float
    service_years: float
    energy_kwh: float
    operational_kg: float
    embodied_kg: float

    @property
    def embodied_share(self) -> float:
        """Embodied fraction of the storage device's total footprint."""
        total = self.operational_kg + self.embodied_kg
        return self.embodied_kg / total if total else 0.0

    @property
    def embodied_to_operational(self) -> float:
        """Ratio of embodied to operational carbon."""
        if self.operational_kg == 0:
            return float("inf")
        return self.embodied_kg / self.operational_kg


def use_phase(
    profile_name: str,
    capacity_gb: float,
    service_years: float,
    intensity_kg_per_gb: float = BASELINE_INTENSITY_KG_PER_GB,
    grid_kg_per_kwh: float = GRID_KG_PER_KWH,
) -> UsePhase:
    """Integrate a power profile over a service life and compare phases."""
    if capacity_gb <= 0 or service_years <= 0:
        raise ValueError("capacity and service life must be positive")
    profile = POWER_PROFILES[profile_name]
    energy_kwh = profile.mean_watts() * service_years * _HOURS_PER_YEAR / 1000.0
    return UsePhase(
        profile=profile_name,
        capacity_gb=capacity_gb,
        service_years=service_years,
        energy_kwh=energy_kwh,
        operational_kg=energy_kwh * grid_kg_per_kwh,
        embodied_kg=capacity_gb * intensity_kg_per_gb,
    )
