"""Embodied (production) carbon model for flash storage.

§3 of the paper: flash manufacturing emissions are dominated by fab power
during die production, and Tannu & Nair's HotCarbon '22 analysis puts the
embodied intensity at **0.16 kg CO2e per GB** for current (TLC-class)
flash.  Because fab emissions scale with *wafer area processed*, not with
bits shipped, storing more bits per cell divides the per-GB intensity:
a QLC die ships 4/3 the bits of a TLC die from the same silicon.

That proportionality is the entire quantitative engine behind SOS's
sustainability claim (§4.1: "using denser flash memories ... straight-
forwardly optimizes material utilization, which proportionally reduces
the associated carbon footprint for the same storage capacity").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.cell import CellMode, CellTechnology

__all__ = [
    "BASELINE_INTENSITY_KG_PER_GB",
    "BASELINE_TECHNOLOGY",
    "intensity_kg_per_gb",
    "mixed_intensity_kg_per_gb",
    "device_embodied_kg",
    "DeviceCarbon",
]

#: Tannu & Nair (HotCarbon '22): embodied carbon of current flash.
BASELINE_INTENSITY_KG_PER_GB = 0.16

#: Technology the baseline intensity refers to (the market's TLC default).
BASELINE_TECHNOLOGY = CellTechnology.TLC


def intensity_kg_per_gb(mode: CellMode | CellTechnology) -> float:
    """Embodied kg CO2e per GB for flash operated at a given density.

    Wafer emissions are fixed per cell, so intensity scales inversely with
    *operating* bits per cell.  A pseudo-QLC block on PLC silicon has the
    wafer cost of PLC silicon but ships only 4 bits/cell, so its intensity
    is the PLC wafer cost divided by 4 operating bits -- i.e. keyed on
    operating bits, same as native QLC silicon (both ship 4 bits per
    manufactured cell of equal wafer cost in this model).
    """
    operating_bits = (
        mode.operating_bits if isinstance(mode, CellMode) else mode.bits_per_cell
    )
    return BASELINE_INTENSITY_KG_PER_GB * (
        BASELINE_TECHNOLOGY.bits_per_cell / operating_bits
    )


def mixed_intensity_kg_per_gb(split: dict[CellMode | CellTechnology, float]) -> float:
    """Capacity-weighted intensity of a multi-partition device.

    ``split`` maps mode -> fraction of device *capacity* (must sum to 1).
    """
    total = sum(split.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"capacity fractions must sum to 1, got {total}")
    return sum(intensity_kg_per_gb(mode) * frac for mode, frac in split.items())


@dataclass(frozen=True, slots=True)
class DeviceCarbon:
    """Embodied carbon summary for one device configuration."""

    capacity_gb: float
    intensity_kg_per_gb: float

    @property
    def total_kg(self) -> float:
        """Total embodied kg CO2e for the device."""
        return self.capacity_gb * self.intensity_kg_per_gb

    def reduction_vs(self, other: "DeviceCarbon") -> float:
        """Fractional carbon reduction of this device versus another
        at equal capacity (positive = this device is greener)."""
        return 1.0 - self.intensity_kg_per_gb / other.intensity_kg_per_gb


def device_embodied_kg(
    capacity_gb: float, split: dict[CellMode | CellTechnology, float]
) -> DeviceCarbon:
    """Embodied carbon of a device with a given capacity split."""
    if capacity_gb <= 0:
        raise ValueError("capacity must be positive")
    return DeviceCarbon(
        capacity_gb=capacity_gb, intensity_kg_per_gb=mixed_intensity_kg_per_gb(split)
    )
